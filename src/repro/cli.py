"""Command-line interface: ``python -m repro <command>``.

Nine sub-commands expose the library without writing any code:

* ``datasets`` — list the built-in datasets with their Table-1 statistics;
* ``algorithms`` — list the registered community-search algorithms;
* ``search`` — run one algorithm for a query on a built-in dataset or an
  edge-list file and print the community plus its quality scores;
* ``evaluate`` — run one or more algorithms over generated query sets and
  print the aggregated NMI / ARI / runtime table (a one-dataset slice of the
  paper's accuracy figures);
* ``serve`` — run the sharded async query-serving daemon (line-delimited
  JSON over TCP; see ``repro.serving``).  With ``--join COORD`` the daemon
  becomes a **cluster node**: it registers with the coordinator, heartbeats,
  and only serves the datasets the routing table assigns to it;
* ``index`` — build (``index build``) or inspect (``index inspect``) the
  precomputed community-search index files that let ``serve`` answer
  ``kc`` / ``kt`` / ``hightruss`` queries as binary-search window scans
  instead of running decompositions (see ``repro.graph.index``);
* ``mutate`` — apply ordered graph mutations to a running ``serve
  --epochs`` daemon; the server repairs its core/truss decompositions
  incrementally and publishes the result as a new snapshot epoch (see
  ``repro.dynamic``);
* ``coordinator`` — run the cluster control plane (membership, per-host
  shard placement, failover, the versioned routing table; see
  ``repro.cluster``);
* ``top`` — show the cluster health plane: per-dataset qps, merged p50/p99
  latency, shed rate and epoch lag, aggregated by the coordinator from the
  metric summaries nodes piggyback on their heartbeats (see ``repro.obs``).

Errors are production-shaped: unknown dataset/algorithm names, bad query
nodes and invalid parameters print a one-line ``error: ...`` message to
stderr and exit with code 2 — never a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence
from typing import Optional

from .datasets import Dataset, list_datasets, load_dataset
from .experiments import (
    aggregate,
    evaluate_algorithm,
    evaluate_batch,
    format_table,
    generate_query_sets,
    get_algorithm,
    list_algorithms,
)
from .graph import GraphError, read_edge_list
from .metrics import community_ari, community_nmi
from .modularity import classic_modularity, density_modularity

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Return the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Density Modularity based Community Search (DMCS) reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list built-in datasets")
    subparsers.add_parser("algorithms", help="list registered algorithms")

    search = subparsers.add_parser("search", help="run one community search")
    search.add_argument("--dataset", help="built-in dataset name", default=None)
    search.add_argument("--edge-list", help="path to a whitespace edge list", default=None)
    search.add_argument("--algorithm", default="FPA", help="algorithm name (default FPA)")
    search.add_argument(
        "--query", nargs="+", required=True, help="query node id(s); parsed as int when possible"
    )
    search.add_argument("--k", type=int, default=None, help="k for the parameterised baselines")

    evaluate = subparsers.add_parser("evaluate", help="evaluate algorithms on a dataset")
    evaluate.add_argument("--dataset", required=True, help="built-in dataset name")
    evaluate.add_argument(
        "--algorithms", nargs="+", default=["FPA", "NCA", "kc", "kt"], help="algorithms to compare"
    )
    evaluate.add_argument("--queries", type=int, default=10, help="number of query sets")
    evaluate.add_argument("--query-size", type=int, default=1, help="query nodes per set")
    evaluate.add_argument("--seed", type=int, default=0, help="query sampling seed")
    evaluate.add_argument(
        "--engine",
        choices=["per-query", "batched"],
        default="per-query",
        help="'batched' freezes the graph once and runs every query against "
        "the shared CSR snapshot (same results, faster)",
    )
    evaluate.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the batched engine out over this many worker processes",
    )

    serve = subparsers.add_parser(
        "serve", help="run the async query-serving daemon (JSON lines over TCP)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument(
        "--port", type=int, default=7531, help="TCP port (0 picks an ephemeral port)"
    )
    serve.add_argument(
        "--datasets",
        nargs="+",
        default=["karate"],
        help="datasets to preload into shards; any other registered dataset "
        "loads lazily on its first request",
    )
    serve.add_argument(
        "--executor",
        choices=["inline", "pool", "process"],
        default=None,
        help="execution strategy per replica: 'inline' (thread, the default), "
        "'pool' (shared process pool, see --workers), or 'process' (one "
        "dedicated worker process per replica, each freezing its own snapshot)",
    )
    serve.add_argument(
        "--replicas",
        nargs="+",
        default=["1"],
        metavar="N|DATASET=N",
        help="replicas per shard: a default count and/or per-dataset "
        "overrides, e.g. --replicas 2 dblp=4",
    )
    serve.add_argument(
        "--snapshot",
        choices=["shared", "private"],
        default="shared",
        help="how process/pool workers get the frozen snapshot: 'shared' "
        "(default) exports it once into named shared memory and workers "
        "attach zero-copy, falling back to 'private' where shared memory "
        "is unavailable; 'private' ships each worker its own copy",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=0,
        help="bound on queued requests per shard; beyond it requests are shed "
        "with a structured 'overloaded' error (default 0 = unbounded)",
    )
    serve.add_argument(
        "--routing",
        choices=["least-loaded", "round-robin"],
        default="least-loaded",
        help="replica routing policy (default least-loaded by queue depth)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="size of the shared process pool (implies --executor pool; "
        "--executor pool without --workers defaults to 2)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=1024, help="LRU result-cache entries per shard"
    )
    serve.add_argument(
        "--max-batch", type=int, default=64, help="micro-batch size limit per shard"
    )
    serve.add_argument(
        "--index",
        choices=["auto", "require", "off"],
        default="auto",
        help="precomputed community-search index: 'auto' (default) serves "
        "kc/kt/hightruss from an index file when one exists and falls back "
        "to executing otherwise, 'require' refuses to serve a dataset "
        "without a valid index, 'off' always executes",
    )
    serve.add_argument(
        "--index-dir",
        default=None,
        help="directory holding <dataset>.idx files (default: $REPRO_INDEX_DIR "
        "or ./.repro-index)",
    )
    serve.add_argument(
        "--epochs",
        action="store_true",
        help="serve epochal snapshots: every shard's state is owned by an "
        "epoch manager, responses carry an 'epoch' field, and the 'mutate' "
        "wire op (or 'repro mutate') evolves the graph by publishing new "
        "epochs (see repro.dynamic)",
    )
    serve.add_argument(
        "--epoch-threshold",
        type=int,
        default=64,
        help="delta batches with at most this many ops repair the core/truss "
        "decompositions incrementally; larger batches refreeze from scratch "
        "(default 64; 0 always refreezes)",
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        metavar="P",
        help="sample this fraction of requests for distributed tracing "
        "(0.0..1.0; default 0 = off).  Sampled responses carry a trace_id "
        "whose span tree (admission, queue wait, execution — including "
        "inside worker processes — and epoch publishes) is served by the "
        "'trace' wire op (see repro.obs)",
    )
    serve.add_argument(
        "--log-json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit structured JSON logs (slow queries, request errors, "
        "worker crashes, heartbeat failures) to PATH, or stderr when the "
        "flag is given without a value",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log any query served slower than this many milliseconds as a "
        "structured slow_query event (requires --log-json to be visible)",
    )
    serve.add_argument(
        "--join",
        default=None,
        metavar="HOST:PORT",
        help="join the cluster coordinated at this address: register, "
        "heartbeat, and serve only the datasets the routing table assigns "
        "to this node (others answer with the 'not_owner' error code)",
    )
    serve.add_argument(
        "--advertise",
        default=None,
        metavar="HOST[:PORT]",
        help="the address clients should use to reach this node (defaults "
        "to --host plus the bound port; set it when the node sits behind "
        "NAT or binds 0.0.0.0)",
    )

    index = subparsers.add_parser(
        "index",
        help="build or inspect the precomputed community-search indexes",
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    index_build = index_sub.add_parser(
        "build",
        help="derive the coreness/trussness hierarchy for dataset(s) and "
        "write versioned .idx files keyed by the dataset content digest",
    )
    index_build.add_argument(
        "datasets", nargs="*", metavar="DATASET", help="built-in dataset name(s)"
    )
    index_build.add_argument(
        "--all", action="store_true", help="build indexes for every built-in dataset"
    )
    index_build.add_argument(
        "--index-dir",
        default=None,
        help="directory to write <dataset>.idx files into (default: "
        "$REPRO_INDEX_DIR or ./.repro-index)",
    )
    index_inspect = index_sub.add_parser(
        "inspect",
        help="print an index file's format version, digest, sizes and "
        "per-k community counts, verifying it against the current dataset",
    )
    index_inspect.add_argument("dataset", metavar="DATASET", help="built-in dataset name")
    index_inspect.add_argument(
        "--index-dir",
        default=None,
        help="directory holding <dataset>.idx files (default: $REPRO_INDEX_DIR "
        "or ./.repro-index)",
    )
    index_inspect.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable description (digest, region sizes, "
        "per-level community counts, served algorithms) instead of the table",
    )

    mutate = subparsers.add_parser(
        "mutate",
        help="apply graph mutations to a running --epochs server, publishing "
        "a new snapshot epoch (ops like add-edge:0:99 remove-edge:2:3 "
        "add-node:99 remove-node:5)",
    )
    mutate.add_argument("dataset", metavar="DATASET", help="dataset to mutate")
    mutate.add_argument(
        "ops",
        nargs="+",
        metavar="OP",
        help="mutations, in order: add-edge:U:V[:WEIGHT], remove-edge:U:V, "
        "add-node:N, remove-node:N",
    )
    mutate.add_argument("--host", default="127.0.0.1", help="server host")
    mutate.add_argument("--port", type=int, default=7531, help="server port")

    coordinator = subparsers.add_parser(
        "coordinator",
        help="run the cluster coordinator (membership, shard placement "
        "across nodes, failover, versioned routing table)",
    )
    coordinator.add_argument("--host", default="127.0.0.1", help="interface to bind")
    coordinator.add_argument(
        "--port", type=int, default=7530, help="TCP port (0 picks an ephemeral port)"
    )
    coordinator.add_argument(
        "--datasets",
        nargs="+",
        default=["karate"],
        help="datasets the cluster serves; each gets a replica set placed "
        "across the live nodes",
    )
    coordinator.add_argument(
        "--replication",
        type=int,
        default=1,
        help="replicas per dataset, each on a distinct node (a degraded "
        "cluster runs with fewer until nodes join)",
    )
    coordinator.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        help="seconds between node heartbeats (advertised to the nodes)",
    )
    coordinator.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        help="seconds of silence before a node is declared dead and its "
        "replicas fail over (default: 3x the interval)",
    )
    coordinator.add_argument(
        "--routing",
        choices=["least-loaded", "round-robin"],
        default="least-loaded",
        help="host-placement policy: spread datasets to the least-assigned "
        "node, or rotate (default least-loaded)",
    )

    top = subparsers.add_parser(
        "top",
        help="show the cluster health plane: per-dataset qps, p50/p99 "
        "latency (merged across replicas), shed rate, errors and epoch "
        "lag, aggregated by the coordinator from heartbeat summaries",
    )
    top.add_argument(
        "coordinator",
        metavar="HOST:PORT",
        help="the coordinator's address (e.g. 127.0.0.1:7530)",
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="emit the raw health mapping as JSON instead of the table",
    )
    return parser


def _parse_node(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def _load_graph(args) -> tuple[object, Optional[Dataset]]:
    """Return ``(graph, dataset or None)`` from the --dataset / --edge-list flags."""
    if args.dataset and args.edge_list:
        raise SystemExit("pass either --dataset or --edge-list, not both")
    if args.dataset:
        dataset = load_dataset(args.dataset)
        return dataset.graph, dataset
    if args.edge_list:
        return read_edge_list(args.edge_list), None
    raise SystemExit("one of --dataset or --edge-list is required")


def _command_datasets() -> int:
    rows = []
    for name in list_datasets():
        dataset = load_dataset(name)
        rows.append(dataset.statistics())
    print(format_table(rows, title="Built-in datasets"))
    return 0


def _command_algorithms() -> int:
    for name in list_algorithms():
        print(name)
    return 0


def _command_search(args) -> int:
    graph, dataset = _load_graph(args)
    queries = [_parse_node(token) for token in args.query]
    overrides = {"k": args.k} if args.k is not None else {}
    runner = get_algorithm(args.algorithm, **overrides)
    result = runner(graph, queries)
    if not result.nodes:
        print(f"{args.algorithm} found no community: {result.extra.get('reason', 'unknown')}")
        return 1
    print(result.summary())
    print(f"members ({result.size}): {sorted(result.nodes, key=repr)}")
    print(f"density modularity: {density_modularity(graph, result.nodes):.6f}")
    print(f"classic modularity: {classic_modularity(graph, result.nodes):.6f}")
    if dataset is not None:
        truths = [c for c in dataset.communities if set(queries) <= set(c)]
        if truths:
            best = max(
                (community_nmi(graph.nodes(), result.nodes, truth) for truth in truths)
            )
            best_ari = max(
                (community_ari(graph.nodes(), result.nodes, truth) for truth in truths)
            )
            print(f"NMI vs ground truth: {best:.4f}")
            print(f"ARI vs ground truth: {best_ari:.4f}")
    return 0


def _command_evaluate(args) -> int:
    dataset = load_dataset(args.dataset)
    query_sets = generate_query_sets(
        dataset, num_sets=args.queries, query_size=args.query_size, seed=args.seed
    )
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be a positive integer")
    if args.workers is not None and args.engine != "batched":
        raise SystemExit("--workers requires --engine batched")
    rows = []
    if args.engine == "batched":
        per_algorithm = evaluate_batch(
            dataset, args.algorithms, query_sets, max_workers=args.workers
        )
        rows = [aggregate(per_algorithm[algorithm]).as_row() for algorithm in args.algorithms]
    else:
        for algorithm in args.algorithms:
            records = evaluate_algorithm(dataset, algorithm, query_sets)
            rows.append(aggregate(records).as_row())
    title = f"Evaluation on {dataset.name} ({len(query_sets)} query sets, {args.engine})"
    print(format_table(rows, title=title))
    return 0


def _command_serve(args) -> int:
    from .serving import ServingEngine, parse_replica_spec, run_server

    if args.workers is not None and args.workers < 1:
        raise ValueError("--workers must be a positive integer")
    if args.max_queue < 0:
        raise ValueError("--max-queue must be >= 0 (0 disables the bound)")
    if not 0.0 <= args.trace_sample <= 1.0:
        raise ValueError("--trace-sample must be between 0.0 and 1.0")
    if args.slow_ms is not None and args.slow_ms < 0:
        raise ValueError("--slow-ms must be >= 0")
    if args.log_json is not None:
        from .obs import configure_json_logging

        configure_json_logging(args.log_json)
    if args.workers is not None and args.executor not in (None, "pool"):
        # a flag-shaped message here; the engine/placement guard the same
        # combination for API users (and own the executor defaulting)
        raise ValueError("--workers only applies to --executor pool")
    if args.advertise is not None and args.join is None:
        raise ValueError("--advertise only applies with --join")
    replicas, replica_overrides = parse_replica_spec(args.replicas, set(list_datasets()))
    engine = ServingEngine(
        datasets=args.datasets,
        cache_size=args.cache_size,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        workers=args.workers,
        executor=args.executor,
        replicas=replicas,
        replica_overrides=replica_overrides,
        routing=args.routing,
        snapshot=args.snapshot,
        index=args.index,
        index_dir=args.index_dir,
        epochs=args.epochs,
        epoch_threshold=args.epoch_threshold,
        trace_sample=args.trace_sample,
        slow_query_ms=args.slow_ms,
    )
    if args.join is None:
        return run_server(engine, args.host, args.port)

    # cluster node: validate the addresses up front (flag-shaped errors),
    # then start the membership agent once the query port is bound — the
    # agent registers/heartbeats in the background and gates the engine to
    # the datasets the coordinator assigns (not_owner for everything until
    # registration completes)
    from .cluster import NodeAgent, parse_address

    coordinator_host, coordinator_port = parse_address(args.join)
    if args.advertise is not None and ":" in args.advertise:
        parse_address(args.advertise)
    agent_box: dict[str, NodeAgent] = {}

    def _announce(message: str) -> None:
        print(message, flush=True)
        bound_port = int(message.rsplit(":", 1)[1])
        if args.advertise is None:
            advertise = f"{args.host}:{bound_port}"
        elif ":" in args.advertise:
            advertise = args.advertise
        else:
            advertise = f"{args.advertise}:{bound_port}"
        agent = NodeAgent(
            coordinator_host, coordinator_port, advertise, engine=engine
        )
        agent.start()
        agent_box["agent"] = agent

    try:
        return run_server(engine, args.host, args.port, announce=_announce)
    finally:
        agent = agent_box.get("agent")
        if agent is not None:
            agent.stop()


def _command_index_build(args) -> int:
    from .graph import build_index, index_path, save_index

    names = list(args.datasets)
    if args.all:
        names = list_datasets()
    if not names:
        raise SystemExit("name at least one dataset, or pass --all")
    for name in names:
        dataset = load_dataset(name)
        index = build_index(dataset.graph, dataset=name)
        path = index_path(name, args.index_dir)
        save_index(index, path)
        info = index.describe()
        print(
            f"{name}: wrote {path} ({info['total_bytes']} bytes, "
            f"core kmax {info['core_kmax']}, truss kmax {info['truss_kmax']}, "
            f"built in {info['build_seconds']:.2f}s)"
        )
    return 0


def _command_index_inspect(args) -> int:
    from .graph import freeze, index_path, load_index

    path = index_path(args.dataset, args.index_dir)
    try:
        index = load_index(path)
    except FileNotFoundError:
        raise GraphError(
            f"no index file at {path}; build it with "
            f"'repro index build {args.dataset}'"
        ) from None
    # verify against the dataset as it is *now* — a stale index (the graph
    # changed since the build) is an error here, same as it is at serve time
    dataset = load_dataset(args.dataset)
    index.bind(freeze(dataset.graph))
    info = index.describe()
    if args.json:
        print(json.dumps({"index_file": str(path), **info}, indent=2, sort_keys=True))
        return 0
    print(f"index file:      {path}")
    print(f"format version:  {info['format_version']}")
    print(f"dataset:         {info['dataset']}")
    print(f"content digest:  {info['digest']}")
    print(f"nodes / edges:   {info['nodes']} / {info['edges']}")
    print(f"total bytes:     {info['total_bytes']}")
    print(f"build seconds:   {info['build_seconds']:.3f}")
    print(f"serves:          {', '.join(info['serves'])}")
    print(f"core kmax:       {info['core_kmax']}")
    core = ", ".join(f"k={k}:{c}" for k, c in info["core_communities"].items())
    print(f"core communities:  {core}")
    print(f"truss kmax:      {info['truss_kmax']}")
    truss = ", ".join(f"k={k}:{c}" for k, c in info["truss_communities"].items())
    print(f"truss communities: {truss}")
    if info.get("kecc_communities"):
        kecc = ", ".join(f"k={k}:{c}" for k, c in info["kecc_communities"].items())
        print(f"kecc partitions (cap {info['kecc_cap']}): {kecc}")
    print("region bytes:")
    for name, size in sorted(info["region_bytes"].items()):
        print(f"  {name:<12} {size}")
    return 0


def _command_index(args) -> int:
    if args.index_command == "build":
        return _command_index_build(args)
    return _command_index_inspect(args)


def _command_mutate(args) -> int:
    from .dynamic import DeltaBatch
    from .serving.client import ServingClient

    batch = DeltaBatch.from_tokens(args.ops)  # ValueError → flag-shaped error
    with ServingClient(args.host, args.port) as client:
        response = client.request(
            {"op": "mutate", "dataset": args.dataset, "ops": batch.to_wire()}
        )
    if not response.get("ok"):
        error = response.get("error", {})
        raise ValueError(f"{error.get('code', 'error')}: {error.get('message', response)}")
    print(
        f"{args.dataset}: epoch {response['epoch']} "
        f"({response['mode']}, {response['ops']} ops, "
        f"{response['nodes']} nodes / {response['edges']} edges)"
    )
    return 0


def _command_top(args) -> int:
    from .cluster import parse_address
    from .serving.client import ServingClient

    host, port = parse_address(args.coordinator)  # ValueError → flag-shaped error
    with ServingClient(host, port) as client:
        stats = client.stats()
    if not stats.get("ok"):
        error = stats.get("error", {})
        raise ValueError(f"{error.get('code', 'error')}: {error.get('message', stats)}")
    health = stats.get("health") or {}
    if args.json:
        print(json.dumps(health, indent=2, sort_keys=True))
        return 0
    live = stats.get("live_nodes", "?")
    version = stats.get("version", "?")
    print(f"cluster: {len(health)} dataset(s), {live} live node(s), table v{version}")
    if not health:
        print("no health summaries reported yet (nodes piggyback them on heartbeats)")
        return 0
    header = (
        f"{'dataset':<16} {'nodes':>5} {'qps':>8} {'p50_ms':>8} {'p99_ms':>8} "
        f"{'shed%':>6} {'errors':>7} {'queries':>9} {'epoch':>6} {'lag':>4}"
    )
    print(header)
    print("-" * len(header))
    for name, block in sorted(health.items()):
        shed_pct = 100.0 * block.get("shed_rate", 0.0)
        epoch = block.get("epoch")
        lag = block.get("epoch_lag")
        print(
            f"{name:<16} {block.get('nodes', 0):>5} {block.get('qps', 0.0):>8.1f} "
            f"{block.get('p50_ms', 0.0):>8.2f} {block.get('p99_ms', 0.0):>8.2f} "
            f"{shed_pct:>6.2f} {block.get('errors', 0):>7} "
            f"{block.get('queries', 0):>9} "
            f"{'-' if epoch is None else epoch:>6} {'-' if lag is None else lag:>4}"
        )
    return 0


def _command_coordinator(args) -> int:
    from .cluster import Coordinator, run_coordinator

    coordinator = Coordinator(
        args.datasets,
        replication=args.replication,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout,
        routing=args.routing,
    )
    return run_coordinator(coordinator, args.host, args.port)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "datasets":
            return _command_datasets()
        if args.command == "algorithms":
            return _command_algorithms()
        if args.command == "search":
            return _command_search(args)
        if args.command == "evaluate":
            return _command_evaluate(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "index":
            return _command_index(args)
        if args.command == "mutate":
            return _command_mutate(args)
        if args.command == "coordinator":
            return _command_coordinator(args)
        if args.command == "top":
            return _command_top(args)
    except BrokenPipeError:
        # piping into `head` and friends closes stdout early; exit quietly
        return 0
    except (KeyError, ValueError, GraphError, OSError) as exc:
        # unknown dataset/algorithm names, bad query nodes, invalid parameter
        # values, unreadable edge lists, a serve port already in use: a
        # structured one-liner and exit code 2, never a traceback.
        # REPRO_DEBUG=1 re-raises so internal bugs stay diagnosable.
        if os.environ.get("REPRO_DEBUG"):
            raise
        message = str(exc) if isinstance(exc, OSError) else (
            exc.args[0] if exc.args else str(exc)
        )
        print(f"error: {message}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
