"""The in-process serving engine: validation + routing through placement.

:class:`ServingEngine` is the API the TCP server wraps and the one tests
and examples use directly.  Since PR 4 it no longer owns a flat shard
dict: a :class:`~repro.serving.placement.Placement` maps each dataset to a
replicated shard (``replicas`` / ``replica_overrides``), chooses the
execution strategy (``executor`` ∈ inline / pool / process), routes
admitted requests to replicas (``routing`` ∈ least-loaded / round-robin)
and bounds the per-shard queues (``max_queue``; shed requests come back as
structured ``overloaded`` errors carrying ``retry_after_ms``).

Shards for the configured ``datasets`` are loaded eagerly at
:meth:`ServingEngine.start`; any other *registered* dataset is loaded
lazily on first request (dataset loading runs off the event loop so a cold
shard does not stall in-flight traffic to warm ones).  Unknown names never
reach a shard — they fail validation with a structured
``unknown_dataset`` / ``unknown_algorithm`` error.

Typical in-process use::

    async def main():
        async with ServingEngine(datasets=["karate"], replicas=2) as engine:
            result, cached, coalesced = await engine.query(
                "karate", "kt", [0], k=4
            )
            print(sorted(result.nodes), engine.stats()["totals"])
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import time
from typing import Any, Callable, Optional

from ..datasets import list_datasets
from ..dynamic import DeltaBatch
from ..experiments.registry import list_algorithms
from ..graph import GraphError
from ..obs import Telemetry
from ..obs.log import log_event
from ..obs.metrics import MetricsRegistry
from .placement import Placement
from .protocol import (
    ProtocolError,
    QueryRequest,
    error_payload,
    parse_request,
    result_payload,
)
from .shard import Shard

__all__ = ["ServingEngine"]


class ServingEngine:
    """Validate structured requests and route them through placement."""

    def __init__(
        self,
        datasets: Optional[list[str]] = None,
        *,
        cache_size: int = 1024,
        max_batch: int = 64,
        max_queue: int = 0,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        replicas: int = 1,
        replica_overrides: Optional[dict[str, int]] = None,
        routing: str = "least-loaded",
        snapshot: str = "shared",
        index: str = "auto",
        index_dir: Optional[str] = None,
        epochs: bool = False,
        epoch_threshold: int = 64,
        trace_sample: float = 0.0,
        trace_capacity: int = 4096,
        slow_query_ms: Optional[float] = None,
    ) -> None:
        self._known_datasets = set(list_datasets())
        self._known_algorithms = set(list_algorithms())
        preload = tuple(datasets) if datasets else ()
        for name in preload:
            if name not in self._known_datasets:
                raise KeyError(
                    f"unknown dataset {name!r}; available: "
                    f"{', '.join(sorted(self._known_datasets))}"
                )
        self._preload = preload
        if executor is None:
            # PR 3 compatibility: ``workers=N`` alone meant "process pool"
            executor = "pool" if workers is not None else "inline"
        # one telemetry bundle per engine: the tracer samples at the front
        # door, the registry folds worker metric deltas, and both ride down
        # through placement into shards, replicas and executors
        self.telemetry = Telemetry(
            trace_sample=trace_sample,
            trace_capacity=trace_capacity,
            slow_query_ms=slow_query_ms,
        )
        self._placement = Placement(
            self._known_datasets,
            cache_size=cache_size,
            max_batch=max_batch,
            max_queue=max_queue,
            replicas=replicas,
            replica_overrides=replica_overrides,
            executor=executor,
            workers=workers,
            routing=routing,
            snapshot=snapshot,
            index=index,
            index_dir=index_dir,
            epochs=epochs,
            epoch_threshold=epoch_threshold,
            telemetry=self.telemetry,
        )
        self._started = False
        self._loop = None  # captured at start() for thread-safe preloads
        # cluster mode (repro.cluster): when set, queries for datasets outside
        # the owned set are refused with the structured `not_owner` code; the
        # node agent updates this from coordinator heartbeats (a plain
        # attribute swap, safe to perform from the agent's thread)
        self._owned_datasets: Optional[frozenset[str]] = None
        #: optional callable merged into stats() as the "node" block (the
        #: cluster node agent installs its membership/heartbeat counters here)
        self.node_stats_provider: Optional[Callable[[], dict[str, Any]]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Load the configured shards and start their replica loops."""
        if self._started:
            return
        self._loop = asyncio.get_running_loop()
        await self._placement.start(self._preload)
        self._started = True

    async def close(self, drain: bool = True) -> None:
        """Close every shard.  With ``drain`` (the default) in-flight
        batches finish and their clients get real results; queued-but-
        unstarted requests fail with structured errors either way."""
        await self._placement.close(drain=drain)
        self._started = False

    async def __aenter__(self) -> "ServingEngine":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # request routing
    # ------------------------------------------------------------------
    async def submit(self, request: QueryRequest) -> tuple[Any, bool, bool]:
        """Resolve a validated request; returns ``(result, cached, coalesced)``.

        In cluster mode a query for a dataset this node does not own fails
        with ``not_owner`` *before* any shard is (lazily) loaded — owning a
        dataset is what justifies paying for its snapshot.  A dataset that
        is not registered at all is not an ownership problem: it falls
        through to placement's ``unknown_dataset`` error, which a client
        cannot fix by refetching any routing table.
        """
        self._check_owner(request.dataset)
        return await self._placement.submit(request)

    async def submit_traced(
        self, request: QueryRequest
    ) -> tuple[Any, bool, bool, Optional[int]]:
        """Like :meth:`submit`, plus the epoch the result was computed on
        (``None`` unless the engine runs with epochal snapshots)."""
        self._check_owner(request.dataset)
        return await self._placement.submit_traced(request)

    def _check_owner(self, dataset: str) -> None:
        owned = self._owned_datasets
        if (
            owned is not None
            and dataset not in owned
            and dataset in self._known_datasets
        ):
            raise ProtocolError(
                "not_owner",
                f"this node does not own dataset {dataset!r}; "
                f"refetch the routing table from the coordinator",
            )

    async def mutate(
        self, dataset: str, batch: DeltaBatch, trace=None
    ) -> dict[str, Any]:
        """Apply a delta batch to ``dataset``, publishing the next epoch.

        Cluster-gated like :meth:`submit`: a node must own a dataset to
        mutate it.  Requires the engine to run with ``epochs=True``
        (``bad_request`` otherwise); a semantically invalid op — removing
        an absent edge, say — fails with ``bad_query`` and the published
        state is untouched.  ``trace`` is the sampled observability
        context; when present the epoch manager spans prepare/commit and
        the index repair under it.
        """
        if dataset not in self._known_datasets:
            raise ProtocolError(
                "unknown_dataset",
                f"unknown dataset {dataset!r}; available: "
                f"{', '.join(sorted(self._known_datasets))}",
            )
        self._check_owner(dataset)
        try:
            return await self._placement.apply_delta(dataset, batch, trace=trace)
        except GraphError as exc:
            # a well-formed request the graph rejects (removing an absent
            # edge, a stale required index): same class as a query for an
            # absent node
            raise ProtocolError("bad_query", str(exc)) from None
        except ValueError as exc:
            raise ProtocolError("bad_request", str(exc)) from None

    def dataset_epochs(self) -> dict[str, int]:
        """Current epoch per epochal shard (empty without ``epochs=True``)."""
        return self._placement.dataset_epochs()

    async def query(
        self, dataset: str, algorithm: str, nodes, **params
    ) -> tuple[Any, bool, bool]:
        """Convenience wrapper: build, validate and submit one request."""
        request = parse_request(
            {
                "dataset": dataset,
                "algorithm": algorithm,
                "nodes": list(nodes),
                "params": params,
            },
            self._known_datasets,
            self._known_algorithms,
        )
        return await self.submit(request)

    async def handle(self, payload: Any) -> dict[str, Any]:
        """Serve one decoded wire payload; never raises, always a response.

        This is the single entry point the TCP server uses: validation
        failures and execution failures alike come back as structured
        ``{"ok": false, "error": ...}`` payloads.

        Queries and mutations are sampled for tracing here, at the front
        door: a sampled request carries its context down every hop and
        returns ``trace_id`` on the wire, and the engine emits the root
        span around the whole dispatch.  Unsampled requests take exactly
        the pre-observability path (and byte-identical responses).
        """
        request_id = payload.get("id") if isinstance(payload, dict) else None
        tracer = self.telemetry.tracer
        ctx = None
        root_name = "request"
        wall_started: Optional[float] = None
        try:
            op = payload.get("op", "query") if isinstance(payload, dict) else None
            if op == "ping":
                return {"ok": True, "op": "ping", **_with_id(request_id)}
            if op == "stats":
                return {"ok": True, "op": "stats", **self.stats(), **_with_id(request_id)}
            if op == "trace":
                trace_id = payload.get("trace_id")
                if trace_id is not None and not isinstance(trace_id, str):
                    raise ProtocolError("bad_request", "'trace_id' must be a string")
                if trace_id is not None:
                    return {
                        "ok": True,
                        "op": "trace",
                        "trace_id": trace_id,
                        "spans": tracer.spans(trace_id),
                        **_with_id(request_id),
                    }
                return {
                    "ok": True,
                    "op": "trace",
                    "traces": tracer.recent(),
                    **_with_id(request_id),
                }
            if op == "metrics":
                return {
                    "ok": True,
                    "op": "metrics",
                    "text": self.metrics_text(),
                    **_with_id(request_id),
                }
            if op == "shutdown":
                # acknowledged here for protocol completeness; stopping the
                # transport is the owner's job (QueryServer intercepts this
                # op before handle() and closes the listener itself)
                return {"ok": True, "op": "shutdown", **_with_id(request_id)}
            if op == "query":
                request = parse_request(
                    payload, self._known_datasets, self._known_algorithms
                )
                ctx = tracer.sample_request()
                if ctx is not None:
                    request = dataclasses.replace(request, trace=ctx)
                    wall_started = time.time()
                started = time.perf_counter()
                result, cached, coalesced, epoch = await self.submit_traced(request)
                served = time.perf_counter() - started
                if ctx is not None:
                    tracer.emit_root(
                        ctx,
                        "request",
                        wall_started,
                        wall_started + served,
                        dataset=request.dataset,
                        algorithm=request.algorithm,
                        cached=cached,
                        coalesced=coalesced,
                    )
                slow_ms = self.telemetry.slow_query_ms
                if slow_ms is not None and served * 1000.0 >= slow_ms:
                    log_event(
                        "slow_query",
                        level=logging.WARNING,
                        dataset=request.dataset,
                        algorithm=request.algorithm,
                        served_ms=round(served * 1000.0, 3),
                        cached=cached,
                        coalesced=coalesced,
                        trace_id=ctx.trace_id if ctx is not None else None,
                    )
                return result_payload(
                    request,
                    result,
                    cached=cached,
                    coalesced=coalesced,
                    served_seconds=served,
                    request_id=request_id,
                    epoch=epoch,
                    trace_id=ctx.trace_id if ctx is not None else None,
                )
            if op == "mutate":
                root_name = "mutate"
                dataset = payload.get("dataset")
                if not isinstance(dataset, str) or not dataset:
                    raise ProtocolError("bad_request", "request needs a 'dataset' string")
                try:
                    batch = DeltaBatch.from_wire(payload.get("ops"))
                except ValueError as exc:
                    raise ProtocolError("bad_request", str(exc)) from None
                ctx = tracer.sample_request()
                if ctx is not None:
                    wall_started = time.time()
                applied = await self.mutate(dataset, batch, trace=ctx)
                response = {
                    "ok": True,
                    "op": "mutate",
                    "dataset": dataset,
                    **applied,
                    **_with_id(request_id),
                }
                if ctx is not None:
                    tracer.emit_root(
                        ctx,
                        "mutate",
                        wall_started,
                        time.time(),
                        dataset=dataset,
                        epoch=applied.get("epoch"),
                    )
                    response["trace_id"] = ctx.trace_id
                return response
            raise ProtocolError("bad_request", f"unknown operation {op!r}")
        except ProtocolError as exc:
            trace_id = ctx.trace_id if ctx is not None else None
            if ctx is not None and wall_started is not None:
                tracer.emit_root(
                    ctx, root_name, wall_started, time.time(), error=exc.code
                )
            log_event(
                "request_error",
                level=logging.WARNING,
                code=exc.code,
                message=exc.message,
                trace_id=trace_id,
            )
            return error_payload(exc, request_id, trace_id=trace_id)
        except Exception as exc:  # noqa: BLE001 - the server must stay up
            trace_id = ctx.trace_id if ctx is not None else None
            if ctx is not None and wall_started is not None:
                tracer.emit_root(
                    ctx, root_name, wall_started, time.time(), error="internal_error"
                )
            log_event(
                "internal_error",
                level=logging.ERROR,
                error=f"{type(exc).__name__}: {exc}",
                trace_id=trace_id,
            )
            return error_payload(
                ProtocolError("internal_error", f"{type(exc).__name__}: {exc}"),
                request_id,
                trace_id=trace_id,
            )

    # ------------------------------------------------------------------
    # cluster membership
    # ------------------------------------------------------------------
    def set_owned_datasets(self, names: Optional[Any]) -> None:
        """Restrict serving to ``names`` (cluster mode); ``None`` lifts it.

        Called by the cluster node agent whenever the coordinator's routing
        table changes this node's assignment.  An *empty* set is meaningful:
        a node that has joined but holds no assignment yet answers every
        query with ``not_owner`` instead of loading shards it does not own.
        """
        self._owned_datasets = None if names is None else frozenset(names)

    def request_preload(self, names) -> None:
        """Warm shards for ``names`` from any thread (fire-and-forget).

        The cluster node agent calls this when the coordinator assigns
        datasets to this node: building each shard *now* — dataset load,
        freeze, and the community-index load — means a failover target is
        already warm when the first rerouted query lands, instead of
        re-deriving decompositions on the request path.  Unknown names and
        shard-build failures are ignored here; they surface through the
        normal query path with structured errors.
        """
        loop = self._loop
        if loop is None or loop.is_closed():
            return

        async def _warm(name: str) -> None:
            try:
                await self._placement.get_shard(name)
            except Exception:  # noqa: BLE001 - preloading is best-effort
                pass

        for name in names:
            if name in self._known_datasets:
                asyncio.run_coroutine_threadsafe(_warm(name), loop)

    @property
    def owned_datasets(self) -> Optional[frozenset[str]]:
        """The datasets this node currently owns (None = not in a cluster)."""
        return self._owned_datasets

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def placement(self) -> Placement:
        """The placement layer (replica config, routing, shard map)."""
        return self._placement

    @property
    def shards(self) -> dict[str, Shard]:
        """The live shards keyed by dataset name (read-only use)."""
        return self._placement.shards

    def stats(self) -> dict[str, Any]:
        """Aggregate + per-shard (+ per-replica) statistics, JSON-safe.

        In cluster mode a ``node`` block is merged in: this node's identity,
        owned datasets and membership counters, provided by the node agent.
        """
        stats = self._placement.stats()
        provider = self.node_stats_provider
        if provider is not None:
            stats["node"] = provider()
        elif self._owned_datasets is not None:
            stats["node"] = {"owned": sorted(self._owned_datasets)}
        if self.telemetry.tracer.enabled:
            # conditional on purpose: with tracing off the stats payload is
            # byte-identical to a pre-observability server
            stats["obs"] = {
                "trace_sample": self.telemetry.tracer.sample,
                "spans": len(self.telemetry.tracer),
                "slow_query_ms": self.telemetry.slow_query_ms,
            }
        return stats

    def metrics_text(self) -> str:
        """Every metric as Prometheus text exposition (the ``metrics`` op).

        Scraped on demand: a fresh registry snapshot is assembled from the
        live shard counters and histograms (the same objects the ``stats``
        blocks read, so the two surfaces can never disagree), then the
        engine registry — where worker processes' shipped deltas
        accumulate — is merged in.
        """
        snapshot = MetricsRegistry()
        for name, shard in sorted(self._placement.shards.items()):
            labels = {"dataset": name}
            snapshot.counter("repro_queries_total", **labels).inc(shard.queries)
            snapshot.counter("repro_cache_hits_total", **labels).inc(shard.cache_hits)
            snapshot.counter("repro_cache_misses_total", **labels).inc(shard.cache_misses)
            snapshot.counter("repro_coalesced_total", **labels).inc(shard.coalesced)
            snapshot.counter("repro_errors_total", **labels).inc(shard.errors)
            snapshot.counter("repro_shed_total", **labels).inc(shard.shed)
            snapshot.counter("repro_retried_total", **labels).inc(shard.retried)
            snapshot.gauge("repro_queue_depth", **labels).set(
                shard.replica_set.total_queued()
            )
            snapshot.gauge("repro_cache_entries", **labels).set(len(shard._cache))
            snapshot.histogram("repro_request_latency_ms", **labels).merge(
                shard.latency_hist
            )
            snapshot.histogram("repro_execution_latency_ms", **labels).merge(
                shard.execution_hist
            )
        for name, epoch in self._placement.dataset_epochs().items():
            snapshot.gauge("repro_epoch", dataset=name).set(epoch)
        snapshot.merge(self.telemetry.registry)
        return snapshot.exposition()

    def health_summary(self) -> dict[str, Any]:
        """Compact per-dataset metrics for the cluster health plane.

        JSON-safe and deliberately tiny — it piggybacks on every node
        heartbeat.  The latency histogram rides along in wire form so the
        coordinator can *merge* histograms across nodes and answer cluster
        p99 questions without ever seeing a raw sample.
        """
        return {
            name: {
                "queries": shard.queries,
                "errors": shard.errors,
                "shed": shard.shed,
                "latency": shard.latency_hist.to_wire(),
            }
            for name, shard in sorted(self._placement.shards.items())
        }


def _with_id(request_id: Any) -> dict[str, Any]:
    return {} if request_id is None else {"id": request_id}
