"""The in-process serving engine: shard management + request routing.

:class:`ServingEngine` is the API the TCP server wraps and the one tests
and examples use directly.  It owns one :class:`~repro.serving.shard.Shard`
per dataset (the shard-per-dataset layout the ROADMAP calls for), routes
each validated :class:`~repro.serving.protocol.QueryRequest` to the owning
shard, and exposes the aggregate statistics.

Shards for the configured ``datasets`` are loaded eagerly at
:meth:`ServingEngine.start`; any other *registered* dataset is loaded
lazily on first request (dataset loading runs off the event loop so a cold
shard does not stall in-flight traffic to warm ones).  Unknown names never
reach a shard — they fail validation with a structured
``unknown_dataset`` / ``unknown_algorithm`` error.

Typical in-process use::

    async def main():
        async with ServingEngine(datasets=["karate"]) as engine:
            result, cached, coalesced = await engine.query(
                "karate", "kt", [0], k=4
            )
            print(sorted(result.nodes), engine.stats()["totals"])
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Optional

from ..datasets import list_datasets, load_dataset
from ..experiments.registry import list_algorithms
from .protocol import (
    ProtocolError,
    QueryRequest,
    error_payload,
    parse_request,
    result_payload,
)
from .shard import Shard

__all__ = ["ServingEngine"]


class ServingEngine:
    """Route structured query requests to per-dataset shards."""

    def __init__(
        self,
        datasets: Optional[list[str]] = None,
        *,
        cache_size: int = 1024,
        max_batch: int = 64,
        workers: Optional[int] = None,
    ) -> None:
        self._known_datasets = set(list_datasets())
        self._known_algorithms = set(list_algorithms())
        preload = tuple(datasets) if datasets else ()
        for name in preload:
            if name not in self._known_datasets:
                raise KeyError(
                    f"unknown dataset {name!r}; available: "
                    f"{', '.join(sorted(self._known_datasets))}"
                )
        self._preload = preload
        self._shard_options = {
            "cache_size": cache_size,
            "max_batch": max_batch,
            "workers": workers,
        }
        self._shards: dict[str, Shard] = {}
        self._load_lock: Optional[asyncio.Lock] = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Load the configured shards and start their batch loops."""
        if self._started:
            return
        self._load_lock = asyncio.Lock()
        self._closed = False
        for name in self._preload:
            await self._get_shard(name)
        self._started = True

    async def close(self) -> None:
        """Stop every shard (queued requests fail with ``internal_error``).

        Takes the load lock first so a lazy shard load racing with shutdown
        either completes (and is closed here) or observes ``_closed`` and
        refuses — no shard task or worker pool can leak past close().
        """
        if self._load_lock is not None:
            async with self._load_lock:
                self._closed = True
        else:
            self._closed = True
        for shard in self._shards.values():
            await shard.close()
        self._shards.clear()
        self._started = False

    async def __aenter__(self) -> "ServingEngine":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # request routing
    # ------------------------------------------------------------------
    async def _get_shard(self, name: str) -> Shard:
        shard = self._shards.get(name)
        if shard is not None:
            return shard
        if self._load_lock is None:
            raise ProtocolError("internal_error", "engine is not started")
        async with self._load_lock:
            if self._closed:
                raise ProtocolError("internal_error", "engine is shutting down")
            shard = self._shards.get(name)  # a concurrent request may have won
            if shard is not None:
                return shard
            if name not in self._known_datasets:
                raise ProtocolError("unknown_dataset", f"unknown dataset {name!r}")
            loop = asyncio.get_running_loop()

            def _build() -> Shard:
                # dataset construction AND the freeze + CSR prebuild in
                # Shard.__init__ are the expensive parts — run the whole
                # build off the loop so warm shards keep serving meanwhile
                return Shard(load_dataset(name), key=name, **self._shard_options)

            shard = await loop.run_in_executor(None, _build)
            await shard.start()
            self._shards[name] = shard
        return shard

    async def submit(self, request: QueryRequest) -> tuple[Any, bool, bool]:
        """Resolve a validated request; returns ``(result, cached, coalesced)``."""
        shard = await self._get_shard(request.dataset)
        return await shard.submit(request)

    async def query(
        self, dataset: str, algorithm: str, nodes, **params
    ) -> tuple[Any, bool, bool]:
        """Convenience wrapper: build, validate and submit one request."""
        request = parse_request(
            {
                "dataset": dataset,
                "algorithm": algorithm,
                "nodes": list(nodes),
                "params": params,
            },
            self._known_datasets,
            self._known_algorithms,
        )
        return await self.submit(request)

    async def handle(self, payload: Any) -> dict[str, Any]:
        """Serve one decoded wire payload; never raises, always a response.

        This is the single entry point the TCP server uses: validation
        failures and execution failures alike come back as structured
        ``{"ok": false, "error": ...}`` payloads.
        """
        request_id = payload.get("id") if isinstance(payload, dict) else None
        try:
            op = payload.get("op", "query") if isinstance(payload, dict) else None
            if op == "ping":
                return {"ok": True, "op": "ping", **_with_id(request_id)}
            if op == "stats":
                return {"ok": True, "op": "stats", **self.stats(), **_with_id(request_id)}
            if op == "shutdown":
                # acknowledged here for protocol completeness; stopping the
                # transport is the owner's job (QueryServer intercepts this
                # op before handle() and closes the listener itself)
                return {"ok": True, "op": "shutdown", **_with_id(request_id)}
            if op == "query":
                request = parse_request(
                    payload, self._known_datasets, self._known_algorithms
                )
                started = time.perf_counter()
                result, cached, coalesced = await self.submit(request)
                return result_payload(
                    request,
                    result,
                    cached=cached,
                    coalesced=coalesced,
                    served_seconds=time.perf_counter() - started,
                    request_id=request_id,
                )
            raise ProtocolError("bad_request", f"unknown operation {op!r}")
        except ProtocolError as exc:
            return error_payload(exc, request_id)
        except Exception as exc:  # noqa: BLE001 - the server must stay up
            return error_payload(
                ProtocolError("internal_error", f"{type(exc).__name__}: {exc}"), request_id
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shards(self) -> dict[str, Shard]:
        """The live shards keyed by dataset name (read-only use)."""
        return self._shards

    def stats(self) -> dict[str, Any]:
        """Aggregate + per-shard statistics, JSON-serialisable."""
        per_shard = {name: shard.stats() for name, shard in sorted(self._shards.items())}
        totals = {
            key: sum(stats[key] for stats in per_shard.values())
            for key in (
                "queries",
                "cache_hits",
                "cache_misses",
                "coalesced",
                "batches",
                "executed",
                "errors",
            )
        }
        return {"shards": per_shard, "totals": totals}


def _with_id(request_id: Any) -> dict[str, Any]:
    return {} if request_id is None else {"id": request_id}
