"""Keep-alive client pool with bounded retry of shed requests.

:class:`ServingClientPool` is the client-side half of the admission-control
story.  It keeps a fixed-size pool of live
:class:`~repro.serving.client.ServingClient` connections shared across
threads, so a load generator (or any multi-threaded caller) stops paying
per-request — or per-replay — connect cost, and it understands the
server's ``overloaded`` responses: a shed query is retried after the
advertised ``retry_after_ms``, with the attempt number sent back to the
server (``"attempt": N``) so shed/retry behaviour is observable in the
``stats`` op on both ends.

The retry budget is **bounded** (``max_retries``); when it is exhausted
the last ``overloaded`` response is returned to the caller rather than
looping forever against a saturated server.  Retry sleeps are **jittered**:
many clients shed by the same overload event receive the same
``retry_after_ms`` hint, and sleeping exactly that long would march them
back in lockstep to re-shed together — each pool therefore stretches the
hint by a random factor in ``[1, 1 + jitter)`` drawn from its own seedable
PRNG (pass ``jitter_seed`` for a reproducible backoff schedule in tests).
Connection failures are handled underneath by each client's
reconnect-once logic; a connection that still fails is discarded and
replaced rather than returned to the pool.

Typical use::

    with ServingClientPool("127.0.0.1", 7531, size=8) as pool:
        response = pool.query("karate", "kt", [0, 33])   # any thread
        print(response["ok"], pool.counters())
"""

from __future__ import annotations

import queue
import random
import threading
import time
from typing import Any, Optional

from .client import ServingClient

__all__ = ["ServingClientPool"]


class ServingClientPool:
    """Thread-safe pool of keep-alive serving connections.

    ``size`` bounds the number of concurrent connections; a thread that
    finds the pool empty blocks until one is released.  ``max_retries``
    bounds how many times a single :meth:`query` is retried after being
    shed with ``overloaded``; the sleep between retries honours the
    server's ``retry_after_ms`` hint, capped at ``backoff_cap_ms`` and then
    stretched by a uniform factor in ``[1, 1 + jitter)`` so synchronized
    retry storms from many clients desynchronize instead of re-shedding in
    lockstep.  The jitter PRNG is per-pool and seedable (``jitter_seed``)
    for deterministic backoff schedules in tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        size: int = 4,
        timeout: float = 60.0,
        max_retries: int = 10,
        backoff_cap_ms: float = 250.0,
        jitter: float = 0.5,
        jitter_seed: Optional[int] = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.host = host
        self.port = port
        self.size = size
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_cap_ms = backoff_cap_ms
        self.jitter = jitter
        self._jitter_rng = random.Random(jitter_seed)
        self._idle: queue.LifoQueue = queue.LifoQueue()
        self._created = 0
        self._lock = threading.Lock()
        self._closed = False
        # counters (dashboards / load-generator reporting)
        self.requests = 0
        self.retries = 0
        self.overloaded_responses = 0
        self.exhausted = 0

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def _acquire(self) -> ServingClient:
        # a loop, not a single blocking get: when a broken connection is
        # discarded (closed, _created decremented) nothing is put back on
        # the idle queue, so a waiter must wake up and re-check whether it
        # may now *create* a replacement instead of sleeping forever
        while True:
            if self._closed:
                raise RuntimeError("client pool is closed")
            try:
                return self._idle.get_nowait()
            except queue.Empty:
                pass
            with self._lock:
                if self._created < self.size:
                    self._created += 1
                    try:
                        return ServingClient(self.host, self.port, timeout=self.timeout)
                    except BaseException:
                        self._created -= 1
                        raise
            try:
                return self._idle.get(timeout=0.05)
            except queue.Empty:
                continue  # re-check capacity (and the closed flag)

    def _release(self, client: ServingClient, *, broken: bool = False) -> None:
        if broken or self._closed:
            client.close()
            with self._lock:
                self._created -= 1
        else:
            self._idle.put(client)

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One round-trip through a pooled connection (no shed retry)."""
        client = self._acquire()
        try:
            response = client.request(payload)
        except BaseException:
            self._release(client, broken=True)
            raise
        self._release(client)
        with self._lock:
            self.requests += 1
        return response

    def query(
        self,
        dataset: str,
        algorithm: str,
        nodes,
        *,
        max_retries: Optional[int] = None,
        **params,
    ) -> dict[str, Any]:
        """Run one community search, retrying shed requests.

        Returns the first non-``overloaded`` response, or the last
        ``overloaded`` response once the retry budget is spent (the caller
        can distinguish the two through ``response["ok"]`` /
        ``response["error"]["code"]``).
        """
        budget = self.max_retries if max_retries is None else max_retries
        payload: dict[str, Any] = {
            "op": "query",
            "dataset": dataset,
            "algorithm": algorithm,
            "nodes": list(nodes),
        }
        if params:
            payload["params"] = params
        attempt = 0
        while True:
            if attempt:
                payload["attempt"] = attempt
            response = self.request(payload)
            error = response.get("error")
            if response.get("ok") or not error or error.get("code") != "overloaded":
                return response
            with self._lock:
                self.overloaded_responses += 1
            if attempt >= budget:
                with self._lock:
                    self.exhausted += 1
                return response
            with self._lock:
                self.retries += 1
            attempt += 1
            time.sleep(self._retry_delay_ms(error.get("retry_after_ms", 10)) / 1000.0)

    def _retry_delay_ms(self, hint_ms: Any) -> float:
        """The jittered sleep before a retry, in milliseconds.

        The server's ``retry_after_ms`` hint is capped at ``backoff_cap_ms``
        and stretched by a per-pool random factor in ``[1, 1 + jitter)``:
        never *shorter* than advertised (an early retry is a guaranteed
        re-shed), but spread out so clients shed together do not all come
        back in the same instant.  Floor 1 ms.
        """
        delay_ms = min(float(hint_ms), self.backoff_cap_ms)
        with self._lock:
            factor = 1.0 + self.jitter * self._jitter_rng.random()
        return max(delay_ms * factor, 1.0)

    # ------------------------------------------------------------------
    # convenience operations
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        """Liveness check through a pooled connection."""
        return self.request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        """Fetch the server's statistics snapshot."""
        return self.request({"op": "stats"})

    def counters(self) -> dict[str, int]:
        """Client-side counters: requests, retries, sheds seen, exhausted."""
        return {
            "requests": self.requests,
            "retries": self.retries,
            "overloaded_responses": self.overloaded_responses,
            "exhausted": self.exhausted,
            "connections": self._created,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every pooled connection; idempotent."""
        self._closed = True
        while True:
            try:
                client = self._idle.get_nowait()
            except queue.Empty:
                break
            client.close()
            with self._lock:
                self._created -= 1

    def __enter__(self) -> "ServingClientPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
