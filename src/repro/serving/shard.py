"""One serving shard: a dataset frozen once, queries micro-batched against it.

A :class:`Shard` owns everything query execution needs for a single
dataset:

* the **frozen snapshot** — the dataset graph is frozen exactly once
  (dict→CSR conversion and adjacency caches are paid a single time) and
  every query of the shard's lifetime runs against the shared immutable
  graph, so the per-snapshot memo cache (k-core structures, the full truss
  decomposition, per-``k`` truss components, kecc partitions, ...)
  amortises across *requests* the same way ``evaluate_batch`` amortises it
  across a sweep;
* an **LRU result cache** keyed by the full request identity — repeated
  queries are answered without touching the graph at all;
* an **in-flight map** that coalesces duplicate requests: a request that
  arrives while an identical one is queued or executing awaits the same
  future instead of being executed twice;
* a **micro-batching loop** — requests that queue up while a batch is
  executing are drained into the next batch, so bursts share decomposition
  memoisation exactly like the offline batched engine;
* optional **process workers** reusing the ``evaluate_batch`` fan-out: the
  frozen dataset is pickled once per worker via the pool initializer and
  batch items fan out over the pool (each worker keeps its own memo cache);
* **per-shard statistics**: hits, misses, coalesced requests, batch and
  queue-depth extremes, and end-to-end latency percentiles.

Execution is deliberately run off the event loop (a thread for the
in-process mode, the pool otherwise) so the loop stays free to accept and
queue requests while a batch runs — that is what makes micro-batches
actually fill up under concurrent load.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import OrderedDict, deque
from dataclasses import replace
from typing import Any, Optional, Union

from ..datasets import Dataset
from ..experiments.registry import get_algorithm
from ..graph import FrozenGraph, GraphError, freeze
from .protocol import ProtocolError, QueryRequest

__all__ = ["Shard", "latency_percentile"]


def latency_percentile(values, fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for an empty sample)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(len(ordered) * fraction))
    return ordered[min(len(ordered), rank) - 1]


# ----------------------------------------------------------------------------
# process-worker plumbing (mirrors experiments.runner's batched fan-out: the
# frozen dataset is pickled once per worker by the initializer, not per task)
# ----------------------------------------------------------------------------

_WORKER_DATASET: Optional[Dataset] = None


def _shard_worker_init(dataset: Dataset) -> None:
    globals()["_WORKER_DATASET"] = dataset


def _shard_worker_run(algorithm: str, params: tuple, nodes: tuple):
    runner = _resolve_algorithm(algorithm, dict(params))
    return runner(_WORKER_DATASET.graph, list(nodes))


def _resolve_algorithm(algorithm: str, params: dict):
    """Look the algorithm up, mapping *lookup* failure to its structured code.

    A ``KeyError`` raised later, inside the algorithm itself, must not be
    reported as ``unknown_algorithm`` — it falls through to
    ``internal_error`` via :func:`_as_protocol_error`.
    """
    try:
        return get_algorithm(algorithm, **params)
    except KeyError as exc:
        raise ProtocolError(
            "unknown_algorithm", str(exc.args[0]) if exc.args else str(exc)
        ) from None


Outcome = Union["ProtocolError", Any]  # CommunityResult or a structured error


class Shard:
    """Serve one dataset from a frozen snapshot with micro-batched execution."""

    def __init__(
        self,
        dataset: Dataset,
        *,
        key: Optional[str] = None,
        cache_size: int = 1024,
        max_batch: int = 64,
        workers: Optional[int] = None,
        latency_window: int = 4096,
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.dataset = dataset
        self.key = key if key is not None else dataset.name
        self.frozen: FrozenGraph = freeze(dataset.graph)
        self.frozen.csr.adjacency_lists()  # prebuild outside any request timing
        self.cache_size = cache_size
        self.max_batch = max_batch
        self.workers = workers
        self._cache: OrderedDict[tuple, Any] = OrderedDict()
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self._pool = None
        # statistics
        self.queries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        self.batches = 0
        self.executed = 0
        self.errors = 0
        self.max_queue_depth = 0
        self.max_batch_size = 0
        self._latencies: deque[float] = deque(maxlen=latency_window)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the worker pool (if any) and start the batch loop."""
        if self._task is not None:
            return
        if self.workers is not None:
            import concurrent.futures

            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_shard_worker_init,
                initargs=(replace(self.dataset, graph=self.frozen),),
            )
        self._task = asyncio.create_task(self._batch_loop(), name=f"shard:{self.key}")

    async def close(self) -> None:
        """Stop the batch loop, fail queued requests, shut the pool down."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while True:
            try:
                request, future = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            self._inflight.pop(request.cache_key, None)
            if not future.done():
                future.set_exception(
                    ProtocolError("internal_error", "shard is shutting down")
                )
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    async def submit(self, request: QueryRequest) -> tuple[Any, bool, bool]:
        """Resolve one request; returns ``(result, cached, coalesced)``.

        Raises :class:`ProtocolError` for structured failures (bad query
        node, unsupported parameter, shutdown).
        """
        arrival = time.perf_counter()
        self.queries += 1
        key = request.cache_key
        hit = self._cache.get(key)
        if hit is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            self._latencies.append(time.perf_counter() - arrival)
            return hit, True, False
        self.cache_misses += 1

        pending = self._inflight.get(key)
        if pending is not None:
            self.coalesced += 1
            result = await asyncio.shield(pending)
            self._latencies.append(time.perf_counter() - arrival)
            return result, False, True

        if self._task is None:
            # no batch loop to drain the queue: enqueueing would hang forever
            raise ProtocolError("internal_error", "shard is closed")
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._queue.put_nowait((request, future))
        depth = self._queue.qsize()
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        result = await asyncio.shield(future)
        self._latencies.append(time.perf_counter() - arrival)
        return result, False, False

    async def _batch_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self.batches += 1
            if len(batch) > self.max_batch_size:
                self.max_batch_size = len(batch)
            requests = [request for request, _ in batch]
            try:
                outcomes = await self._run_batch(requests)
            except asyncio.CancelledError:
                for request, future in batch:
                    self._inflight.pop(request.cache_key, None)
                    if not future.done():
                        future.set_exception(
                            ProtocolError("internal_error", "shard is shutting down")
                        )
                raise
            except Exception as exc:  # noqa: BLE001 - the loop must survive
                # e.g. submitting to a broken process pool raises synchronously;
                # fail this batch structurally and keep draining the queue
                # rather than silently wedging the shard
                outcomes = [_as_protocol_error(exc) for _ in requests]
            for (request, future), outcome in zip(batch, outcomes):
                key = request.cache_key
                if isinstance(outcome, ProtocolError):
                    self.errors += 1
                    self._inflight.pop(key, None)
                    if not future.done():
                        future.set_exception(outcome)
                else:
                    # store before unlinking from _inflight so a same-key
                    # request arriving in between sees the cache, not a miss
                    self._store(key, outcome)
                    self._inflight.pop(key, None)
                    if not future.done():
                        future.set_result(outcome)

    async def _run_batch(self, requests: list[QueryRequest]) -> list[Outcome]:
        loop = asyncio.get_running_loop()
        if self._pool is None:
            # one thread hop for the whole batch: the event loop keeps
            # accepting (and queueing) requests while the batch executes
            return await loop.run_in_executor(None, self._execute_batch, requests)
        self.executed += len(requests)
        futures = [
            loop.run_in_executor(
                self._pool, _shard_worker_run, request.algorithm, request.params, request.nodes
            )
            for request in requests
        ]
        outcomes: list[Outcome] = []
        for future in futures:
            try:
                outcomes.append(await future)
            except Exception as exc:  # noqa: BLE001 - mapped to structured codes
                outcomes.append(_as_protocol_error(exc))
        return outcomes

    def _execute_batch(self, requests: list[QueryRequest]) -> list[Outcome]:
        outcomes: list[Outcome] = []
        for request in requests:
            self.executed += 1
            try:
                runner = _resolve_algorithm(request.algorithm, request.param_dict())
                outcomes.append(runner(self.frozen, list(request.nodes)))
            except Exception as exc:  # noqa: BLE001 - mapped to structured codes
                outcomes.append(_as_protocol_error(exc))
        return outcomes

    def _store(self, key: tuple, result: Any) -> None:
        if self.cache_size == 0:
            return
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Return a JSON-serialisable snapshot of the shard counters."""
        latencies = list(self._latencies)
        return {
            "dataset": self.key,
            "nodes": self.frozen.number_of_nodes(),
            "edges": self.frozen.number_of_edges(),
            "workers": self.workers or 0,
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "executed": self.executed,
            "errors": self.errors,
            "queue_depth": self._queue.qsize(),
            "max_queue_depth": self.max_queue_depth,
            "max_batch_size": self.max_batch_size,
            "cache_entries": len(self._cache),
            "latency_ms": {
                "count": len(latencies),
                "p50": round(latency_percentile(latencies, 0.50) * 1000.0, 3),
                "p95": round(latency_percentile(latencies, 0.95) * 1000.0, 3),
                "max": round(max(latencies, default=0.0) * 1000.0, 3),
            },
        }


def _as_protocol_error(exc: Exception) -> ProtocolError:
    """Map an execution failure to a structured, client-visible error."""
    if isinstance(exc, ProtocolError):
        return exc
    if isinstance(exc, GraphError):
        return ProtocolError("bad_query", str(exc))
    if isinstance(exc, TypeError):
        # an unsupported parameter name surfaces as a TypeError at call time
        return ProtocolError("bad_request", f"{type(exc).__name__}: {exc}")
    return ProtocolError("internal_error", f"{type(exc).__name__}: {exc}")
