"""One serving shard: admission, coalescing and caching for a dataset.

Since PR 4 the shard no longer executes anything itself — execution lives
in the :mod:`~repro.serving.executor` layer, replication and micro-batch
loops in :mod:`~repro.serving.placement`.  What remains here is the pure
request-lifecycle logic every replica strategy shares:

* the **frozen snapshot** — the dataset graph is frozen exactly once and
  shared by every inline/pool replica, so the per-snapshot memo cache
  (k-core structures, the full truss decomposition, per-``k`` truss
  components, kecc partitions, ...) amortises across *requests* the same
  way ``evaluate_batch`` amortises it across a sweep (worker-process
  replicas freeze their own private snapshot instead);
* an **LRU result cache** keyed by ``(epoch, request identity)`` — repeated
  queries are answered without touching any replica, and a republished
  snapshot (see :mod:`repro.dynamic`) can never serve a result computed
  against a prior graph: the epoch is part of the key and superseded
  entries are purged on swap;
* an **in-flight map** that coalesces duplicate requests: a request that
  arrives while an identical one is queued or executing awaits the same
  future instead of being executed twice (retries coalesce with their
  original, because ``attempt`` is excluded from the cache key) — keyed by
  epoch too, so a request admitted after a snapshot swap never joins a
  stale computation;
* **admission control** — a bounded queue across the replica set
  (``max_queue``; 0 disables the bound).  A request that finds the queue
  full is *shed* with the closed protocol code ``overloaded`` and a
  ``retry_after_ms`` estimate derived from the shard's recent latency, so
  a well-behaved client backs off instead of piling on;
* **per-shard statistics**: hits, misses, coalesced requests, shed and
  retried counts, queue-depth high-water marks, end-to-end latency
  percentiles, and the per-replica breakdown.

Closing a shard **drains**: the in-flight batch on each replica finishes
(its clients get real results), queued-but-unstarted requests fail with
structured errors, and executors (threads, pools, worker processes) shut
down cleanly.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import OrderedDict
from typing import Any, Optional

from ..datasets import Dataset
from ..graph import FrozenGraph
from ..obs.metrics import Histogram
from .executor import Outcome
from .protocol import ProtocolError, QueryRequest

__all__ = ["Shard", "latency_percentile"]


def latency_percentile(values, fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for an empty sample)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(len(ordered) * fraction))
    return ordered[min(len(ordered), rank) - 1]


class Shard:
    """Queueing, coalescing and LRU caching in front of a replica set."""

    def __init__(
        self,
        dataset: Dataset,
        frozen: FrozenGraph,
        replica_set,
        *,
        key: Optional[str] = None,
        cache_size: int = 1024,
        max_queue: int = 0,
        latency_window: int = 4096,
        epoch: Optional[int] = None,
        telemetry=None,
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0 (0 = unbounded), got {max_queue}")
        self.dataset = dataset
        self.key = key if key is not None else dataset.name
        self.frozen = frozen
        self.replica_set = replica_set
        self.cache_size = cache_size
        self.max_queue = max_queue
        # the snapshot epoch this shard currently serves; None = the dataset
        # is static (no --epochs), which also keeps "epoch" off the wire
        self.epoch = epoch
        self._cache: OrderedDict[tuple, Any] = OrderedDict()
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._started = False
        self._closed = False
        # statistics
        self.queries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        self.errors = 0
        self.shed = 0
        self.retried = 0
        self.max_queue_depth = 0
        self.swaps = 0
        self.purged_entries = 0
        self.stale_rejections = 0
        # PR 10: latency lives in O(1) fixed-bucket histograms instead of
        # sample deques — recording is a bisect over static bounds, and the
        # percentile reads for stats() and _retry_after_ms() walk cumulative
        # bucket counts instead of copying + sorting up to 4096 floats.
        # (``latency_window`` is retained in the signature for callers that
        # still pass it; a histogram has no window to size.)
        self.latency_hist = Histogram()
        # execution-only latencies (no cache hits / coalesced waits): the
        # retry_after_ms estimate must reflect what draining the queue
        # actually costs, which ~0ms cache hits would wash out
        self.execution_hist = Histogram()
        self._telemetry = telemetry
        self._bind(replica_set, epoch)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start every replica's executor and batch loop."""
        if self._started:
            return
        await self.replica_set.start()
        self._started = True
        self._closed = False

    async def close(self, drain: bool = True) -> None:
        """Stop the replica set; with ``drain`` the in-flight batches finish
        (their clients get real results) while queued-but-unstarted requests
        fail with structured errors."""
        self._closed = True
        await self.replica_set.close(drain=drain)
        self._started = False

    def _bind(self, replica_set, epoch: Optional[int]) -> None:
        """Bind a replica set's completions to this shard, tagged with the
        epoch the set serves — a completion's cache key must name the epoch
        the result was computed against, not whatever is current when the
        executor finishes."""
        replica_set.bind(
            lambda request, future, outcome, _epoch=epoch: self._complete(
                _epoch, request, future, outcome
            )
        )

    async def swap(self, frozen: FrozenGraph, replica_set, *, epoch: int) -> None:
        """Atomically republish this shard under a new snapshot epoch.

        The new replica set is started first; the pointer swap plus the
        purge of superseded cache/in-flight entries then happens with no
        awaits in between, so from the event loop's point of view the shard
        moves between micro-batches: every request admitted before this
        call resolves against the old snapshot (and reports the old epoch),
        every request admitted after it runs against the new one.  The old
        replica set is drained and closed last — its in-flight batches
        finish for their waiting clients, and its shared-memory snapshot
        segment is unlinked.
        """
        if self.epoch is None:
            raise ValueError(f"shard {self.key!r} was built without epochs")
        if epoch <= self.epoch:
            raise ValueError(
                f"epoch must advance monotonically: shard {self.key!r} serves "
                f"{self.epoch}, got {epoch}"
            )
        self._bind(replica_set, epoch)
        await replica_set.start()
        old_set = self.replica_set
        # -- no awaits in this block: the swap is atomic between batches --
        self.replica_set = replica_set
        self.frozen = frozen
        self.epoch = epoch
        stale_cached = [key for key in self._cache if key[0] != epoch]
        for key in stale_cached:
            del self._cache[key]
        stale_inflight = [key for key in self._inflight if key[0] != epoch]
        for key in stale_inflight:
            # the old epoch's computations still resolve for their waiters;
            # unlinking them just makes them unjoinable by new requests
            # (which could never hit these keys anyway — the epoch differs)
            del self._inflight[key]
        self.purged_entries += len(stale_cached) + len(stale_inflight)
        self.swaps += 1
        # -- end of the atomic block --
        await old_set.close(drain=True)

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    async def submit(self, request: QueryRequest) -> tuple[Any, bool, bool]:
        """Resolve one request; returns ``(result, cached, coalesced)``.

        Raises :class:`ProtocolError` for structured failures (bad query
        node, unsupported parameter, an overloaded queue, shutdown).
        """
        result, cached, coalesced, _ = await self.submit_traced(request)
        return result, cached, coalesced

    async def submit_traced(self, request: QueryRequest) -> tuple[Any, bool, bool, Optional[int]]:
        """Like :meth:`submit`, plus the epoch the result was computed
        against (``None`` when the shard is static).  The epoch is captured
        at admission — a snapshot swap while the request executes does not
        relabel it, because the result really was computed on the epoch
        that was current when the request entered the shard."""
        arrival = time.perf_counter()
        self.queries += 1
        if request.attempt:
            self.retried += 1
        epoch = self.epoch
        if request.min_epoch is not None and request.min_epoch > (epoch or 0):
            # refuse before the cache: a staleness-bounded read must never
            # be answered from a snapshot older than its bound
            self.stale_rejections += 1
            self._admission_span(request, arrival, "stale_epoch")
            raise ProtocolError(
                "stale_epoch",
                f"shard {self.key!r} serves epoch {epoch or 0} but the request "
                f"requires min_epoch {request.min_epoch}",
            )
        key = (epoch, request.cache_key)
        hit = self._cache.get(key)
        if hit is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            self.latency_hist.record((time.perf_counter() - arrival) * 1000.0)
            self._admission_span(request, arrival, "hit")
            return hit, True, False, epoch
        self.cache_misses += 1

        pending = self._inflight.get(key)
        if pending is not None:
            self.coalesced += 1
            self._admission_span(request, arrival, "coalesced")
            result = await asyncio.shield(pending)
            self.latency_hist.record((time.perf_counter() - arrival) * 1000.0)
            return result, False, True, epoch

        if self._closed or not self._started:
            # no replica loops to drain the queues: enqueueing would hang
            raise ProtocolError("internal_error", "shard is closed")

        # admission control: bound the queued-but-unstarted work across the
        # replica set; beyond the bound the request is shed, not queued
        queued = self.replica_set.total_queued()
        if self.max_queue and queued >= self.max_queue:
            self.shed += 1
            retry_after = self._retry_after_ms()
            self._admission_span(request, arrival, "shed", retry_after_ms=retry_after)
            raise ProtocolError(
                "overloaded",
                f"shard {self.key!r} queue is full "
                f"({queued} queued, bound {self.max_queue}); retry later",
                retry_after_ms=retry_after,
            )

        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._admission_span(request, arrival, "miss", queued=queued)
        self.replica_set.route().enqueue(request, future)
        depth = queued + 1
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        result = await asyncio.shield(future)
        elapsed_ms = (time.perf_counter() - arrival) * 1000.0
        self.latency_hist.record(elapsed_ms)
        self.execution_hist.record(elapsed_ms)
        return result, False, False, epoch

    def _admission_span(self, request: QueryRequest, arrival: float, disposition: str, **tags) -> None:
        """Emit the shard's cache/admission span for a traced request.

        Covers the LRU/coalesce/shed decision: the span's ``disposition``
        tag says how the request left admission (hit, coalesced, miss,
        shed, stale_epoch).  Wall-clock endpoints are reconstructed from
        the monotonic arrival stamp so they compare cleanly with spans
        emitted in worker processes.  Free when the request is unsampled.
        """
        if request.trace is None or self._telemetry is None:
            return
        end = time.time()
        start = end - (time.perf_counter() - arrival)
        self._telemetry.tracer.emit(
            request.trace, "shard.admit", start, end,
            dataset=self.key, disposition=disposition, **tags,
        )

    def _retry_after_ms(self) -> int:
        """Estimate when a shed client should retry, from recent latency.

        Half the backlog's expected drain time (p50 *execution* latency ×
        queued work ÷ replicas): long enough that an immediate re-poll is
        pointless, short enough that capacity is not left idle.  Clamped to
        [5 ms, 1000 ms]; with no execution history yet, a flat 25 ms.

        The p50 is read from the O(1) execution histogram (one walk over
        ~18 cumulative bucket counts) instead of copying and sorting the
        sample window on every shed decision; the derivation formula is
        unchanged, so the estimate agrees with the old sorted-deque one
        to within bucket resolution.
        """
        if self.execution_hist.count == 0:
            return 25
        p50_ms = self.execution_hist.percentile(0.50)
        backlog = max(1, self.replica_set.total_pending()) / max(1, len(self.replica_set))
        return int(min(1000.0, max(5.0, p50_ms * backlog / 2.0)))

    def _complete(
        self,
        epoch: Optional[int],
        request: QueryRequest,
        future: asyncio.Future,
        outcome: Outcome,
    ) -> None:
        """Replica callback: resolve one request's future and bookkeeping.

        ``epoch`` is the epoch of the replica set that executed the request
        (bound at :meth:`_bind` time), so completions arriving after a swap
        key — and guard — against the epoch they were computed on.
        """
        key = (epoch, request.cache_key)
        if isinstance(outcome, ProtocolError):
            self.errors += 1
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(outcome)
        else:
            # store before unlinking from _inflight so a same-key request
            # arriving in between sees the cache, not a miss
            self._store(key, outcome)
            self._inflight.pop(key, None)
            if not future.done():
                future.set_result(outcome)

    def _store(self, key: tuple, result: Any) -> None:
        if self.cache_size == 0:
            return
        if key[0] != self.epoch:
            # a pre-swap computation finished after the swap: its waiters
            # get the (correctly epoch-labelled) result, but it must not
            # resurrect a superseded epoch in the cache
            return
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def _index_stats(self) -> dict[str, Any]:
        """The shard's index tier: effective mode, hit count, what it serves,
        and the fallback reason when part (or all) of the tier is degraded —
        e.g. a pre-v2 index file whose edge-hierarchy algorithms execute."""
        info: dict[str, Any] = {
            "effective": getattr(self.replica_set, "index_effective", "executed"),
            "hits": (
                self.replica_set.index_hits()
                if hasattr(self.replica_set, "index_hits")
                else 0
            ),
        }
        algorithms = getattr(self.replica_set, "index_algorithms", ())
        if algorithms:
            info["algorithms"] = list(algorithms)
        reason = getattr(self.replica_set, "index_reason", None)
        if reason is not None:
            info["reason"] = reason
        return info

    def stats(self) -> dict[str, Any]:
        """Return a JSON-serialisable snapshot of the shard counters."""
        replicas = self.replica_set.stats()
        epoch_block = (
            {
                "epoch": {
                    "current": self.epoch,
                    "swaps": self.swaps,
                    "purged_entries": self.purged_entries,
                    "stale_rejections": self.stale_rejections,
                }
            }
            if self.epoch is not None
            else {}
        )
        return {
            **epoch_block,
            "dataset": self.key,
            "nodes": self.frozen.number_of_nodes(),
            "edges": self.frozen.number_of_edges(),
            "executor": self.replica_set.executor_kind,
            "snapshot": self.replica_set.snapshot_mode,
            "index": self._index_stats(),
            "routing": self.replica_set.policy.name,
            "replica_count": len(self.replica_set),
            "workers": self.replica_set.pool_workers,
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "coalesced": self.coalesced,
            "batches": sum(replica["batches"] for replica in replicas),
            "executed": sum(replica["executed"] for replica in replicas),
            "errors": self.errors,
            "shed": self.shed,
            "retried": self.retried,
            "max_queue": self.max_queue,
            "queue_depth": self.replica_set.total_queued(),
            "max_queue_depth": self.max_queue_depth,
            "max_batch_size": max(
                (replica["max_batch_size"] for replica in replicas), default=0
            ),
            "cache_entries": len(self._cache),
            "replicas": replicas,
            # same keys as the pre-PR-10 deque block, now read from the
            # histogram: p50/p95 are bucket-resolution, max stays exact
            "latency_ms": {
                "count": self.latency_hist.count,
                "p50": round(self.latency_hist.percentile(0.50), 3),
                "p95": round(self.latency_hist.percentile(0.95), 3),
                "max": round(self.latency_hist.max, 3),
            },
        }
