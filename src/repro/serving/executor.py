"""Pluggable batch executors: *where* a replica's micro-batches run.

PR 3's :class:`~repro.serving.shard.Shard` hard-wired execution (a thread,
or an optional process pool) into the shard itself.  This module tears the
execution concern out into a small closed family of executors so the
placement layer can replicate a dataset across independent execution
contexts:

* :class:`InlineExecutor` — runs each batch on the default thread-pool
  against the shard's **shared** frozen snapshot.  Zero setup cost, one
  memo cache; today's default.  Replicas of an inline shard overlap I/O
  and queueing but share the GIL for compute, and a *cold* burst spread
  across several inline replicas can compute the same query-independent
  decomposition more than once before the first write lands in the
  (idempotent, last-write-wins) memo cache — correctness is unaffected,
  but single-flight memoisation is an open ROADMAP item.  Replication
  pays off here mainly through queueing isolation; use ``process``
  replicas for CPU scale-out.
* :class:`PoolExecutor` — submits batch items to a **shared**
  ``ProcessPoolExecutor`` (one pool per shard, created by the replica set;
  the frozen dataset is shipped once per pool worker via the initializer).
  PR 3's ``--workers N`` path, now one strategy among three.
* :class:`WorkerProcessExecutor` — owns a **dedicated spawn-safe worker
  process per replica**.  With a shared-snapshot descriptor the child
  **attaches** the host's exported CSR arrays zero-copy
  (:mod:`repro.graph.shm`): N replicas read literally the same bytes and
  only the tiny descriptor crosses the pipe.  Without one (or where
  shared memory is unavailable) the child falls back to PR 4 behaviour —
  it loads the shipped mutable dataset and freezes **its own** snapshot.
  Either way each replica has a private memo cache and hot datasets
  scale past the GIL: two process replicas really do peel two truss
  decompositions concurrently.  A crashed worker is respawned on the
  next batch; the batch that observed the crash fails with a structured
  ``internal_error``.

Every executor exposes the same tiny surface — ``start``, ``run_batch``,
``close``, ``describe`` — and maps execution failures to the closed
:class:`~repro.serving.protocol.ProtocolError` code set, so replicas and
shards never see a raw traceback.
"""

from __future__ import annotations

import asyncio
import logging
import os
import threading
import time
from dataclasses import replace
from typing import Any, Optional, Union

from ..datasets import Dataset
from ..experiments.registry import get_algorithm
from ..graph import FrozenGraph, GraphError, freeze
from ..obs.log import log_event
from ..obs.metrics import MetricsRegistry
from ..obs.trace import make_span
from .protocol import ProtocolError, QueryRequest

__all__ = [
    "EXECUTOR_KINDS",
    "Outcome",
    "InlineExecutor",
    "PoolExecutor",
    "WorkerProcessExecutor",
    "execute_one",
    "execute_traced",
]

#: The closed set of executor strategies ``--executor`` accepts.
EXECUTOR_KINDS = ("inline", "pool", "process")

Outcome = Union["ProtocolError", Any]  # CommunityResult or a structured error


def _resolve_algorithm(algorithm: str, params: dict):
    """Look the algorithm up, mapping *lookup* failure to its structured code.

    A ``KeyError`` raised later, inside the algorithm itself, must not be
    reported as ``unknown_algorithm`` — it falls through to
    ``internal_error`` via :func:`as_protocol_error`.
    """
    try:
        return get_algorithm(algorithm, **params)
    except KeyError as exc:
        raise ProtocolError(
            "unknown_algorithm", str(exc.args[0]) if exc.args else str(exc)
        ) from None


def as_protocol_error(exc: Exception) -> ProtocolError:
    """Map an execution failure to a structured, client-visible error."""
    if isinstance(exc, ProtocolError):
        return exc
    if isinstance(exc, GraphError):
        return ProtocolError("bad_query", str(exc))
    if isinstance(exc, TypeError):
        # an unsupported parameter name surfaces as a TypeError at call time
        return ProtocolError("bad_request", f"{type(exc).__name__}: {exc}")
    return ProtocolError("internal_error", f"{type(exc).__name__}: {exc}")


def execute_one(graph, algorithm: str, params: dict, nodes, index=None) -> Outcome:
    """Run one request against ``graph``; failures come back as values."""
    outcome, _ = execute_traced(graph, algorithm, params, nodes, index)
    return outcome


def execute_traced(
    graph, algorithm: str, params: dict, nodes, index=None
) -> tuple[Outcome, bool]:
    """Like :func:`execute_one`, also reporting whether the index answered.

    When a :class:`~repro.graph.index.CommunityIndex` is given and it can
    serve ``(algorithm, params)`` bit-identically, the answer comes from
    its windows — no peeling, no memo cache.  Everything else (including
    every malformed-parameter error surface) takes the executed path, so
    clients cannot tell the two apart except by latency.
    """
    served_by_index = False
    try:
        if index is not None and index.serves(algorithm, params):
            served_by_index = True
            # the live snapshot rides along for the algorithms whose index
            # path still needs it (huang2015's greedy phase runs on the
            # graph after the window scan replaces its decomposition)
            return index.search(algorithm, list(nodes), graph=graph, **params), served_by_index
        runner = _resolve_algorithm(algorithm, params)
        return runner(graph, list(nodes)), served_by_index
    except Exception as exc:  # noqa: BLE001 - mapped to structured codes
        return as_protocol_error(exc), served_by_index


def _rss_kb() -> Optional[int]:
    """This process's resident set size in kB (None where /proc is absent)."""
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return None


# ----------------------------------------------------------------------------
# inline: a thread hop per batch against the shared snapshot
# ----------------------------------------------------------------------------


class InlineExecutor:
    """Run batches on the default thread-pool against the shared snapshot."""

    kind = "inline"

    def __init__(self, frozen: FrozenGraph, *, index=None, telemetry=None) -> None:
        self._frozen = frozen
        self._index = index
        self._telemetry = telemetry
        self.index_hits = 0

    async def start(self) -> None:  # nothing to warm up
        return None

    async def run_batch(self, requests: list[QueryRequest]) -> list[Outcome]:
        # one thread hop for the whole batch: the event loop keeps
        # accepting (and queueing) requests while the batch executes
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._execute_batch, requests)

    def _execute_batch(self, requests: list[QueryRequest]) -> list[Outcome]:
        outcomes: list[Outcome] = []
        for request in requests:
            traced = request.trace is not None and self._telemetry is not None
            started = time.time() if traced else 0.0
            outcome, hit = execute_traced(
                self._frozen, request.algorithm, request.param_dict(), request.nodes,
                self._index,
            )
            if hit:
                self.index_hits += 1
            if traced:
                self._telemetry.tracer.emit(
                    request.trace,
                    "execute",
                    started,
                    time.time(),
                    executor=self.kind,
                    pid=os.getpid(),
                    index_hit=hit,
                    ok=not isinstance(outcome, ProtocolError),
                )
            outcomes.append(outcome)
        return outcomes

    async def close(self) -> None:
        return None

    def describe(self) -> dict[str, Any]:
        info: dict[str, Any] = {"kind": self.kind}
        if self._index is not None:
            info["index_hits"] = self.index_hits
        return info


# ----------------------------------------------------------------------------
# pool: batch items fan out over a shared per-shard process pool
# ----------------------------------------------------------------------------

_POOL_DATASET: Optional[Dataset] = None
_POOL_INDEX = None


def _pool_worker_init(
    dataset: Dataset, descriptor=None, index_descriptor=None, index=None
) -> None:
    if descriptor is not None:
        # zero-copy: attach the host's shared snapshot instead of unpickling
        # a private copy of the graph (the shipped dataset carries no graph)
        from ..graph.shm import attach_frozen

        dataset = replace(dataset, graph=attach_frozen(descriptor))
    if index_descriptor is not None:
        # same move for the community index: every pool worker maps the
        # host's one segment instead of unpickling the window arrays
        from ..graph.index import attach_index

        index = attach_index(index_descriptor)
    globals()["_POOL_DATASET"] = dataset
    globals()["_POOL_INDEX"] = index


def _pool_worker_run(algorithm: str, params: tuple, nodes: tuple, trace=None):
    """Execute one item in a pool worker; everything comes back as values.

    The outcome is tagged ``("ok"|"err", value)`` rather than raised so a
    failing item's execute span still makes it back to the parent (the
    span carries this worker's pid — the proof that trace ids survive the
    process boundary).  ``trace`` is the request's ``TraceContext`` (or
    None when unsampled, in which case no span is built at all).
    """
    started = time.time() if trace is not None else 0.0
    outcome, hit = execute_traced(
        _POOL_DATASET.graph, algorithm, dict(params), nodes, _POOL_INDEX
    )
    span = None
    if trace is not None:
        span = make_span(
            trace,
            "execute",
            started,
            time.time(),
            tags={
                "executor": "pool",
                "pid": os.getpid(),
                "index_hit": hit,
                "ok": not isinstance(outcome, ProtocolError),
            },
        )
    if isinstance(outcome, ProtocolError):
        return hit, ("err", outcome), span
    return hit, ("ok", outcome), span


class SharedProcessPool:
    """One ``ProcessPoolExecutor`` per shard, shared by its pool replicas.

    With a shared-snapshot ``descriptor`` each pool worker attaches the
    host's exported CSR arrays zero-copy; otherwise the frozen dataset is
    pickled once per pool worker via the initializer (mirroring
    ``experiments.runner``'s batched fan-out), never per task.
    """

    def __init__(
        self,
        dataset: Dataset,
        frozen: FrozenGraph,
        workers: int,
        *,
        descriptor=None,
        index_descriptor=None,
        index=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._dataset = dataset
        self._frozen = frozen
        self._descriptor = descriptor
        self._index_descriptor = index_descriptor
        self._index = index
        self._pool = None

    @property
    def snapshot_mode(self) -> str:
        return "shared" if self._descriptor is not None else "private"

    def ensure_started(self):
        if self._pool is None:
            import concurrent.futures

            if self._descriptor is not None:
                shipped = replace(self._dataset, graph=None)
            elif self._index_descriptor is not None or self._index is not None:
                # index-backed shard: the segment already carries every
                # decomposition the workers need, so ship the snapshot with
                # an empty memo cache instead of pickling warm memo values
                # once per worker
                shipped = replace(self._dataset, graph=self._frozen.without_cache())
            else:
                shipped = replace(self._dataset, graph=self._frozen)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_pool_worker_init,
                initargs=(shipped, self._descriptor, self._index_descriptor, self._index),
            )
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class PoolExecutor:
    """Fan batch items out over the shard's shared process pool."""

    kind = "pool"

    def __init__(self, shared_pool: SharedProcessPool, *, telemetry=None) -> None:
        self._shared = shared_pool
        self._telemetry = telemetry
        self.index_hits = 0

    async def start(self) -> None:
        self._shared.ensure_started()

    async def run_batch(self, requests: list[QueryRequest]) -> list[Outcome]:
        loop = asyncio.get_running_loop()
        pool = self._shared.ensure_started()
        futures = [
            loop.run_in_executor(
                pool,
                _pool_worker_run,
                request.algorithm,
                request.params,
                request.nodes,
                request.trace,
            )
            for request in requests
        ]
        outcomes: list[Outcome] = []
        for future in futures:
            try:
                hit, tagged, span = await future
            except Exception as exc:  # noqa: BLE001 - mapped to structured codes
                outcomes.append(as_protocol_error(exc))
                continue
            if span is not None and self._telemetry is not None:
                # the span was built inside the pool worker; fold it into
                # the parent's ring so the trace op sees one tree
                self._telemetry.tracer.add(span)
            if hit:
                self.index_hits += 1
            outcomes.append(tagged[1])
        return outcomes

    async def close(self) -> None:
        # the pool itself is owned (and shut down) by the replica set
        return None

    def describe(self) -> dict[str, Any]:
        info = {
            "kind": self.kind,
            "workers": self._shared.workers,
            "snapshot": self._shared.snapshot_mode,
        }
        if self._shared._index_descriptor is not None or self._shared._index is not None:
            info["index_hits"] = self.index_hits
        return info


# ----------------------------------------------------------------------------
# process: a dedicated spawn-safe worker process per replica
# ----------------------------------------------------------------------------


def _worker_process_main(
    conn, dataset: Dataset, descriptor=None, index_descriptor=None, index=None
) -> None:
    """Entry point of a replica's worker process (spawn-safe, module level).

    With a ``descriptor`` the child attaches the host's shared snapshot —
    zero-copy, nothing is rebuilt, and the dict adjacency is deliberately
    *not* prebuilt (it would re-materialise privately what the segment
    already holds; the CSR kernels serve every hot read).  Without one it
    freezes **its own** snapshot from the shipped mutable dataset.  Either
    way the memo cache is private, so replicas never contend on one
    interpreter.  An ``index_descriptor`` attaches the host's community
    index segment the same zero-copy way (``index`` carries a pickled copy
    where shared memory is unavailable).  The handshake reports the
    snapshot/index modes and the resident memory the snapshot cost this
    worker, then the loop answers ``("batch", items)`` messages — items
    are ``(algorithm, params, nodes, trace)`` tuples, and each reply
    ``("batch", outcomes, hits, extra)`` also carries how many items the
    index served plus the observability payload ``extra``: the execute
    spans of traced items (built here, with this child's pid, so trace
    ids provably survive the process boundary) and a mergeable metrics
    delta the parent folds into the engine registry — until
    ``("stop", None)`` or pipe close.
    """
    attached = None
    attached_index = None
    try:
        rss_before = _rss_kb()
        if descriptor is not None:
            from ..graph.shm import attach_frozen

            frozen = attached = attach_frozen(descriptor)
        else:
            frozen = freeze(dataset.graph)
            frozen.csr.adjacency_lists()  # prebuild outside any batch timing
        if index_descriptor is not None:
            from ..graph.index import attach_index

            index = attached_index = attach_index(index_descriptor)
        rss_after = _rss_kb()
        info = {
            "snapshot": "shared" if descriptor is not None else "private",
            "index": (
                "attached"
                if attached_index is not None
                else ("copied" if index is not None else None)
            ),
            "rss_kb": rss_after,
            "snapshot_rss_kb": (
                rss_after - rss_before
                if rss_after is not None and rss_before is not None
                else None
            ),
        }
        conn.send(("ready", info))
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        try:
            conn.send(("failed", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    pid = os.getpid()
    while True:
        try:
            kind, payload = conn.recv()
        except (EOFError, OSError):
            break
        if kind != "batch":
            break
        outcomes = []
        hits = 0
        spans = []
        # per-batch metrics delta: tiny, local, shipped back with the reply
        # and folded into the engine registry — the mergeable-metrics path
        delta = MetricsRegistry()
        execute_hist = delta.histogram("repro_worker_execute_ms", dataset=dataset.name)
        executed = delta.counter("repro_worker_executed_total", dataset=dataset.name)
        errored = delta.counter("repro_worker_errors_total", dataset=dataset.name)
        for algorithm, params, nodes, trace in payload:
            started_wall = time.time() if trace is not None else 0.0
            started = time.perf_counter()
            outcome, hit = execute_traced(frozen, algorithm, dict(params), nodes, index)
            elapsed = time.perf_counter() - started
            execute_hist.record(elapsed * 1000.0)
            executed.inc()
            if hit:
                hits += 1
            failed = isinstance(outcome, ProtocolError)
            if failed:
                errored.inc()
            if trace is not None:
                spans.append(
                    make_span(
                        trace,
                        "execute",
                        started_wall,
                        started_wall + elapsed,
                        tags={
                            "executor": "process",
                            "pid": pid,
                            "index_hit": hit,
                            "ok": not failed,
                        },
                    )
                )
            outcomes.append(("err", outcome) if failed else ("ok", outcome))
        extra = {"spans": spans, "metrics": delta.to_wire()}
        conn.send(("batch", outcomes, hits, extra))
    if attached_index is not None:
        try:
            attached_index.detach()
        except Exception:  # noqa: BLE001 - teardown must not mask the exit
            pass
    if attached is not None:
        try:
            attached.detach()  # release the views before the mapping goes
        except Exception:  # noqa: BLE001 - teardown must not mask the exit
            pass
    conn.close()


class WorkerProcessExecutor:
    """One dedicated worker process per replica, spawned (not forked).

    The spawn context is used deliberately: it is safe under threads and
    event loops on every platform, and it forces the child to build its own
    world (import, dataset, **its own frozen snapshot**) instead of
    inheriting a possibly-inconsistent fork of the parent.  All pipe I/O is
    blocking and therefore pushed onto the default thread-pool; one batch
    is in flight per worker at a time (the owning replica's loop guarantees
    that, the lock makes it safe even under direct use).
    """

    kind = "process"

    def __init__(
        self,
        dataset: Dataset,
        *,
        descriptor=None,
        index_descriptor=None,
        index=None,
        start_timeout: float = 120.0,
        telemetry=None,
    ) -> None:
        self._dataset = dataset
        self._descriptor = descriptor
        self._index_descriptor = index_descriptor
        self._index = index
        self._telemetry = telemetry
        self._start_timeout = start_timeout
        self._proc = None
        self._conn = None
        self._lock = threading.Lock()
        self.restarts = -1  # first spawn brings it to 0
        self.worker_info: dict[str, Any] = {}
        self.index_hits = 0

    @property
    def snapshot_mode(self) -> str:
        return "shared" if self._descriptor is not None else "private"

    # -- child management (all called from worker threads, under the lock) --
    def _spawn(self) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        if self._descriptor is not None:
            # the child attaches the shared segment; only the descriptor and
            # the dataset's metadata cross the pipe, never the graph
            shipped = replace(self._dataset, graph=None)
        elif (
            isinstance(self._dataset.graph, FrozenGraph)
            and (self._index_descriptor is not None or self._index is not None)
        ):
            # index-backed, private snapshot: never pickle warm memo values
            # into the child — the index carries the decompositions
            shipped = replace(self._dataset, graph=self._dataset.graph.without_cache())
        else:
            shipped = self._dataset
        proc = ctx.Process(
            target=_worker_process_main,
            args=(child_conn, shipped, self._descriptor, self._index_descriptor, self._index),
            name=f"repro-replica:{self._dataset.name}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        try:
            try:
                if not parent_conn.poll(self._start_timeout):
                    raise RuntimeError(
                        f"worker process for {self._dataset.name!r} did not become ready "
                        f"within {self._start_timeout}s"
                    )
                kind, detail = parent_conn.recv()
            except EOFError:
                raise RuntimeError(
                    f"worker process for {self._dataset.name!r} died during startup"
                ) from None
            if kind != "ready":
                raise RuntimeError(
                    f"worker process for {self._dataset.name!r} failed to start: {detail}"
                )
        except BaseException:
            # a failed handshake must not leak the child or the pipe fd
            parent_conn.close()
            if proc.is_alive():
                proc.terminate()
            proc.join(5)
            raise
        self._proc = proc
        self._conn = parent_conn
        self.restarts += 1
        self.worker_info = detail if isinstance(detail, dict) else {}

    def _teardown(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
        if self._proc is not None:
            if self._proc.is_alive():
                self._proc.terminate()
            self._proc.join(5)
            self._proc = None

    def _roundtrip(self, items: list[tuple]) -> list[tuple]:
        with self._lock:
            if self._proc is None or not self._proc.is_alive():
                # first use, or the previous batch killed the worker
                self._teardown()
                self._spawn()
            try:
                self._conn.send(("batch", items))
                return self._conn.recv()
            except (EOFError, OSError) as exc:
                # the original exception used to vanish here (only a terse
                # RuntimeError survived); log it with the traced requests it
                # took down so the respawn is attributable
                log_event(
                    "worker_died",
                    level=logging.ERROR,
                    dataset=self._dataset.name,
                    error=f"{type(exc).__name__}: {exc}",
                    restarts=max(self.restarts, 0),
                    batch_size=len(items),
                    trace_ids=[
                        item[3][0] for item in items if item[3] is not None
                    ],
                )
                self._teardown()
                raise RuntimeError(
                    f"worker process for {self._dataset.name!r} died mid-batch "
                    f"({type(exc).__name__}); it will be respawned"
                ) from None

    def _stop(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.send(("stop", None))
                except (OSError, ValueError):
                    pass
            if self._proc is not None:
                self._proc.join(10)
            self._teardown()

    # -- the async surface ------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: self._roundtrip_ready())

    def _roundtrip_ready(self) -> None:
        with self._lock:
            if self._proc is None or not self._proc.is_alive():
                self._teardown()
                self._spawn()

    async def run_batch(self, requests: list[QueryRequest]) -> list[Outcome]:
        items = [
            (request.algorithm, request.params, request.nodes, request.trace)
            for request in requests
        ]
        loop = asyncio.get_running_loop()
        _, tagged, hits, extra = await loop.run_in_executor(None, self._roundtrip, items)
        if hits:
            self.index_hits += hits
        if self._telemetry is not None and isinstance(extra, dict):
            # the child's execute spans and metrics delta, folded into the
            # parent's ring/registry — the cross-process observability path
            self._telemetry.tracer.add_many(extra.get("spans"))
            self._telemetry.registry.merge_wire(extra.get("metrics"))
        return [outcome for _tag, outcome in tagged]

    async def close(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._stop)

    def describe(self) -> dict[str, Any]:
        info = {
            "kind": self.kind,
            "restarts": max(self.restarts, 0),
            "snapshot": self.snapshot_mode,
        }
        rss = self.worker_info.get("rss_kb")
        if rss is not None:
            info["rss_kb"] = rss
        snapshot_rss = self.worker_info.get("snapshot_rss_kb")
        if snapshot_rss is not None:
            info["snapshot_rss_kb"] = snapshot_rss
        index_mode = self.worker_info.get("index")
        if index_mode is not None:
            info["index"] = index_mode
            info["index_hits"] = self.index_hits
        return info
