"""Blocking client for the query-serving protocol.

A thin ``socket`` wrapper speaking the line-delimited JSON protocol of
:mod:`repro.serving.protocol`.  One client per thread — the load generator
opens one connection per simulated user, which is also what lets the
server's micro-batching see genuinely concurrent traffic.

Example session (against ``repro serve --datasets karate``)::

    with ServingClient("127.0.0.1", 7531) as client:
        client.ping()
        response = client.query("karate", "kt", [0], k=4)
        print(response["size"], response["cached"])
        print(client.stats()["shards"]["karate"]["cache_hits"])
"""

from __future__ import annotations

import json
import socket
from typing import Any

__all__ = ["ServingClient"]


class ServingClient:
    """One TCP connection to a query server; not thread-safe by design."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    # raw protocol
    # ------------------------------------------------------------------
    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one JSON payload line; return the decoded response."""
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        return self._read_response()

    def send_raw(self, line: bytes) -> dict[str, Any]:
        """Send a raw (possibly malformed) line; used by the error tests."""
        self._file.write(line.rstrip(b"\n") + b"\n")
        self._file.flush()
        return self._read_response()

    def _read_response(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def query(self, dataset: str, algorithm: str, nodes, **params) -> dict[str, Any]:
        """Run one community search; returns the response payload."""
        payload: dict[str, Any] = {
            "op": "query",
            "dataset": dataset,
            "algorithm": algorithm,
            "nodes": list(nodes),
        }
        if params:
            payload["params"] = params
        return self.request(payload)

    def ping(self) -> dict[str, Any]:
        """Liveness check."""
        return self.request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        """Fetch the per-shard statistics snapshot."""
        return self.request({"op": "stats"})

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to shut down cleanly."""
        return self.request({"op": "shutdown"})

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection; idempotent."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
