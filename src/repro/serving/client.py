"""Blocking client for the query-serving protocol.

A thin ``socket`` wrapper speaking the line-delimited JSON protocol of
:mod:`repro.serving.protocol`.  One client per thread; concurrent traffic
(what the server's micro-batching feeds on) comes from many connections,
usually via :class:`repro.serving.pool.ServingClientPool` — the pooled
keep-alive layer with automatic retry of ``overloaded`` responses that
the load generator drives everything through.

A dropped or half-closed connection (a server restart, an idle timeout, a
connection the server abandoned after an oversized line) is repaired
transparently: :meth:`request` reconnects **once** and replays the request
before surfacing any error.  Queries are pure reads, so the replay is safe;
genuine timeouts are *not* retried (the request may still be executing).

Example session (against ``repro serve --datasets karate``)::

    with ServingClient("127.0.0.1", 7531) as client:
        client.ping()
        response = client.query("karate", "kt", [0], k=4)
        print(response["size"], response["cached"])
        print(client.stats()["shards"]["karate"]["cache_hits"])
"""

from __future__ import annotations

import json
import socket
from typing import Any

__all__ = ["ServingClient"]


class ServingClient:
    """One TCP connection to a query server; not thread-safe by design."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.reconnects = 0
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        self._file = self._sock.makefile("rwb")

    def _reconnect(self) -> None:
        self.close()
        self._connect()
        self.reconnects += 1

    # ------------------------------------------------------------------
    # raw protocol
    # ------------------------------------------------------------------
    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one JSON payload line; return the decoded response.

        Reconnects and replays once if the connection turns out to be
        dropped or half-closed (a server restart would otherwise strand
        every client mid-session).  Timeouts are never replayed.
        """
        line = json.dumps(payload).encode("utf-8") + b"\n"
        try:
            return self._round_trip(line)
        except TimeoutError:
            raise  # the server may still be working on it; replay is not safe
        except (ConnectionError, OSError):
            self._reconnect()
            return self._round_trip(line)

    def send_raw(self, line: bytes) -> dict[str, Any]:
        """Send a raw (possibly malformed) line; used by the error tests.

        No reconnect-and-replay here: raw lines exist to probe error
        behaviour, so the failure must surface exactly as it happened.
        """
        return self._round_trip(line.rstrip(b"\n") + b"\n")

    def _round_trip(self, line: bytes) -> dict[str, Any]:
        self._file.write(line)
        self._file.flush()
        response = self._file.readline()
        if not response:
            raise ConnectionError("server closed the connection")
        return json.loads(response)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def query(self, dataset: str, algorithm: str, nodes, **params) -> dict[str, Any]:
        """Run one community search; returns the response payload."""
        payload: dict[str, Any] = {
            "op": "query",
            "dataset": dataset,
            "algorithm": algorithm,
            "nodes": list(nodes),
        }
        if params:
            payload["params"] = params
        return self.request(payload)

    def ping(self) -> dict[str, Any]:
        """Liveness check."""
        return self.request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        """Fetch the per-shard statistics snapshot."""
        return self.request({"op": "stats"})

    def trace(self, trace_id: str | None = None) -> dict[str, Any]:
        """Fetch one trace's span tree, or the most recent traces.

        With ``trace_id`` (as returned in a sampled response's
        ``trace_id`` field) the response carries that trace's ``spans``;
        without, it carries ``traces`` — the newest sampled requests with
        their span trees.  Requires the server to run with
        ``--trace-sample`` > 0.
        """
        payload: dict[str, Any] = {"op": "trace"}
        if trace_id is not None:
            payload["trace_id"] = trace_id
        return self.request(payload)

    def metrics(self) -> dict[str, Any]:
        """Fetch the Prometheus text exposition (in the ``text`` field)."""
        return self.request({"op": "metrics"})

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to shut down cleanly."""
        return self.request({"op": "shutdown"})

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection; idempotent."""
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
