"""Wire protocol of the query-serving subsystem: line-delimited JSON.

One request per line, one response per line, UTF-8 JSON objects.  A query
request looks like::

    {"op": "query", "dataset": "karate", "algorithm": "kt",
     "nodes": [0, 33], "params": {"k": 4}, "id": 7}

``op`` defaults to ``"query"`` when omitted; ``id`` is an optional client
correlation token echoed back verbatim.  The other operations are
``"ping"``, ``"stats"`` and ``"shutdown"``.  Every response carries
``"ok"``; failures are *structured* — never tracebacks on the wire::

    {"ok": false, "error": {"code": "unknown_dataset",
                            "message": "unknown dataset 'katare'; ..."}}

Error codes are a closed set (:data:`ERROR_CODES`) so clients can dispatch
on them: ``bad_request`` (malformed JSON / missing or ill-typed fields),
``unknown_dataset`` / ``unknown_algorithm`` (name not registered),
``bad_query`` (well-formed request the graph rejects, e.g. a query node
that is not in the dataset), ``overloaded`` (admission control shed the
request because the owning shard's bounded queue is full; the error object
carries ``retry_after_ms``, the server's estimate of when capacity frees
up), ``not_owner`` (cluster mode: this node is not in the dataset's replica
set under the coordinator's current routing table — the client should
refetch the table and resend to an owning node, see ``repro.cluster``),
``stale_epoch`` (the request carried ``min_epoch`` and the shard's current
snapshot epoch is older — a staleness-bounded read the server refuses
rather than answer from a superseded graph) and ``internal_error``
(anything else; the server stays up).

On a server started with ``--epochs`` every query response carries
``"epoch": N`` — the snapshot version the result was computed against (see
``repro.dynamic``).  A request may pin ``"min_epoch": N`` to demand a
snapshot at least that fresh; like ``attempt`` it is not part of the
request identity.

A client retrying a shed request may send ``"attempt": N`` (a positive
integer) alongside the query fields; the server counts retried admissions
per shard so overload behaviour is observable in the ``stats`` op.
``attempt`` is not part of the request identity — a retry coalesces and
caches exactly like the original.

This module is deliberately transport-free: it validates payloads into
:class:`QueryRequest` values and formats :class:`~repro.core.result.
CommunityResult` values back into payloads.  The asyncio server, the
blocking client and the in-process engine all share it, which is what keeps
the three entry points bit-identical.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Optional

from ..core.result import CommunityResult

__all__ = [
    "ERROR_CODES",
    "ProtocolError",
    "QueryRequest",
    "parse_request",
    "result_payload",
    "error_payload",
    "encode",
    "decode_line",
]

#: The closed set of machine-readable error codes a response may carry.
ERROR_CODES = (
    "bad_request",
    "unknown_dataset",
    "unknown_algorithm",
    "bad_query",
    "overloaded",
    "not_owner",
    "stale_epoch",
    "internal_error",
)

#: JSON scalar types accepted for algorithm parameter values.
_SCALAR_TYPES = (int, float, str, bool, type(None))


class ProtocolError(Exception):
    """A structured, client-visible request failure.

    Raised by validation and execution; the serving layers convert it into
    an ``{"ok": false, "error": {...}}`` response instead of letting it
    escape as a traceback.  ``retry_after_ms`` is only meaningful for the
    ``overloaded`` code: the server's estimate (in milliseconds) of when the
    shed request is worth retrying.
    """

    def __init__(self, code: str, message: str, retry_after_ms: Optional[int] = None) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after_ms = retry_after_ms

    def __reduce__(self):
        # default Exception pickling would replay __init__ with args=(message,)
        # only; the worker-pool path ships these across process boundaries
        return (ProtocolError, (self.code, self.message, self.retry_after_ms))


@dataclass(frozen=True)
class QueryRequest:
    """A validated community-search request.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so the
    whole request is hashable — :attr:`cache_key` keys the per-shard LRU
    result cache and the in-flight deduplication map.  ``attempt`` records
    how many times the client already had this request shed (0 for a first
    try); it is deliberately **excluded** from :attr:`cache_key` so a retry
    deduplicates against the original.  ``min_epoch`` is the optional
    staleness bound — also excluded from the identity, because the shard
    keys caches by ``(epoch, cache_key)`` and a bound either passes (same
    result as unbounded) or fails before the cache is consulted.
    """

    dataset: str
    algorithm: str
    nodes: tuple
    params: tuple[tuple[str, Any], ...] = ()
    attempt: int = 0
    min_epoch: Optional[int] = None
    # the sampled observability context (trace_id, span_id) — metadata,
    # never identity: cache_key excludes it so traced requests coalesce
    # and cache exactly like untraced ones (see repro.obs.trace)
    trace: Optional[tuple[str, str]] = None

    @property
    def cache_key(self) -> tuple:
        """Hashable identity of the request (dataset, algorithm, nodes, params)."""
        return (self.dataset, self.algorithm, self.nodes, self.params)

    def param_dict(self) -> dict[str, Any]:
        """Return the parameter overrides as a plain dict."""
        return dict(self.params)


def _parse_node(token: Any) -> Any:
    """Normalise a JSON node id the way the CLI does: int when possible."""
    if isinstance(token, bool) or not isinstance(token, (int, str)):
        raise ProtocolError(
            "bad_request", f"query node {token!r} must be an integer or string"
        )
    if isinstance(token, str):
        try:
            return int(token)
        except ValueError:
            return token
    return token


def parse_request(
    payload: Any,
    known_datasets: Optional[set[str]] = None,
    known_algorithms: Optional[set[str]] = None,
) -> QueryRequest:
    """Validate a decoded JSON payload into a :class:`QueryRequest`.

    Raises :class:`ProtocolError` with a structured code on any problem;
    name checks are skipped when the corresponding ``known_*`` set is None.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")

    dataset = payload.get("dataset")
    if not isinstance(dataset, str) or not dataset:
        raise ProtocolError("bad_request", "request needs a 'dataset' string")
    if known_datasets is not None and dataset not in known_datasets:
        raise ProtocolError(
            "unknown_dataset",
            f"unknown dataset {dataset!r}; available: {', '.join(sorted(known_datasets))}",
        )

    algorithm = payload.get("algorithm")
    if not isinstance(algorithm, str) or not algorithm:
        raise ProtocolError("bad_request", "request needs an 'algorithm' string")
    if known_algorithms is not None and algorithm not in known_algorithms:
        raise ProtocolError(
            "unknown_algorithm",
            f"unknown algorithm {algorithm!r}; available: {', '.join(sorted(known_algorithms))}",
        )

    raw_nodes = payload.get("nodes")
    if raw_nodes is None:
        raise ProtocolError("bad_request", "request needs a non-empty 'nodes' list")
    if not isinstance(raw_nodes, list) or not raw_nodes:
        raise ProtocolError("bad_request", "'nodes' must be a non-empty list")
    nodes = tuple(_parse_node(token) for token in raw_nodes)

    raw_params = payload.get("params", {})
    if not isinstance(raw_params, dict):
        raise ProtocolError("bad_request", "'params' must be a JSON object")
    for name, value in raw_params.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise ProtocolError(
                "bad_request", f"parameter {name!r} must be a JSON scalar, got {value!r}"
            )
    params = tuple(sorted(raw_params.items()))

    attempt = payload.get("attempt", 0)
    if isinstance(attempt, bool) or not isinstance(attempt, int) or attempt < 0:
        raise ProtocolError("bad_request", "'attempt' must be a non-negative integer")

    min_epoch = payload.get("min_epoch")
    if min_epoch is not None and (
        isinstance(min_epoch, bool) or not isinstance(min_epoch, int) or min_epoch < 0
    ):
        raise ProtocolError("bad_request", "'min_epoch' must be a non-negative integer")

    return QueryRequest(
        dataset=dataset,
        algorithm=algorithm,
        nodes=nodes,
        params=params,
        attempt=attempt,
        min_epoch=min_epoch,
    )


def result_payload(
    request: QueryRequest,
    result: CommunityResult,
    *,
    cached: bool = False,
    coalesced: bool = False,
    served_seconds: Optional[float] = None,
    request_id: Any = None,
    epoch: Optional[int] = None,
    trace_id: Optional[str] = None,
) -> dict[str, Any]:
    """Format a :class:`CommunityResult` as a response payload.

    ``nodes`` come back sorted by ``repr`` (the library's canonical node
    order) so responses are byte-stable; non-finite scores (a failed
    search's ``-inf``) are serialised as ``null`` to stay strict-JSON.
    ``elapsed_ms`` is the *algorithm execution* time (replayed verbatim on a
    cache hit); ``served_ms``, when provided, is this request's actual wall
    time in the service — the number latency monitoring should use.
    ``epoch``, when the server runs with epochal snapshots, is the snapshot
    version the result was computed against.  ``trace_id``, when the request
    was sampled for tracing, lets the client fetch the span tree back with
    the ``trace`` op — unsampled responses stay byte-identical to a server
    without observability.
    """
    failed = bool(result.extra.get("failed")) or not result.nodes
    score: Optional[float] = result.score
    if score is not None and not math.isfinite(score):
        score = None
    payload: dict[str, Any] = {
        "ok": True,
        "op": "query",
        "dataset": request.dataset,
        "algorithm": request.algorithm,
        "query": list(request.nodes),
        "nodes": sorted(result.nodes, key=repr),
        "size": result.size,
        "score": score,
        "objective": result.objective_name,
        "elapsed_ms": round(result.elapsed_seconds * 1000.0, 3),
        "failed": failed,
        "cached": cached,
        "coalesced": coalesced,
    }
    if served_seconds is not None:
        payload["served_ms"] = round(served_seconds * 1000.0, 3)
    if epoch is not None:
        payload["epoch"] = epoch
    if trace_id is not None:
        payload["trace_id"] = trace_id
    reason = result.extra.get("reason")
    if reason is not None:
        payload["reason"] = reason
    extra = {
        key: value
        for key, value in result.extra.items()
        if key not in ("failed", "reason") and isinstance(value, _SCALAR_TYPES)
    }
    if extra:
        payload["extra"] = extra
    if request_id is not None:
        payload["id"] = request_id
    return payload


def error_payload(
    error: ProtocolError,
    request_id: Any = None,
    trace_id: Optional[str] = None,
) -> dict[str, Any]:
    """Format a :class:`ProtocolError` as a structured error response."""
    detail: dict[str, Any] = {"code": error.code, "message": error.message}
    if error.retry_after_ms is not None:
        detail["retry_after_ms"] = error.retry_after_ms
    payload: dict[str, Any] = {"ok": False, "error": detail}
    if request_id is not None:
        payload["id"] = request_id
    if trace_id is not None:
        payload["trace_id"] = trace_id
    return payload


def encode(payload: dict[str, Any]) -> bytes:
    """Encode one response/request payload as a JSON line."""
    return (json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n").encode()


def decode_line(line: bytes) -> dict[str, Any]:
    """Decode one request line; raises ``bad_request`` on malformed input."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad_request", f"malformed JSON request: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")
    return payload
