"""Shard placement: dataset → replica set, with a routing policy.

PR 3 served every dataset from a single shard executing inside one asyncio
process; this module is the layer that grew out of it.  It owns three
concerns:

* **Replication** — each dataset maps to a :class:`ReplicaSet` of
  ``--replicas N`` independent :class:`Replica` objects (optionally
  overridden per dataset, ``--replicas 2 hotset=4``).  A replica is a
  queue + micro-batch loop in front of one
  :mod:`~repro.serving.executor` executor, so replication composes with
  any execution strategy — N inline threads, N views of a shared process
  pool, or N dedicated worker processes each holding its own snapshot.
* **Routing** — a policy picks the replica for each admitted request:
  :class:`RoundRobinPolicy` (strict rotation) or the default
  :class:`LeastLoadedPolicy` (smallest queue depth + in-flight batch,
  index as the tie-break, so an idle replica always wins over a busy one).
* **The placement map** — :class:`Placement` replaces the engine's flat
  shard dict: it validates the replica/executor configuration up front,
  loads shards lazily off the event loop, and folds per-replica statistics
  into the ``stats`` op.

The shard itself (:mod:`repro.serving.shard`) shrinks to pure
queueing/coalescing/LRU logic in front of the replica set built here.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Any, Callable, Optional

from ..obs.log import log_event

from ..datasets import Dataset, load_dataset
from ..dynamic import DeltaBatch, EpochManager
from ..graph import (
    INDEX_FORMAT_VERSION,
    INDEX_MODES,
    FrozenGraph,
    GraphError,
    freeze,
    index_path,
    load_index,
    save_index,
    shared_memory_available,
)
from .executor import (
    EXECUTOR_KINDS,
    InlineExecutor,
    Outcome,
    PoolExecutor,
    SharedProcessPool,
    WorkerProcessExecutor,
    as_protocol_error,
)
from .protocol import ProtocolError, QueryRequest
from .shard import Shard

__all__ = [
    "DEFAULT_POOL_WORKERS",
    "SNAPSHOT_MODES",
    "ROUTING_POLICIES",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "Replica",
    "ReplicaSet",
    "Placement",
    "parse_replica_spec",
]

#: pool size when the 'pool' executor is chosen without an explicit
#: ``workers`` count (kept deliberately small; size it with ``--workers``)
DEFAULT_POOL_WORKERS = 2

#: the closed set of snapshot-distribution modes ``--snapshot`` accepts:
#: 'shared' exports the host's frozen CSR into a named shared-memory
#: segment that process/pool workers attach zero-copy (falling back to
#: 'private' where shared memory is unavailable); 'private' ships every
#: worker its own copy, PR 4 behaviour
SNAPSHOT_MODES = ("shared", "private")


# ----------------------------------------------------------------------------
# routing policies
# ----------------------------------------------------------------------------


class RoundRobinPolicy:
    """Strict rotation over the replica set, independent of load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, replicas: list["Replica"]) -> "Replica":
        replica = replicas[self._next % len(replicas)]
        self._next += 1
        return replica


class LeastLoadedPolicy:
    """Pick the replica with the smallest queue depth + in-flight batch.

    Ties break on the replica index so routing is deterministic; an idle
    replica therefore always beats one that is mid-batch, which is what
    lets a slow query on one replica stop head-of-line-blocking the rest
    of the traffic.
    """

    name = "least-loaded"

    def select(self, replicas: list["Replica"]) -> "Replica":
        return min(replicas, key=lambda replica: (replica.load, replica.index))


#: routing-policy name → zero-argument factory (policies carry state).
ROUTING_POLICIES: dict[str, Callable[[], Any]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
}


# ----------------------------------------------------------------------------
# replicas: a queue + micro-batch loop per execution context
# ----------------------------------------------------------------------------

_STOP = object()  # queue sentinel that wakes a draining replica loop


class Replica:
    """One execution lane of a shard: queue, micro-batch loop, executor.

    The loop mirrors PR 3's per-shard batch loop: it blocks on the queue,
    drains whatever queued up while the previous batch ran (micro-batching,
    bounded by ``max_batch``), hands the batch to the executor off the
    event loop, and reports every outcome through the shard-owned
    ``on_complete`` callback.  On drain it finishes the in-flight batch and
    stops pulling new ones — requests still queued get structured errors.
    """

    def __init__(
        self, index: int, executor, *, key: str, max_batch: int, telemetry=None
    ) -> None:
        self.index = index
        self.executor = executor
        self.key = key
        self.max_batch = max_batch
        self._telemetry = telemetry
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self._on_complete: Optional[Callable] = None
        self._draining = False
        self.inflight = 0  # requests in the batch currently executing
        # statistics
        self.batches = 0
        self.executed = 0
        self.errors = 0
        self.max_batch_size = 0
        self.max_queued = 0

    # -- wiring ------------------------------------------------------------
    def bind(self, on_complete: Callable) -> None:
        """Attach the shard's completion callback (cache/inflight/futures)."""
        self._on_complete = on_complete

    async def start(self) -> None:
        if self._task is not None:
            return
        await self.executor.start()
        self._task = asyncio.create_task(
            self._loop(), name=f"replica:{self.key}#{self.index}"
        )

    # -- the data path -----------------------------------------------------
    def qsize(self) -> int:
        """Requests queued on this replica, excluding the executing batch."""
        size = self._queue.qsize()
        # the drain sentinel is not a request
        return size - 1 if self._draining and size else size

    @property
    def load(self) -> int:
        """Routing load: queued requests plus the in-flight batch."""
        return self.qsize() + self.inflight

    def enqueue(self, request: QueryRequest, future: asyncio.Future) -> None:
        # the monotonic enqueue stamp feeds the queue-wait span of traced
        # requests (and is one cheap perf_counter read either way)
        self._queue.put_nowait((request, future, time.perf_counter()))
        depth = self.qsize()
        if depth > self.max_queued:
            self.max_queued = depth

    async def _loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _STOP:
                break
            batch = [item]
            while len(batch) < self.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _STOP:
                    self._queue.put_nowait(_STOP)  # re-arm for after this batch
                    break
                batch.append(extra)
            self.batches += 1
            if len(batch) > self.max_batch_size:
                self.max_batch_size = len(batch)
            requests = [request for request, _future, _enqueued in batch]
            self._emit_queue_wait(batch)
            self.inflight = len(batch)
            try:
                outcomes = await self.executor.run_batch(requests)
                self.executed += len(batch)
            except asyncio.CancelledError:
                self._fail_batch(batch, "shard is shutting down")
                raise
            except Exception as exc:  # noqa: BLE001 - the loop must survive
                # e.g. submitting to a broken pool or a dead worker process
                # raises for the whole batch; fail it structurally and keep
                # draining the queue rather than silently wedging the replica
                # — but never silently: the original exception goes to the
                # structured log with the traced requests it took down
                log_event(
                    "replica_batch_error",
                    level=logging.ERROR,
                    dataset=self.key,
                    replica=self.index,
                    batch_size=len(batch),
                    error=f"{type(exc).__name__}: {exc}",
                    trace_ids=[
                        request.trace[0]
                        for request in requests
                        if request.trace is not None
                    ],
                )
                outcomes = [as_protocol_error(exc) for _ in batch]
            finally:
                self.inflight = 0
            for (request, future, _enqueued), outcome in zip(batch, outcomes):
                if isinstance(outcome, ProtocolError):
                    self.errors += 1
                self._on_complete(request, future, outcome)
            if self._draining:
                break

    def _emit_queue_wait(self, batch) -> None:
        """Span the time each traced request spent queued on this replica,
        ending the moment its micro-batch is handed to the executor."""
        telemetry = self._telemetry
        if telemetry is None or not telemetry.tracer.enabled:
            return
        end = time.time()
        now = time.perf_counter()
        for request, _future, enqueued in batch:
            if request.trace is not None:
                telemetry.tracer.emit(
                    request.trace,
                    "queue.wait",
                    end - (now - enqueued),
                    end,
                    replica=self.index,
                    batch_size=len(batch),
                )

    def _fail_batch(self, batch, message: str) -> None:
        for request, future, _enqueued in batch:
            self._on_complete(request, future, ProtocolError("internal_error", message))

    # -- lifecycle ---------------------------------------------------------
    def signal_drain(self) -> None:
        """Ask the loop to stop after its current batch (non-blocking).

        Called across every replica *before* any of them is awaited, so a
        replica set drains in max(batch time), not sum(batch times).
        """
        self._draining = True
        if self._task is not None:
            self._queue.put_nowait(_STOP)

    async def close(self, drain: bool = True) -> None:
        """Stop the loop; drain lets the in-flight batch finish first."""
        self._draining = True
        if self._task is not None:
            if drain:
                self._queue.put_nowait(_STOP)
                await self._task
            else:
                self._task.cancel()
                try:
                    await self._task
                except asyncio.CancelledError:
                    pass
            self._task = None
        # whatever is still queued was never started: structured errors
        leftovers = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _STOP:
                leftovers.append(item)
        self._fail_batch(leftovers, "shard is shutting down; request was queued but not run")
        await self.executor.close()

    def stats(self) -> dict[str, Any]:
        return {
            "replica": self.index,
            "executor": self.executor.describe(),
            "queued": self.qsize(),
            "max_queued": self.max_queued,
            "inflight": self.inflight,
            "batches": self.batches,
            "executed": self.executed,
            "errors": self.errors,
            "max_batch_size": self.max_batch_size,
        }


class ReplicaSet:
    """The replicas serving one dataset, plus their routing policy.

    When built in ``shared`` snapshot mode the set also owns the exported
    shared-memory segment: the host freezes once, :func:`share_frozen`
    exports the CSR arrays, every process/pool worker attaches zero-copy,
    and :meth:`close` unlinks the segment after the last worker is gone —
    the leak checks in CI assert exactly this lifecycle.
    """

    def __init__(
        self,
        replicas: list[Replica],
        policy,
        *,
        shared_pool=None,
        snapshot_handle=None,
        snapshot: str = "private",
        index_handle=None,
        index_effective: str = "executed",
        index_reason: Optional[str] = None,
        index_algorithms: tuple[str, ...] = (),
    ) -> None:
        if not replicas:
            raise ValueError("a replica set needs at least one replica")
        self.replicas = replicas
        self.policy = policy
        self._shared_pool = shared_pool
        self._snapshot_handle = snapshot_handle
        self.snapshot_mode = snapshot
        self._index_handle = index_handle
        self.index_effective = index_effective
        self.index_reason = index_reason
        self.index_algorithms = index_algorithms

    @classmethod
    def build(
        cls,
        dataset: Dataset,
        frozen: FrozenGraph,
        *,
        key: str,
        count: int,
        executor: str,
        workers: Optional[int],
        routing: str,
        max_batch: int,
        snapshot: str = "private",
        index=None,
        index_reason: Optional[str] = None,
        telemetry=None,
    ) -> "ReplicaSet":
        """Construct ``count`` replicas of ``dataset`` on the given strategy."""
        if count < 1:
            raise ValueError(f"replicas must be >= 1, got {count}")
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {', '.join(EXECUTOR_KINDS)}"
            )
        if routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {routing!r}; choose from "
                f"{', '.join(sorted(ROUTING_POLICIES))}"
            )
        if snapshot not in SNAPSHOT_MODES:
            raise ValueError(
                f"unknown snapshot mode {snapshot!r}; choose from "
                f"{', '.join(SNAPSHOT_MODES)}"
            )
        # export the snapshot once per shard when workers can attach it;
        # inline replicas already share the host's frozen object in-process
        snapshot_handle = None
        effective = "private"
        if snapshot == "shared" and executor in ("pool", "process"):
            if shared_memory_available():
                try:
                    snapshot_handle = frozen.share()
                    effective = "shared"
                except (OSError, ValueError):  # graceful fallback: ship copies
                    snapshot_handle = None
        descriptor = snapshot_handle.descriptor if snapshot_handle is not None else None
        # the community index is exported once per shard too: N process/pool
        # replicas on this host map ONE index segment, never N copies (a
        # pickled copy per worker is the fallback where shm is unavailable)
        index_handle = None
        index_descriptor = None
        index_copy = None
        if index is not None and executor in ("pool", "process"):
            if shared_memory_available():
                try:
                    index_handle = index.share()
                    index_descriptor = index_handle.descriptor
                except (OSError, ValueError):
                    index_handle = None
            if index_descriptor is None:
                index_copy = index
        shared_pool = None
        if executor == "pool":
            shared_pool = SharedProcessPool(
                dataset,
                frozen,
                workers if workers else DEFAULT_POOL_WORKERS,
                descriptor=descriptor,
                index_descriptor=index_descriptor,
                index=index_copy,
            )
        replicas = []
        for replica_index in range(count):
            if executor == "inline":
                engine_executor = InlineExecutor(frozen, index=index, telemetry=telemetry)
            elif executor == "pool":
                engine_executor = PoolExecutor(shared_pool, telemetry=telemetry)
            else:
                engine_executor = WorkerProcessExecutor(
                    dataset,
                    descriptor=descriptor,
                    index_descriptor=index_descriptor,
                    index=index_copy,
                    telemetry=telemetry,
                )
            replicas.append(
                Replica(
                    replica_index,
                    engine_executor,
                    key=key,
                    max_batch=max_batch,
                    telemetry=telemetry,
                )
            )
        return cls(
            replicas,
            ROUTING_POLICIES[routing](),
            shared_pool=shared_pool,
            snapshot_handle=snapshot_handle,
            snapshot=effective,
            index_handle=index_handle,
            index_effective="indexed" if index is not None else "executed",
            index_reason=index_reason,
            index_algorithms=(
                index.served_algorithms() if index is not None else ()
            ),
        )

    def __len__(self) -> int:
        return len(self.replicas)

    @property
    def executor_kind(self) -> str:
        return self.replicas[0].executor.kind

    @property
    def pool_workers(self) -> int:
        """Size of the shared process pool (0 for pool-less strategies)."""
        return self._shared_pool.workers if self._shared_pool is not None else 0

    def bind(self, on_complete: Callable) -> None:
        for replica in self.replicas:
            replica.bind(on_complete)

    async def start(self) -> None:
        # concurrent executor startup: N process replicas spawn and freeze
        # their snapshots in max(one spawn), not sum
        await asyncio.gather(*(replica.start() for replica in self.replicas))

    def route(self) -> Replica:
        """Pick the replica the next admitted request is queued on."""
        return self.policy.select(self.replicas)

    def total_queued(self) -> int:
        """Requests queued across the set (excluding executing batches)."""
        return sum(replica.qsize() for replica in self.replicas)

    def total_pending(self) -> int:
        """Queued plus executing work, feeding the ``retry_after_ms``
        estimate.  Admission control itself bounds :meth:`total_queued`
        (executing batches are past the queue and cannot be shed)."""
        return sum(replica.load for replica in self.replicas)

    async def close(self, drain: bool = True) -> None:
        if drain:
            # wake every loop first so in-flight batches drain concurrently
            for replica in self.replicas:
                replica.signal_drain()
        for replica in self.replicas:
            await replica.close(drain=drain)
        if self._shared_pool is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._shared_pool.shutdown)
        if self._snapshot_handle is not None:
            # every worker is gone now: drop the owner mapping and unlink the
            # name so the kernel reclaims the segment (both are idempotent)
            try:
                self._snapshot_handle.close()
                self._snapshot_handle.unlink()
            except OSError:
                pass
            self._snapshot_handle = None
        if self._index_handle is not None:
            try:
                self._index_handle.close()
                self._index_handle.unlink()
            except OSError:
                pass
            self._index_handle = None

    def index_hits(self) -> int:
        """Queries answered from the index windows, summed over replicas."""
        return sum(getattr(replica.executor, "index_hits", 0) for replica in self.replicas)

    def stats(self) -> list[dict[str, Any]]:
        return [replica.stats() for replica in self.replicas]


# ----------------------------------------------------------------------------
# the placement map: dataset name → shard (lazily built)
# ----------------------------------------------------------------------------


class Placement:
    """Map datasets to replicated shards; the engine routes through this.

    Shards are created lazily on first request (dataset construction and
    the freeze both run off the event loop so a cold shard never stalls
    traffic to warm ones) and guarded by one lock so a racing duplicate
    load cannot leak a shard — the same discipline PR 3's engine had, now
    owned by the placement layer together with the replica configuration.
    """

    def __init__(
        self,
        known_datasets: set[str],
        *,
        cache_size: int = 1024,
        max_batch: int = 64,
        max_queue: int = 0,
        replicas: int = 1,
        replica_overrides: Optional[dict[str, int]] = None,
        executor: str = "inline",
        workers: Optional[int] = None,
        routing: str = LeastLoadedPolicy.name,
        snapshot: str = "shared",
        index: str = "auto",
        index_dir: Optional[str] = None,
        epochs: bool = False,
        epoch_threshold: int = 64,
        telemetry=None,
    ) -> None:
        if epoch_threshold < 0:
            raise ValueError(f"epoch_threshold must be >= 0, got {epoch_threshold}")
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {', '.join(EXECUTOR_KINDS)}"
            )
        if snapshot not in SNAPSHOT_MODES:
            raise ValueError(
                f"unknown snapshot mode {snapshot!r}; choose from "
                f"{', '.join(SNAPSHOT_MODES)}"
            )
        if index not in INDEX_MODES:
            raise ValueError(
                f"unknown index mode {index!r}; choose from {', '.join(INDEX_MODES)}"
            )
        if routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {routing!r}; choose from "
                f"{', '.join(sorted(ROUTING_POLICIES))}"
            )
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0 (0 = unbounded), got {max_queue}")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers is not None and executor != "pool":
            raise ValueError("workers only applies to the 'pool' executor")
        overrides = dict(replica_overrides or {})
        for name, count in overrides.items():
            if name not in known_datasets:
                raise KeyError(
                    f"unknown dataset {name!r} in replica overrides; available: "
                    f"{', '.join(sorted(known_datasets))}"
                )
            if not isinstance(count, int) or isinstance(count, bool) or count < 1:
                raise ValueError(f"replicas for {name!r} must be a positive integer")
        self._known_datasets = known_datasets
        self._options = {
            "cache_size": cache_size,
            "max_batch": max_batch,
            "max_queue": max_queue,
        }
        self.executor = executor
        self.workers = workers
        self.routing = routing
        self.snapshot = snapshot
        self.index = index
        self.index_dir = index_dir
        self.replicas = replicas
        self.replica_overrides = overrides
        self.epochs = bool(epochs)
        self.epoch_threshold = epoch_threshold
        self.telemetry = telemetry
        self._shards: dict[str, Shard] = {}
        self._managers: dict[str, EpochManager] = {}
        self._mutation_locks: dict[str, asyncio.Lock] = {}
        self._load_lock: Optional[asyncio.Lock] = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    async def start(self, preload=()) -> None:
        if self._load_lock is None:
            self._load_lock = asyncio.Lock()
        self._closed = False
        for name in preload:
            await self.get_shard(name)

    async def close(self, drain: bool = True) -> None:
        """Close every shard; drain lets in-flight batches finish.

        Takes the load lock first so a lazy shard load racing with shutdown
        either completes (and is closed here) or observes ``_closed`` and
        refuses — no shard task or worker process can leak past close().
        """
        if self._load_lock is not None:
            async with self._load_lock:
                self._closed = True
        else:
            self._closed = True
        # shards drain concurrently: shutdown costs max(batch), not sum
        await asyncio.gather(
            *(shard.close(drain=drain) for shard in self._shards.values())
        )
        self._shards.clear()

    # -- shard construction ------------------------------------------------
    def replicas_for(self, name: str) -> int:
        """The configured replica count for ``name``."""
        return self.replica_overrides.get(name, self.replicas)

    def load_shard_index(self, key: str, frozen: FrozenGraph, *, epoch: Optional[int] = None):
        """Load (and digest-verify) ``key``'s index per the placement policy.

        Returns ``(index, reason)``: in ``auto`` mode a missing, stale or
        corrupt index degrades to the executed path with the reason
        recorded in ``stats`` — a snapshot whose content digest no longer
        matches the index (the dataset evolved past the build) reports the
        compact reason ``"stale"``.  In ``require`` mode the shard build
        fails with a structured :class:`GraphError` instead — a node must
        never silently serve the slow path when the operator demanded the
        index.  ``epoch`` rides into :meth:`CommunityIndex.bind`, which
        formats every stale-digest error (in-process and wire alike) with
        the current epoch and the rebuild command.  A loadable pre-v2 file
        still serves its node hierarchies; the reason records that the
        edge-hierarchy algorithms fall through to the executed path.
        """
        if self.index == "off":
            return None, None
        path = index_path(key, self.index_dir)
        try:
            # load_index binds against the live snapshot, which rejects any
            # digest mismatch — a stale index never serves
            index = load_index(path, frozen, epoch=epoch)
        except FileNotFoundError:
            reason = f"no index file at {path}"
            if self.index == "require":
                suffix = f" (current epoch {epoch})" if epoch is not None else ""
                raise GraphError(
                    f"index mode 'require': {reason}; "
                    f"build it with 'repro index build {key}'{suffix}"
                ) from None
            return None, reason
        except GraphError as exc:
            if self.index == "require":
                raise
            if getattr(exc, "reason", None) == "stale":
                return None, "stale"
            return None, str(exc)
        if index.format_version < INDEX_FORMAT_VERSION:
            return index, (
                f"format v{index.format_version}: edge hierarchy absent; "
                "huang2015/kecc run on the executed path"
            )
        return index, None

    def build_shard(self, dataset: Dataset, *, key: Optional[str] = None) -> Shard:
        """Freeze ``dataset`` once and stand a replicated shard in front.

        With epochal snapshots enabled the shard's state is owned by an
        :class:`~repro.dynamic.EpochManager` (starting at epoch 0) and the
        shard is born epoch-aware: caches keyed by epoch, responses carrying
        it, :meth:`apply_delta` swapping in successors.
        """
        key = key if key is not None else dataset.name
        manager: Optional[EpochManager] = None
        if self.epochs:
            manager = EpochManager(dataset.graph, threshold=self.epoch_threshold)
            if self.telemetry is not None:
                manager.tracer = self.telemetry.tracer
            frozen = manager.frozen
        else:
            frozen = freeze(dataset.graph)
        frozen.csr.adjacency_lists()  # prebuild outside any request timing
        index, index_reason = self.load_shard_index(
            key, frozen, epoch=manager.epoch if manager is not None else None
        )
        if manager is not None and index is not None:
            # the epoch manager maintains the index from now on: every
            # prepared epoch carries a repaired (or rebuilt) successor, so
            # mutations never stale the index tier
            manager.bind_index(index)
        replica_set = self._build_replica_set(
            dataset, frozen, key=key, index=index, index_reason=index_reason
        )
        shard = Shard(
            dataset,
            frozen,
            replica_set,
            key=key,
            cache_size=self._options["cache_size"],
            max_queue=self._options["max_queue"],
            epoch=manager.epoch if manager is not None else None,
            telemetry=self.telemetry,
        )
        if manager is not None:
            self._managers[key] = manager
        return shard

    def _build_replica_set(
        self, dataset: Dataset, frozen: FrozenGraph, *, key: str, index, index_reason
    ) -> ReplicaSet:
        return ReplicaSet.build(
            dataset,
            frozen,
            key=key,
            count=self.replicas_for(key),
            executor=self.executor,
            workers=self.workers,
            routing=self.routing,
            max_batch=self._options["max_batch"],
            snapshot=self.snapshot,
            index=index,
            index_reason=index_reason,
            telemetry=self.telemetry,
        )

    async def get_shard(self, name: str) -> Shard:
        shard = self._shards.get(name)
        if shard is not None:
            return shard
        if self._load_lock is None:
            raise ProtocolError("internal_error", "engine is not started")
        async with self._load_lock:
            if self._closed:
                raise ProtocolError("internal_error", "engine is shutting down")
            shard = self._shards.get(name)  # a concurrent request may have won
            if shard is not None:
                return shard
            if name not in self._known_datasets:
                raise ProtocolError("unknown_dataset", f"unknown dataset {name!r}")
            loop = asyncio.get_running_loop()

            def _build() -> Shard:
                # dataset construction AND the freeze + CSR prebuild are the
                # expensive parts — run the whole build off the loop so warm
                # shards keep serving meanwhile
                return self.build_shard(load_dataset(name), key=name)

            shard = await loop.run_in_executor(None, _build)
            await shard.start()
            self._shards[name] = shard
        return shard

    # -- mutations ---------------------------------------------------------
    async def apply_delta(
        self, name: str, batch: DeltaBatch, trace=None
    ) -> dict[str, Any]:
        """Apply a delta batch to ``name`` and publish the next epoch.

        One mutation at a time per dataset (an asyncio lock): the epoch
        manager prepares the new snapshot off the event loop — repairing
        its bound community index along the way — the repaired index file
        is republished atomically (tmp + rename) and a fresh replica set
        built on it, and only then is the shard swapped (workers re-attach
        the new index segment on swap).  Datasets that never had an index
        reload per the placement policy instead.  Queries keep flowing
        against the old epoch for the whole build; the swap itself is
        atomic between micro-batches.
        """
        if not self.epochs:
            raise ProtocolError(
                "bad_request",
                "this server was started without epochal snapshots; "
                "restart it with --epochs to accept mutations",
            )
        shard = await self.get_shard(name)
        manager = self._managers[shard.key]
        lock = self._mutation_locks.setdefault(name, asyncio.Lock())
        loop = asyncio.get_running_loop()
        async with lock:
            prepared = await loop.run_in_executor(None, manager.prepare, batch, trace)

            def _stage() -> ReplicaSet:
                prepared.frozen.csr.adjacency_lists()
                if prepared.index is not None:
                    # the manager repaired (or rebuilt) the index off the
                    # serving path; publish the file atomically alongside
                    # the epoch so a restarted server finds it current, and
                    # hand the in-memory object straight to the replicas
                    save_index(prepared.index, index_path(name, self.index_dir))
                    index, index_reason = prepared.index, None
                else:
                    index, index_reason = self.load_shard_index(
                        name, prepared.frozen, epoch=prepared.epoch
                    )
                return self._build_replica_set(
                    shard.dataset,
                    prepared.frozen,
                    key=name,
                    index=index,
                    index_reason=index_reason,
                )

            replica_set = await loop.run_in_executor(None, _stage)
            commit_started = time.time()
            manager.commit(prepared)
            await shard.swap(prepared.frozen, replica_set, epoch=prepared.epoch)
            if trace is not None and self.telemetry is not None:
                # the commit + atomic swap, from the traced mutation's view
                self.telemetry.tracer.emit(
                    trace,
                    "epoch.commit",
                    commit_started,
                    time.time(),
                    dataset=name,
                    epoch=prepared.epoch,
                )
        response = {
            "epoch": manager.epoch,
            "mode": prepared.mode,
            "ops": prepared.delta_size,
            "nodes": prepared.frozen.number_of_nodes(),
            "edges": prepared.frozen.number_of_edges(),
        }
        if prepared.index_mode is not None:
            response["index"] = prepared.index_mode
            response["index_seconds"] = round(prepared.index_seconds, 6)
        return response

    def dataset_epochs(self) -> dict[str, int]:
        """Current epoch per built epochal shard (empty without --epochs)."""
        return {name: manager.epoch for name, manager in sorted(self._managers.items())}

    # -- routing + introspection ------------------------------------------
    async def submit(self, request: QueryRequest) -> tuple[Outcome, bool, bool]:
        """Route a validated request to the owning shard and resolve it."""
        shard = await self.get_shard(request.dataset)
        return await shard.submit(request)

    async def submit_traced(
        self, request: QueryRequest
    ) -> tuple[Outcome, bool, bool, Optional[int]]:
        """Like :meth:`submit`, plus the epoch the result was computed on."""
        shard = await self.get_shard(request.dataset)
        return await shard.submit_traced(request)

    @property
    def shards(self) -> dict[str, Shard]:
        """The live shards keyed by dataset name (read-only use)."""
        return self._shards

    def stats(self) -> dict[str, Any]:
        """Aggregate + per-shard (+ per-replica) statistics, JSON-safe."""
        per_shard = {name: shard.stats() for name, shard in sorted(self._shards.items())}
        for name, stats in per_shard.items():
            manager = self._managers.get(name)
            if manager is not None and "epoch" in stats:
                stats["epoch"].update(manager.describe())
        totals = {
            key: sum(stats[key] for stats in per_shard.values())
            for key in (
                "queries",
                "cache_hits",
                "cache_misses",
                "coalesced",
                "batches",
                "executed",
                "errors",
                "shed",
                "retried",
            )
        }
        totals["index_hits"] = sum(
            stats["index"]["hits"] for stats in per_shard.values()
        )
        return {
            "placement": {
                "executor": self.executor,
                "routing": self.routing,
                "snapshot": self.snapshot,
                "index": self.index,
                "index_dir": str(self.index_dir) if self.index_dir is not None else None,
                "replicas": self.replicas,
                "replica_overrides": dict(sorted(self.replica_overrides.items())),
                "max_queue": self._options["max_queue"],
                "epochs": self.epochs,
                "epoch_threshold": self.epoch_threshold if self.epochs else None,
            },
            "shards": per_shard,
            "totals": totals,
        }


def parse_replica_spec(tokens, known_datasets) -> tuple[int, dict[str, int]]:
    """Parse ``--replicas`` tokens into ``(default_count, overrides)``.

    Each token is either a bare positive integer (the default replica count
    for every dataset) or ``name=N`` (an override for one dataset).  Raises
    ``ValueError`` with a flag-shaped message on malformed tokens so the
    CLI can surface it as a production-shaped error.
    """
    default = 1
    default_seen = False
    overrides: dict[str, int] = {}
    for token in tokens:
        text = str(token)
        if "=" in text:
            name, _, raw = text.partition("=")
            name = name.strip()
            if not name:
                raise ValueError(f"--replicas override {text!r} needs a dataset name")
            if known_datasets is not None and name not in known_datasets:
                raise ValueError(
                    f"unknown dataset {name!r} in --replicas; available: "
                    f"{', '.join(sorted(known_datasets))}"
                )
            try:
                count = int(raw)
            except ValueError:
                raise ValueError(
                    f"--replicas override {text!r} must look like name=N"
                ) from None
            if count < 1:
                raise ValueError(f"--replicas for {name!r} must be a positive integer")
            overrides[name] = count
        else:
            try:
                count = int(text)
            except ValueError:
                raise ValueError(
                    f"--replicas expects an integer or name=N, got {text!r}"
                ) from None
            if count < 1:
                raise ValueError("--replicas must be a positive integer")
            if default_seen and count != default:
                raise ValueError("--replicas got two conflicting default counts")
            default = count
            default_seen = True
    return default, overrides
