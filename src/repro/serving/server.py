"""The asyncio TCP front end: line-delimited JSON over a socket.

:class:`QueryServer` wraps a :class:`~repro.serving.engine.ServingEngine`
behind ``asyncio.start_server``.  Each connection is handled sequentially
(one request line → one response line, in order); concurrency comes from
connections, which is exactly the shape the per-replica micro-batching
exploits: while one batch executes off the loop, request lines from other
connections keep queueing and are drained into the next batch.

Two admission-control behaviours live at this layer: after writing an
``overloaded`` response the handler stops reading that connection for the
advertised retry window (TCP read backpressure — the flooding client's
socket buffer fills instead of the event loop spinning), and
:meth:`QueryServer.close` shuts down in drain order (listener → engine →
connections) so in-flight batches finish and queued requests receive
their structured errors before any socket is torn down.

Three ways to run it:

* :func:`run_server` — the blocking entry point behind ``repro serve``;
  runs until a client sends ``{"op": "shutdown"}`` or the process receives
  SIGINT, then closes the engine cleanly;
* :class:`QueryServer` directly from an existing event loop (tests);
* :class:`ServerThread` — a context manager that runs the whole stack in a
  daemon thread with its own loop, used by the test-suite and the load
  generator to stand a real server up in-process.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from typing import Any, Callable, Optional

from .engine import ServingEngine
from .protocol import ProtocolError, decode_line, encode, error_payload

__all__ = ["QueryServer", "ServerThread", "run_server"]


#: Maximum request-line length (the asyncio default of 64 KiB is too small
#: for multi-thousand-node query lists; beyond this is a structured error).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Upper bound on the per-connection read pause after an ``overloaded``
#: response (TCP read backpressure; the shard's ``retry_after_ms`` hint is
#: honoured up to this cap so one flooding client cannot be parked forever).
MAX_BACKPRESSURE_SECONDS = 0.25


class QueryServer:
    """Serve an engine over line-delimited JSON on a TCP socket."""

    def __init__(self, engine: ServingEngine, host: str = "127.0.0.1", port: int = 0) -> None:
        self.engine = engine
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._connections: set[asyncio.StreamWriter] = set()

    async def start(self) -> None:
        """Start the engine and bind the listening socket."""
        await self.engine.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_shutdown(self) -> None:
        """Block until a client requests shutdown (or :meth:`close` is called)."""
        await self._shutdown.wait()

    async def close(self) -> None:
        """Graceful drain: listener first, then the engine, then connections.

        The ordering is what makes shutdown graceful: (1) stop accepting new
        connections, (2) drain the engine — in-flight batches finish and
        their clients receive real results, queued-but-unstarted requests
        receive structured errors, both written by handlers that are still
        alive at this point, (3) close the remaining (idle) connections.
        Idle connections must be closed here: since Python 3.12
        ``Server.wait_closed`` also waits for the connection handlers, which
        would otherwise sit in ``readline`` forever and hang shutdown.
        Idempotent.
        """
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
        await self.engine.close()
        for writer in list(self._connections):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except ValueError:
                    # request line beyond the stream limit; the tail of the
                    # oversized line is unrecoverable, so answer and close
                    writer.write(
                        encode(
                            error_payload(
                                ProtocolError(
                                    "bad_request",
                                    f"request line exceeds {MAX_LINE_BYTES} bytes",
                                )
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = decode_line(line)
                except ProtocolError as exc:
                    writer.write(encode(error_payload(exc)))
                    await writer.drain()
                    continue
                if payload.get("op") == "shutdown":
                    response: dict[str, Any] = {"ok": True, "op": "shutdown"}
                    if payload.get("id") is not None:
                        response["id"] = payload["id"]
                    writer.write(encode(response))
                    await writer.drain()
                    self._shutdown.set()
                    break
                response = await self.engine.handle(payload)
                writer.write(encode(response))
                await writer.drain()
                error = response.get("error")
                if error and error.get("code") == "overloaded":
                    # TCP read backpressure: stop reading this connection for
                    # the advertised retry window, so a flooding client's
                    # kernel send buffer fills and its writes block instead
                    # of the event loop churning through doomed requests
                    pause = min(
                        error.get("retry_after_ms", 10) / 1000.0,
                        MAX_BACKPRESSURE_SECONDS,
                    )
                    await asyncio.sleep(pause)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; nothing to clean up
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


def run_server(
    engine: ServingEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    announce: Callable[[str], None] = functools.partial(print, flush=True),
) -> int:
    """Run the server until shutdown is requested; returns an exit code.

    ``announce`` receives the ``serving on HOST:PORT`` line once the socket
    is bound (the CLI prints it; the load generator parses it to discover
    an ephemeral port — hence the flush, which must survive a pipe).
    """

    async def _main() -> None:
        server = QueryServer(engine, host, port)
        try:
            # inside the try: a failed bind (port in use) must still close
            # the already-started engine (shard tasks, worker pools)
            await server.start()
            announce(f"serving on {server.host}:{server.port}")
            await server.wait_shutdown()
        finally:
            await server.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        return 0
    return 0


class ServerThread:
    """Run engine + server in a daemon thread: the in-process test harness.

    Usage::

        with ServerThread(datasets=["karate"]) as handle:
            client = ServingClient("127.0.0.1", handle.port)
            ...

    Exiting the context sends a shutdown request (if the server is still
    up) and joins the thread; a crash inside the thread is re-raised.
    """

    def __init__(self, *, host: str = "127.0.0.1", startup_timeout: float = 30.0, **engine_kwargs) -> None:
        self.host = host
        self.port: Optional[int] = None
        #: the engine this thread serves — built eagerly so a caller (e.g. a
        #: cluster NodeAgent in the tests) can attach to it before/while the
        #: server runs
        self.engine = ServingEngine(**engine_kwargs)
        self._startup_timeout = startup_timeout
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, name="repro-serving", daemon=True)

    def _run(self) -> None:
        def _note_port(message: str) -> None:
            self.port = int(message.rsplit(":", 1)[1])
            self._ready.set()

        try:
            run_server(self.engine, self.host, 0, announce=_note_port)
        except BaseException as exc:  # noqa: BLE001 - re-raised on join
            self._error = exc
            self._ready.set()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(self._startup_timeout):
            raise TimeoutError("serving thread did not start in time")
        if self._error is not None:
            raise RuntimeError("serving thread failed to start") from self._error
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self, timeout: float = 30.0) -> None:
        """Request shutdown over the wire and join the server thread."""
        if self._thread.is_alive() and self.port is not None:
            from .client import ServingClient

            try:
                with ServingClient(self.host, self.port) as client:
                    client.shutdown()
            except OSError:
                pass  # already shutting down
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("serving thread did not shut down in time")
        if self._error is not None:
            raise RuntimeError("serving thread crashed") from self._error
