"""Replicated, admission-controlled query serving on frozen snapshots.

The serving subsystem turns the offline batched engine into a persistent
multi-user service, structured in four layers:

* **executors** (:mod:`~repro.serving.executor`) — where batches run:
  inline threads, a shared process pool, or a dedicated spawn-safe worker
  process per replica (each freezing its own snapshot);
* **placement** (:mod:`~repro.serving.placement`) — each dataset maps to a
  replica set with a routing policy (least-loaded / round-robin), replacing
  the flat shard dict;
* **shards** (:mod:`~repro.serving.shard`) — queueing, coalescing, the LRU
  result cache, and admission control (bounded queues shed with structured
  ``overloaded`` + ``retry_after_ms`` errors).  When a precomputed
  community index exists for a dataset (``repro index build``, see
  :mod:`repro.graph.index`), the replica set shares it once per host and
  executors answer ``kc`` / ``kt`` / ``hightruss`` queries as window scans
  over it instead of running decompositions (``index`` ∈ auto / require /
  off on :class:`ServingEngine` and ``repro serve``);
* **transport/clients** — the asyncio TCP server (read backpressure,
  graceful drain), the blocking :class:`ServingClient` (reconnect-once) and
  the keep-alive :class:`ServingClientPool` (bounded retry of shed
  requests).

Three entry points, all bit-identical to ``evaluate_algorithm`` on the
dict reference path:

* :class:`ServingEngine` — the in-process async API;
* ``repro serve`` — the CLI daemon (line-delimited JSON over TCP, see
  :mod:`repro.serving.protocol`);
* :class:`ServingClient` / :class:`ServingClientPool` /
  ``benchmarks/bench_serving.py`` — the blocking clients and the
  open/closed-loop load generator.
"""

from .client import ServingClient
from .engine import ServingEngine
from .executor import (
    EXECUTOR_KINDS,
    InlineExecutor,
    PoolExecutor,
    WorkerProcessExecutor,
)
from .placement import (
    ROUTING_POLICIES,
    SNAPSHOT_MODES,
    LeastLoadedPolicy,
    Placement,
    Replica,
    ReplicaSet,
    RoundRobinPolicy,
    parse_replica_spec,
)
from .pool import ServingClientPool
from .protocol import (
    ERROR_CODES,
    ProtocolError,
    QueryRequest,
    error_payload,
    parse_request,
    result_payload,
)
from .server import QueryServer, ServerThread, run_server
from .shard import Shard, latency_percentile

__all__ = [
    "ServingEngine",
    "ServingClient",
    "ServingClientPool",
    "QueryServer",
    "ServerThread",
    "run_server",
    "Shard",
    "latency_percentile",
    "Placement",
    "Replica",
    "ReplicaSet",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "ROUTING_POLICIES",
    "SNAPSHOT_MODES",
    "EXECUTOR_KINDS",
    "InlineExecutor",
    "PoolExecutor",
    "WorkerProcessExecutor",
    "parse_replica_spec",
    "QueryRequest",
    "ProtocolError",
    "ERROR_CODES",
    "parse_request",
    "result_payload",
    "error_payload",
]
