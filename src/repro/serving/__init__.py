"""Sharded async query-serving on top of frozen snapshots.

The serving subsystem turns the offline batched engine into a persistent
multi-user service: one shard per dataset (each dataset frozen **once**
into an immutable CSR snapshot whose memo cache amortises decompositions
across every request the shard ever serves), an asyncio loop that routes,
coalesces and micro-batches structured query requests, an LRU result
cache, and per-shard statistics.

Three entry points, all bit-identical to ``evaluate_algorithm`` on the
dict reference path:

* :class:`ServingEngine` — the in-process async API;
* ``repro serve`` — the CLI daemon (line-delimited JSON over TCP, see
  :mod:`repro.serving.protocol`);
* :class:`ServingClient` / ``benchmarks/bench_serving.py`` — the blocking
  client and the open/closed-loop load generator.
"""

from .client import ServingClient
from .engine import ServingEngine
from .protocol import (
    ERROR_CODES,
    ProtocolError,
    QueryRequest,
    error_payload,
    parse_request,
    result_payload,
)
from .server import QueryServer, ServerThread, run_server
from .shard import Shard, latency_percentile

__all__ = [
    "ServingEngine",
    "ServingClient",
    "QueryServer",
    "ServerThread",
    "run_server",
    "Shard",
    "latency_percentile",
    "QueryRequest",
    "ProtocolError",
    "ERROR_CODES",
    "parse_request",
    "result_payload",
    "error_payload",
]
