"""Subgraph-selection objectives shared by the peeling algorithms.

Figure 12 of the paper swaps the objective FPA uses to pick the best
intermediate subgraph (density modularity vs classic modularity vs
generalized modularity density).  All three can be evaluated in O(1) from
the incrementally maintained :class:`~repro.modularity.CommunityStatistics`,
which is what this module does.
"""

from __future__ import annotations

from ..graph import Graph, GraphError
from ..modularity import CommunityStatistics

__all__ = ["SUBGRAPH_OBJECTIVES", "evaluate_objective", "objective_from_scalars"]

SUBGRAPH_OBJECTIVES = (
    "density_modularity",
    "classic_modularity",
    "generalized_modularity_density",
)


def objective_from_scalars(
    num_edges: int, l_c: float, d_c: float, size: int, objective: str
) -> float:
    """Return the requested objective from the raw community scalars.

    This is the single shared formula kernel: the dict backend feeds it from
    :class:`~repro.modularity.CommunityStatistics` and the CSR backend from
    its flat-array peel state, so both produce bit-identical floats.
    """
    if size == 0:
        raise GraphError("cannot evaluate an objective on an empty community")
    numerator = 2.0 * l_c - (d_c * d_c) / (2.0 * num_edges)
    if objective == "density_modularity":
        return numerator / (2.0 * size)
    if objective == "classic_modularity":
        return numerator / (2.0 * num_edges)
    if objective == "generalized_modularity_density":
        if size == 1:
            internal_density = 0.0
        else:
            internal_density = 2.0 * l_c / (size * (size - 1))
        return (numerator / (2.0 * num_edges)) * internal_density
    raise GraphError(
        f"unknown objective {objective!r}; expected one of {', '.join(SUBGRAPH_OBJECTIVES)}"
    )


def evaluate_objective(graph: Graph, stats: CommunityStatistics, objective: str) -> float:
    """Return the requested objective for the community tracked by ``stats``.

    Parameters
    ----------
    graph:
        Host graph (supplies ``|E|``).
    stats:
        Incrementally maintained ``l_C`` / ``d_C`` / ``|C|`` of the community.
    objective:
        One of :data:`SUBGRAPH_OBJECTIVES`.
    """
    return objective_from_scalars(
        graph.number_of_edges(), stats.internal_edges, stats.degree_sum, stats.size, objective
    )
