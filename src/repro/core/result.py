"""Result container returned by every community-search algorithm in this library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..graph import Graph, Node
from ..modularity import density_modularity

__all__ = ["CommunityResult"]


@dataclass(frozen=True)
class CommunityResult:
    """A community returned by a search algorithm.

    Attributes
    ----------
    nodes:
        The community node set (always contains every query node when the
        search succeeded).
    query_nodes:
        The query set the search was asked for.
    algorithm:
        Short name of the algorithm that produced the result (``"FPA"``,
        ``"NCA"``, ``"kc"``...).
    score:
        The value of the algorithm's own objective for ``nodes`` (density
        modularity for NCA/FPA, ``k`` for k-core style baselines, ...).
    objective_name:
        Name of what ``score`` measures.
    elapsed_seconds:
        Wall-clock runtime of the search.
    removal_order:
        For peeling algorithms, the order nodes were removed in (useful for
        the Figure-5 style removal-order analysis); empty otherwise.
    trace:
        For peeling algorithms, the objective value after each removal.
    extra:
        Algorithm-specific metadata (e.g. chosen ``k``, layer statistics).
    """

    nodes: frozenset[Node]
    query_nodes: frozenset[Node]
    algorithm: str
    score: float = 0.0
    objective_name: str = "density_modularity"
    elapsed_seconds: float = 0.0
    removal_order: tuple[Node, ...] = ()
    trace: tuple[float, ...] = ()
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", frozenset(self.nodes))
        object.__setattr__(self, "query_nodes", frozenset(self.query_nodes))
        object.__setattr__(self, "removal_order", tuple(self.removal_order))
        object.__setattr__(self, "trace", tuple(self.trace))

    @property
    def size(self) -> int:
        """Number of nodes in the community."""
        return len(self.nodes)

    def contains_queries(self) -> bool:
        """Return ``True`` when every query node is inside the community."""
        return self.query_nodes <= self.nodes

    def density_modularity(self, graph: Graph) -> float:
        """Return the density modularity of the community within ``graph``."""
        return density_modularity(graph, self.nodes)

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        return (
            f"{self.algorithm}: |C|={self.size}, {self.objective_name}={self.score:.4f}, "
            f"time={self.elapsed_seconds * 1000:.1f} ms"
        )

    @staticmethod
    def empty(
        query_nodes: frozenset[Node] | set[Node],
        algorithm: str,
        reason: Optional[str] = None,
    ) -> "CommunityResult":
        """Return an empty (failed) result, e.g. when queries are disconnected."""
        extra = {"failed": True}
        if reason:
            extra["reason"] = reason
        return CommunityResult(
            nodes=frozenset(),
            query_nodes=frozenset(query_nodes),
            algorithm=algorithm,
            score=float("-inf"),
            extra=extra,
        )
