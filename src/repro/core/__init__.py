"""The paper's contribution: DMCS peeling algorithms (NCA, FPA and variants)."""

from .detection import dmcs_detection, partition_density_modularity
from .fpa import fpa, fpa_search
from .framework import greedy_peel, prepare_search
from .nca import nca, nca_search
from .objectives import SUBGRAPH_OBJECTIVES, evaluate_objective
from .result import CommunityResult
from .variants import ALGORITHM_VARIANTS, fpa_dmg, fpa_without_pruning, nca_dr

__all__ = [
    "CommunityResult",
    "greedy_peel",
    "prepare_search",
    "nca",
    "nca_search",
    "fpa",
    "fpa_search",
    "nca_dr",
    "fpa_dmg",
    "fpa_without_pruning",
    "ALGORITHM_VARIANTS",
    "SUBGRAPH_OBJECTIVES",
    "evaluate_objective",
    "dmcs_detection",
    "partition_density_modularity",
]
