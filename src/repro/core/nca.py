"""Non-articulation Cancellation Algorithm (NCA), Section 5.4.

NCA instantiates the peeling framework with

* removable nodes = non-articulation nodes of the current subgraph that are
  not query nodes (Section 5.2.1, DFS-tree based), and
* best node to remove = the one with the largest *density modularity gain*
  ``Λ_S^v = -4|E| k_{v,S} + 2 d_S d_v - d_v^2`` (Definition 6); ties are
  broken by keeping the node closer to the query nodes (i.e. removing the
  farther one), then by the graph's node insertion order.

The implementation maintains the community statistics (``l_S``, ``d_S``,
``|S|``) and the per-node ``k_{v,S}`` counts incrementally, so each
iteration costs ``O(|V| + |E|)`` for the articulation-point recomputation —
the bottleneck the paper identifies — plus ``O(|V|)`` for the arg-max.

Two backends implement the same peel:

* the dict backend (reference) works on the mutable dict-of-dicts graph;
* the CSR backend runs when the input is a
  :class:`~repro.graph.csr.FrozenGraph`, replacing every hot structure with
  flat integer arrays.  Both backends iterate candidates and neighbours in
  the graph's insertion order, so their results are bit-identical.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Optional

from ..graph import (
    FrozenGraph,
    Graph,
    GraphError,
    Node,
    articulation_points,
    csr_articulation_points,
    csr_connected_component,
    csr_multi_source_bfs,
    multi_source_bfs,
)
from ..modularity import CommunityStatistics
from .framework import CSRPeelState, graph_backend, prepare_search
from .result import CommunityResult

__all__ = ["nca", "nca_search"]


def nca(
    graph: Graph,
    query_nodes: Sequence[Node],
    selection: str = "gain",
    max_iterations: Optional[int] = None,
) -> CommunityResult:
    """Run NCA and return the best intermediate community.

    Parameters
    ----------
    graph:
        Host graph.  A :class:`~repro.graph.csr.FrozenGraph` (see
        :meth:`~repro.graph.graph.Graph.freeze`) selects the CSR fast path;
        results are identical either way.
    query_nodes:
        One or more query nodes; they are never removed.
    selection:
        ``"gain"`` uses the density modularity gain Λ (the paper's NCA);
        ``"ratio"`` uses the density ratio Θ instead, which is the NCA-DR
        variant of Section 6.2.5.
    max_iterations:
        Optional cap on the number of removals (useful for ablations); by
        default peeling continues until no removable node remains.

    Returns
    -------
    CommunityResult
        The intermediate subgraph with maximum density modularity.  If the
        query nodes are not in one connected component a failed (empty)
        result is returned.
    """
    if selection not in ("gain", "ratio"):
        raise GraphError(f"selection must be 'gain' or 'ratio', got {selection!r}")
    if graph_backend(graph) == "csr":
        return _nca_csr(graph, query_nodes, selection, max_iterations)
    return _nca_dict(graph, query_nodes, selection, max_iterations)


def _nca_dict(
    graph: Graph,
    query_nodes: Sequence[Node],
    selection: str,
    max_iterations: Optional[int],
) -> CommunityResult:
    """Reference implementation on the dict-of-dicts backend."""
    start = time.perf_counter()
    try:
        queries, component = prepare_search(graph, query_nodes)
    except GraphError as error:
        return CommunityResult.empty(set(query_nodes), "NCA", reason=str(error))

    members = set(component)
    working = graph.subgraph(members)
    distances = multi_source_bfs(graph, queries)

    stats = CommunityStatistics(graph, members)
    num_edges = graph.number_of_edges()
    # k_{v,S}: number of edges from v into the current member set; the query
    # component is closed under adjacency, so it starts at the full degree
    edges_into: dict[Node, int] = {node: graph.degree(node) for node in members}
    degree_of: dict[Node, int] = {node: graph.degree(node) for node in members}
    # canonical candidate order: the graph's node insertion order
    order = [node for node in graph.iter_nodes() if node in members]

    trace = [stats.density_modularity()]
    removal_order: list[Node] = []
    iterations = 0

    while True:
        if max_iterations is not None and iterations >= max_iterations:
            break
        articulation = articulation_points(working)
        candidates = [
            node
            for node in order
            if node in stats.members and node not in articulation and node not in queries
        ]
        if not candidates:
            break
        victim = _select(candidates, selection, stats, edges_into, degree_of, distances, num_edges)
        # remove the victim and update every incremental structure
        removal_order.append(victim)
        stats.remove(victim)
        for neighbor in working.adjacency(victim):
            edges_into[neighbor] -= 1
        working.remove_node(victim)
        edges_into.pop(victim, None)
        iterations += 1
        trace.append(stats.density_modularity())

    best_index = max(range(len(trace)), key=lambda i: (trace[i], i))
    best_value = trace[best_index]
    best_nodes = members - set(removal_order[:best_index])

    elapsed = time.perf_counter() - start
    return CommunityResult(
        nodes=frozenset(best_nodes),
        query_nodes=queries,
        algorithm="NCA" if selection == "gain" else "NCA-DR",
        score=best_value,
        objective_name="density_modularity",
        elapsed_seconds=elapsed,
        removal_order=tuple(removal_order),
        trace=tuple(trace),
        extra={"iterations": iterations, "selection": selection, "backend": "dict"},
    )


def _select(
    candidates: list[Node],
    selection: str,
    stats: CommunityStatistics,
    edges_into: dict[Node, int],
    degree_of: dict[Node, int],
    distances: dict[Node, int],
    num_edges: int,
) -> Node:
    """Return the candidate to remove under the chosen selection rule."""
    d_s = stats.degree_sum
    best_node = candidates[0]
    best_key: tuple[float, float] = (float("-inf"), float("-inf"))
    for node in candidates:
        d_v = degree_of[node]
        k_v = edges_into[node]
        if selection == "gain":
            score = -4.0 * num_edges * k_v + 2.0 * d_s * d_v - float(d_v) ** 2
        else:  # density ratio
            score = float("inf") if k_v == 0 else d_v / k_v
        # tie-break: remove the node farther from the queries
        key = (score, float(distances.get(node, 0)))
        if key > best_key:
            best_key = key
            best_node = node
    return best_node


def _nca_csr(
    graph: FrozenGraph,
    query_nodes: Sequence[Node],
    selection: str,
    max_iterations: Optional[int],
) -> CommunityResult:
    """CSR fast path: the same peel over flat integer arrays."""
    start = time.perf_counter()
    csr = graph.csr
    queries = frozenset(query_nodes)

    def _failed(reason: str) -> CommunityResult:
        return CommunityResult.empty(set(query_nodes), "NCA", reason=reason)

    if not queries:
        return _failed("community search needs at least one query node")
    index_of = csr.index_of
    for node in queries:
        if node not in index_of:
            return _failed(f"query node {node!r} is not in the graph")
    query_indices = [index_of[node] for node in queries]
    component = csr_connected_component(csr, query_indices[0])
    state = CSRPeelState(csr, component)
    alive = state.alive
    for index in query_indices:
        if not alive[index]:
            return _failed("query nodes are not in the same connected component")
    is_query = bytearray(csr.number_of_nodes())
    for index in query_indices:
        is_query[index] = 1

    degree = state.degree
    edges_into = state.edges_into
    num_edges = csr.num_edges
    dist, _ = csr_multi_source_bfs(csr, query_indices)
    # canonical candidate order: ascending index == node insertion order
    order = sorted(component)

    trace = [state.objective("density_modularity")]
    removal_order: list[int] = []
    iterations = 0

    while True:
        if max_iterations is not None and iterations >= max_iterations:
            break
        articulation = csr_articulation_points(csr, alive)
        best_index = -1
        best_key: tuple[float, float] = (float("-inf"), float("-inf"))
        d_s = state.degree_sum
        for i in order:
            if not alive[i] or is_query[i] or i in articulation:
                continue
            d_v = degree[i]
            k_v = edges_into[i]
            if selection == "gain":
                score = -4.0 * num_edges * k_v + 2.0 * d_s * d_v - float(d_v) ** 2
            else:
                score = float("inf") if k_v == 0 else d_v / k_v
            key = (score, float(dist[i]))
            if key > best_key or best_index < 0:
                best_key = key
                best_index = i
        if best_index < 0:
            break
        victim = best_index
        removal_order.append(victim)
        state.remove(victim)
        iterations += 1
        trace.append(state.objective("density_modularity"))

    best_trace_index = max(range(len(trace)), key=lambda i: (trace[i], i))
    best_value = trace[best_trace_index]
    removed_prefix = set(removal_order[:best_trace_index])
    node_list = csr.node_list
    best_nodes = frozenset(node_list[i] for i in component if i not in removed_prefix)

    elapsed = time.perf_counter() - start
    return CommunityResult(
        nodes=best_nodes,
        query_nodes=queries,
        algorithm="NCA" if selection == "gain" else "NCA-DR",
        score=best_value,
        objective_name="density_modularity",
        elapsed_seconds=elapsed,
        removal_order=tuple(node_list[i] for i in removal_order),
        trace=tuple(trace),
        extra={"iterations": iterations, "selection": selection, "backend": "csr"},
    )


def nca_search(graph: Graph, query_nodes: Sequence[Node]) -> set[Node]:
    """Convenience wrapper returning just the community node set of :func:`nca`."""
    return set(nca(graph, query_nodes).nodes)
