"""Non-articulation Cancellation Algorithm (NCA), Section 5.4.

NCA instantiates the peeling framework with

* removable nodes = non-articulation nodes of the current subgraph that are
  not query nodes (Section 5.2.1, DFS-tree based), and
* best node to remove = the one with the largest *density modularity gain*
  ``Λ_S^v = -4|E| k_{v,S} + 2 d_S d_v - d_v^2`` (Definition 6); ties are
  broken by keeping the node closer to the query nodes (i.e. removing the
  farther one).

The implementation maintains the community statistics (``l_S``, ``d_S``,
``|S|``) and the per-node ``k_{v,S}`` counts incrementally, so each
iteration costs ``O(|V| + |E|)`` for the articulation-point recomputation —
the bottleneck the paper identifies — plus ``O(|V|)`` for the arg-max.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Optional

from ..graph import Graph, GraphError, Node, articulation_points, multi_source_bfs
from ..modularity import CommunityStatistics
from .framework import prepare_search
from .result import CommunityResult

__all__ = ["nca", "nca_search"]


def nca(
    graph: Graph,
    query_nodes: Sequence[Node],
    selection: str = "gain",
    max_iterations: Optional[int] = None,
) -> CommunityResult:
    """Run NCA and return the best intermediate community.

    Parameters
    ----------
    graph:
        Host graph.
    query_nodes:
        One or more query nodes; they are never removed.
    selection:
        ``"gain"`` uses the density modularity gain Λ (the paper's NCA);
        ``"ratio"`` uses the density ratio Θ instead, which is the NCA-DR
        variant of Section 6.2.5.
    max_iterations:
        Optional cap on the number of removals (useful for ablations); by
        default peeling continues until no removable node remains.

    Returns
    -------
    CommunityResult
        The intermediate subgraph with maximum density modularity.  If the
        query nodes are not in one connected component a failed (empty)
        result is returned.
    """
    if selection not in ("gain", "ratio"):
        raise GraphError(f"selection must be 'gain' or 'ratio', got {selection!r}")
    start = time.perf_counter()
    try:
        queries, component = prepare_search(graph, query_nodes)
    except GraphError as error:
        return CommunityResult.empty(set(query_nodes), "NCA", reason=str(error))

    members = set(component)
    working = graph.subgraph(members)
    distances = multi_source_bfs(working, queries)

    stats = CommunityStatistics(graph, members)
    num_edges = graph.number_of_edges()
    # k_{v,S}: number of edges from v into the current member set
    edges_into: dict[Node, int] = {node: working.degree(node) for node in members}
    degree_of: dict[Node, int] = {node: graph.degree(node) for node in members}

    best_nodes = set(members)
    best_value = stats.density_modularity()
    trace = [best_value]
    removal_order: list[Node] = []
    iterations = 0

    while True:
        if max_iterations is not None and iterations >= max_iterations:
            break
        articulation = articulation_points(working)
        candidates = [
            node for node in working.iter_nodes() if node not in articulation and node not in queries
        ]
        if not candidates:
            break
        victim = _select(candidates, selection, stats, edges_into, degree_of, distances, num_edges)
        # remove the victim and update every incremental structure
        removal_order.append(victim)
        stats.remove(victim)
        for neighbor in working.adjacency(victim):
            edges_into[neighbor] -= 1
        working.remove_node(victim)
        edges_into.pop(victim, None)
        iterations += 1

        value = stats.density_modularity()
        trace.append(value)
        if value >= best_value:
            best_value = value
            best_nodes = set(stats.members)

    elapsed = time.perf_counter() - start
    return CommunityResult(
        nodes=frozenset(best_nodes),
        query_nodes=queries,
        algorithm="NCA" if selection == "gain" else "NCA-DR",
        score=best_value,
        objective_name="density_modularity",
        elapsed_seconds=elapsed,
        removal_order=tuple(removal_order),
        trace=tuple(trace),
        extra={"iterations": iterations, "selection": selection},
    )


def _select(
    candidates: list[Node],
    selection: str,
    stats: CommunityStatistics,
    edges_into: dict[Node, int],
    degree_of: dict[Node, int],
    distances: dict[Node, int],
    num_edges: int,
) -> Node:
    """Return the candidate to remove under the chosen selection rule."""
    d_s = stats.degree_sum
    best_node = candidates[0]
    best_key: tuple[float, float] = (float("-inf"), float("-inf"))
    for node in candidates:
        d_v = degree_of[node]
        k_v = edges_into[node]
        if selection == "gain":
            score = -4.0 * num_edges * k_v + 2.0 * d_s * d_v - float(d_v) ** 2
        else:  # density ratio
            score = float("inf") if k_v == 0 else d_v / k_v
        # tie-break: remove the node farther from the queries
        key = (score, float(distances.get(node, 0)))
        if key > best_key:
            best_key = key
            best_node = node
    return best_node


def nca_search(graph: Graph, query_nodes: Sequence[Node]) -> set[Node]:
    """Convenience wrapper returning just the community node set of :func:`nca`."""
    return set(nca(graph, query_nodes).nodes)
