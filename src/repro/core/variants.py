"""Named algorithm variants evaluated in Section 6.2.5 (Figure 14).

The paper's two key functions — *how removable nodes are found* ((a)
non-articulation nodes vs (b) farthest nodes) and *how the best node to
remove is chosen* ((c) density modularity gain vs (d) density ratio) — give
four combinations:

=========  ==========================  =====================
variant    removable nodes             selection
=========  ==========================  =====================
NCA        (a) non-articulation        (c) gain Λ
NCA-DR     (a) non-articulation        (d) ratio Θ
FPA-DMG    (b) farthest layers         (c) gain Λ
FPA        (b) farthest layers         (d) ratio Θ
=========  ==========================  =====================

Each helper below simply forwards to :func:`repro.core.nca` or
:func:`repro.core.fpa` with the matching parameters so experiment code can
refer to the variants by their paper names.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..graph import Graph, Node
from .fpa import fpa
from .nca import nca
from .result import CommunityResult

__all__ = ["nca_dr", "fpa_dmg", "fpa_without_pruning", "ALGORITHM_VARIANTS"]


def nca_dr(graph: Graph, query_nodes: Sequence[Node], **kwargs) -> CommunityResult:
    """NCA with the density ratio Θ as the selection rule ((a) + (d))."""
    return nca(graph, query_nodes, selection="ratio", **kwargs)


def fpa_dmg(graph: Graph, query_nodes: Sequence[Node], **kwargs) -> CommunityResult:
    """FPA with the density modularity gain Λ as the selection rule ((b) + (c))."""
    kwargs.setdefault("layer_pruning", False)
    return fpa(graph, query_nodes, selection="gain", **kwargs)


def fpa_without_pruning(graph: Graph, query_nodes: Sequence[Node], **kwargs) -> CommunityResult:
    """Plain Algorithm 2: FPA without the layer-based pruning strategy."""
    return fpa(graph, query_nodes, layer_pruning=False, **kwargs)


# Registry used by the Figure-14 experiment: paper name -> callable.
ALGORITHM_VARIANTS: dict[str, Callable[..., CommunityResult]] = {
    "NCA": nca,
    "NCA-DR": nca_dr,
    "FPA-DMG": fpa_dmg,
    "FPA": fpa,
}
