"""Fast Peeling Algorithm (FPA), Sections 5.5–5.7.

FPA instantiates the peeling framework with

* removable nodes = the nodes farthest from the query nodes (the outermost
  distance layer; Section 5.2.2), which are always safe to remove because
  every remaining node keeps a BFS parent strictly closer to the query, and
* best node to remove = the one with the largest *density ratio*
  ``Θ_S^v = d_v / k_{v,S}`` (Definition 7), a *stable* objective: removing a
  node only changes the Θ of its neighbours, so a lazy max-heap gives
  ``O(log |V|)`` per update and ``O((|E| + |V|) log |V|)`` overall.

Multiple query nodes are handled per Section 5.6 by first merging shortest
paths between the queries into a connected *connector* that is protected
from removal.  The layer-based pruning strategy of Section 5.7 first peels
whole distance layers, keeps the prefix with the best objective, and only
then peels that subgraph's outermost layer node by node.
"""

from __future__ import annotations

import heapq
import time
from collections.abc import Sequence

from ..graph import (
    Graph,
    GraphError,
    Node,
    connected_component_containing,
    multi_source_bfs,
    nodes_in_same_component,
    query_connector,
)
from ..modularity import CommunityStatistics
from .objectives import SUBGRAPH_OBJECTIVES, evaluate_objective
from .result import CommunityResult

__all__ = ["fpa", "fpa_search"]


def fpa(
    graph: Graph,
    query_nodes: Sequence[Node],
    selection: str = "ratio",
    layer_pruning: bool = True,
    objective: str = "density_modularity",
    seed: int = 0,
) -> CommunityResult:
    """Run FPA and return the best intermediate community.

    Parameters
    ----------
    graph:
        Host graph.
    query_nodes:
        One or more query nodes.
    selection:
        ``"ratio"`` picks nodes by density ratio Θ (the paper's FPA);
        ``"gain"`` picks by density modularity gain Λ, which is the FPA-DMG
        variant of Section 6.2.5 (same peel layers, unstable objective).
    layer_pruning:
        Apply the layer-based pruning strategy of Section 5.7 (the default,
        as in the paper's headline FPA).  With ``False`` the algorithm is the
        plain Algorithm 2 and peels every layer node by node.
    objective:
        Which goodness function selects the best intermediate subgraph; one
        of ``density_modularity`` (default), ``classic_modularity`` or
        ``generalized_modularity_density`` (the Figure-12 ablation).
    seed:
        Seed for the root choice of the multi-query connector.

    Returns
    -------
    CommunityResult
        The intermediate subgraph with the best objective value.  If the
        query nodes are not in one connected component a failed (empty)
        result is returned.
    """
    if selection not in ("ratio", "gain"):
        raise GraphError(f"selection must be 'ratio' or 'gain', got {selection!r}")
    if objective not in SUBGRAPH_OBJECTIVES:
        raise GraphError(f"unknown objective {objective!r}")
    start = time.perf_counter()

    queries = frozenset(query_nodes)
    algorithm = _algorithm_name(selection, layer_pruning)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")
    if not nodes_in_same_component(graph, queries):
        return CommunityResult.empty(
            queries, algorithm, reason="query nodes are not in the same connected component"
        )

    # Line 1 of Algorithm 2: restrict to the component containing the queries.
    component = connected_component_containing(graph, next(iter(queries)))
    working = graph.subgraph(component)

    # Section 5.6: merge shortest paths between queries into a protected core.
    protected = (
        query_connector(working, sorted(queries, key=repr), seed=seed)
        if len(queries) > 1
        else set(queries)
    )

    distances = multi_source_bfs(working, protected)
    stats = CommunityStatistics(graph, component)
    edges_into: dict[Node, int] = {node: working.degree(node) for node in component}

    # Distance layers, outermost (largest distance) first; layer 0 is protected.
    layers: dict[int, list[Node]] = {}
    for node, dist in distances.items():
        layers.setdefault(dist, []).append(node)
    layer_distances = sorted((d for d in layers if d > 0), reverse=True)

    # Trace bookkeeping: trace[i] is the objective value after i removals, so
    # the best intermediate subgraph is `component - removal_order[:argmax]`.
    removal_order: list[Node] = []
    trace: list[float] = [evaluate_objective(graph, stats, objective)]

    if layer_pruning and layer_distances:
        fine_layers = _layer_prune(
            graph, working, stats, edges_into, layers, layer_distances, objective, removal_order, trace
        )
    else:
        fine_layers = layer_distances

    for dist in fine_layers:
        candidates = [
            node for node in layers[dist] if node in stats.members and node not in protected
        ]
        if not candidates:
            continue
        _peel_layer(
            graph,
            working,
            stats,
            edges_into,
            candidates,
            selection,
            objective,
            distances,
            removal_order,
            trace,
        )

    # Best intermediate: ties go to the later (smaller) subgraph, matching the
    # ``DM(S) >= DM(C)`` update rule of Algorithm 2.
    best_index = max(range(len(trace)), key=lambda i: (trace[i], i))
    best_value = trace[best_index]
    best_nodes = set(component) - set(removal_order[:best_index])

    elapsed = time.perf_counter() - start
    return CommunityResult(
        nodes=frozenset(best_nodes),
        query_nodes=queries,
        algorithm=algorithm,
        score=best_value,
        objective_name=objective,
        elapsed_seconds=elapsed,
        removal_order=tuple(removal_order),
        trace=tuple(trace),
        extra={
            "selection": selection,
            "layer_pruning": layer_pruning,
            "protected_size": len(protected),
            "num_layers": len(layer_distances),
        },
    )


def _algorithm_name(selection: str, layer_pruning: bool) -> str:
    """Return the display name used in the paper for this configuration."""
    if selection == "gain":
        return "FPA-DMG"
    return "FPA" if layer_pruning else "FPA-NP"


def _layer_prune(
    graph: Graph,
    working: Graph,
    stats: CommunityStatistics,
    edges_into: dict[Node, int],
    layers: dict[int, list[Node]],
    layer_distances: list[int],
    objective: str,
    removal_order: list[Node],
    trace: list[float],
) -> list[int]:
    """Apply the Section 5.7 pruning; return the layers left for fine peeling.

    The candidate subgraphs are obtained by iteratively dropping whole outer
    layers.  The prefix with the best objective value is committed (its node
    removals are recorded in ``removal_order``/``trace``), and only the next
    (now outermost) layer of the selected subgraph is returned for the
    node-by-node peel.
    """
    # Evaluate the objective after removing each whole outer layer on a scratch copy.
    scratch = CommunityStatistics(graph, set(stats.members))
    prefix_values: list[tuple[int, float]] = [(0, evaluate_objective(graph, scratch, objective))]
    for index, dist in enumerate(layer_distances, start=1):
        for node in layers[dist]:
            if node in scratch.members:
                scratch.remove(node)
        if scratch.size == 0:
            break
        prefix_values.append((index, evaluate_objective(graph, scratch, objective)))
    best_prefix, _ = max(prefix_values, key=lambda item: (item[1], item[0]))

    # Commit the selected prefix: remove its layers from the real statistics.
    for dist in layer_distances[:best_prefix]:
        for node in layers[dist]:
            if node in stats.members:
                _remove_node(graph, stats, edges_into, node, removal_order)
                trace.append(evaluate_objective(graph, stats, objective))

    # Fine-grained peeling only touches the outermost layer that remains.
    return layer_distances[best_prefix : best_prefix + 1]


def _peel_layer(
    graph: Graph,
    working: Graph,
    stats: CommunityStatistics,
    edges_into: dict[Node, int],
    candidates: list[Node],
    selection: str,
    objective: str,
    distances: dict[Node, int],
    removal_order: list[Node],
    trace: list[float],
) -> None:
    """Peel every candidate of one distance layer in goodness order (in place)."""
    num_edges = graph.number_of_edges()
    candidate_set = set(candidates)

    if selection == "ratio":
        heap: list[tuple[float, int, Node]] = []
        counter = 0
        for node in candidates:
            theta = _theta(graph.degree(node), edges_into[node])
            heap.append((-theta, counter, node))
            counter += 1
        heapq.heapify(heap)
        while candidate_set and heap:
            neg_theta, _, node = heapq.heappop(heap)
            if node not in candidate_set:
                continue
            current_theta = _theta(graph.degree(node), edges_into[node])
            if -neg_theta < current_theta:
                # stale entry; re-push with the up-to-date (larger) Θ
                heapq.heappush(heap, (-current_theta, counter, node))
                counter += 1
                continue
            candidate_set.discard(node)
            neighbors = list(working.adjacency(node))
            _remove_node(graph, stats, edges_into, node, removal_order)
            trace.append(evaluate_objective(graph, stats, objective))
            for neighbor in neighbors:
                if neighbor in candidate_set:
                    theta = _theta(graph.degree(neighbor), edges_into[neighbor])
                    heapq.heappush(heap, (-theta, counter, neighbor))
                    counter += 1
    else:  # selection == "gain": Λ is unstable, recompute over candidates each time
        while candidate_set:
            d_s = stats.degree_sum
            best_node = next(iter(candidate_set))
            best_key: tuple[float, float] = (float("-inf"), float("-inf"))
            for node in candidate_set:
                d_v = graph.degree(node)
                k_v = edges_into[node]
                gain = -4.0 * num_edges * k_v + 2.0 * d_s * d_v - float(d_v) ** 2
                key = (gain, float(distances.get(node, 0)))
                if key > best_key:
                    best_key = key
                    best_node = node
            candidate_set.discard(best_node)
            _remove_node(graph, stats, edges_into, best_node, removal_order)
            trace.append(evaluate_objective(graph, stats, objective))


def _theta(degree: int, edges_in: int) -> float:
    """Density ratio Θ = d_v / k_{v,S}, with +inf for isolated candidates."""
    if edges_in <= 0:
        return float("inf")
    return degree / edges_in


def _remove_node(
    graph: Graph,
    stats: CommunityStatistics,
    edges_into: dict[Node, int],
    node: Node,
    removal_order: list[Node],
) -> None:
    """Remove ``node`` from the community, keeping every structure in sync."""
    stats.remove(node)
    for neighbor in graph.adjacency(node):
        if neighbor in edges_into and neighbor in stats.members:
            edges_into[neighbor] -= 1
    edges_into.pop(node, None)
    removal_order.append(node)


def fpa_search(graph: Graph, query_nodes: Sequence[Node], **kwargs) -> set[Node]:
    """Convenience wrapper returning just the community node set of :func:`fpa`."""
    return set(fpa(graph, query_nodes, **kwargs).nodes)
