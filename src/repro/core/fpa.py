"""Fast Peeling Algorithm (FPA), Sections 5.5–5.7.

FPA instantiates the peeling framework with

* removable nodes = the nodes farthest from the query nodes (the outermost
  distance layer; Section 5.2.2), which are always safe to remove because
  every remaining node keeps a BFS parent strictly closer to the query, and
* best node to remove = the one with the largest *density ratio*
  ``Θ_S^v = d_v / k_{v,S}`` (Definition 7), a *stable* objective: removing a
  node only changes the Θ of its neighbours, so a lazy max-heap gives
  ``O(log |V|)`` per update and ``O((|E| + |V|) log |V|)`` overall.

Multiple query nodes are handled per Section 5.6 by first merging shortest
paths between the queries into a connected *connector* that is protected
from removal.  The layer-based pruning strategy of Section 5.7 first peels
whole distance layers, keeps the prefix with the best objective, and only
then peels that subgraph's outermost layer node by node.

Two backends implement the same peel:

* the dict backend (reference) traverses the dict-of-dicts adjacency of the
  original graph — the query component is closed under adjacency, so no
  subgraph copy is ever materialised;
* the CSR backend runs when the input is a
  :class:`~repro.graph.csr.FrozenGraph` and works on flat integer arrays.

Both backends visit sources, layers and neighbours in identical orders
(insertion order of the graph, query/connector nodes sorted by ``repr``),
so their results are bit-identical.
"""

from __future__ import annotations

import heapq
import random
import time
from collections.abc import Sequence

from ..graph import (
    CSRGraph,
    FrozenGraph,
    Graph,
    GraphError,
    Node,
    connected_component_containing,
    csr_connected_component,
    csr_multi_source_bfs,
    csr_shortest_path,
    multi_source_bfs,
    nodes_in_same_component,
    query_connector,
)
from ..modularity import CommunityStatistics
from .framework import CSRPeelState, graph_backend
from .objectives import SUBGRAPH_OBJECTIVES, evaluate_objective, objective_from_scalars
from .result import CommunityResult

__all__ = ["fpa", "fpa_search"]


def fpa(
    graph: Graph,
    query_nodes: Sequence[Node],
    selection: str = "ratio",
    layer_pruning: bool = True,
    objective: str = "density_modularity",
    seed: int = 0,
) -> CommunityResult:
    """Run FPA and return the best intermediate community.

    Parameters
    ----------
    graph:
        Host graph.  A :class:`~repro.graph.csr.FrozenGraph` (see
        :meth:`~repro.graph.graph.Graph.freeze`) selects the CSR fast path;
        results are identical either way.
    query_nodes:
        One or more query nodes.
    selection:
        ``"ratio"`` picks nodes by density ratio Θ (the paper's FPA);
        ``"gain"`` picks by density modularity gain Λ, which is the FPA-DMG
        variant of Section 6.2.5 (same peel layers, unstable objective).
    layer_pruning:
        Apply the layer-based pruning strategy of Section 5.7 (the default,
        as in the paper's headline FPA).  With ``False`` the algorithm is the
        plain Algorithm 2 and peels every layer node by node.
    objective:
        Which goodness function selects the best intermediate subgraph; one
        of ``density_modularity`` (default), ``classic_modularity`` or
        ``generalized_modularity_density`` (the Figure-12 ablation).
    seed:
        Seed for the root choice of the multi-query connector.

    Returns
    -------
    CommunityResult
        The intermediate subgraph with the best objective value.  If the
        query nodes are not in one connected component a failed (empty)
        result is returned.
    """
    if selection not in ("ratio", "gain"):
        raise GraphError(f"selection must be 'ratio' or 'gain', got {selection!r}")
    if objective not in SUBGRAPH_OBJECTIVES:
        raise GraphError(f"unknown objective {objective!r}")
    if graph_backend(graph) == "csr":
        return _fpa_csr(graph, query_nodes, selection, layer_pruning, objective, seed)
    return _fpa_dict(graph, query_nodes, selection, layer_pruning, objective, seed)


def _fpa_dict(
    graph: Graph,
    query_nodes: Sequence[Node],
    selection: str,
    layer_pruning: bool,
    objective: str,
    seed: int,
) -> CommunityResult:
    """Reference implementation on the dict-of-dicts backend."""
    start = time.perf_counter()

    queries = frozenset(query_nodes)
    algorithm = _algorithm_name(selection, layer_pruning)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")
    if not nodes_in_same_component(graph, queries):
        return CommunityResult.empty(
            queries, algorithm, reason="query nodes are not in the same connected component"
        )

    # Line 1 of Algorithm 2: restrict to the component containing the queries.
    # The component is closed under adjacency, so all traversals below run on
    # the original graph directly — no induced-subgraph copy is needed.
    component = connected_component_containing(graph, next(iter(queries)))

    # Section 5.6: merge shortest paths between queries into a protected core.
    protected = (
        query_connector(graph, sorted(queries, key=repr), seed=seed)
        if len(queries) > 1
        else set(queries)
    )

    distances = multi_source_bfs(graph, sorted(protected, key=repr))
    stats = CommunityStatistics(graph, component)
    edges_into: dict[Node, int] = {node: graph.degree(node) for node in component}

    # Distance layers, outermost (largest distance) first; layer 0 is
    # protected.  Each layer lists nodes in BFS discovery order.
    layers: dict[int, list[Node]] = {}
    for node, dist in distances.items():
        layers.setdefault(dist, []).append(node)
    layer_distances = sorted((d for d in layers if d > 0), reverse=True)

    # Trace bookkeeping: trace[i] is the objective value after i removals, so
    # the best intermediate subgraph is `component - removal_order[:argmax]`.
    removal_order: list[Node] = []
    trace: list[float] = [evaluate_objective(graph, stats, objective)]

    if layer_pruning and layer_distances:
        fine_layers = _layer_prune(
            graph, stats, edges_into, layers, layer_distances, objective, removal_order, trace
        )
    else:
        fine_layers = layer_distances

    for dist in fine_layers:
        candidates = [
            node for node in layers[dist] if node in stats.members and node not in protected
        ]
        if not candidates:
            continue
        _peel_layer(
            graph,
            stats,
            edges_into,
            candidates,
            selection,
            objective,
            distances,
            removal_order,
            trace,
        )

    # Best intermediate: ties go to the later (smaller) subgraph, matching the
    # ``DM(S) >= DM(C)`` update rule of Algorithm 2.
    best_index = max(range(len(trace)), key=lambda i: (trace[i], i))
    best_value = trace[best_index]
    best_nodes = set(component) - set(removal_order[:best_index])

    elapsed = time.perf_counter() - start
    return CommunityResult(
        nodes=frozenset(best_nodes),
        query_nodes=queries,
        algorithm=algorithm,
        score=best_value,
        objective_name=objective,
        elapsed_seconds=elapsed,
        removal_order=tuple(removal_order),
        trace=tuple(trace),
        extra={
            "selection": selection,
            "layer_pruning": layer_pruning,
            "protected_size": len(protected),
            "num_layers": len(layer_distances),
            "backend": "dict",
        },
    )


def _algorithm_name(selection: str, layer_pruning: bool) -> str:
    """Return the display name used in the paper for this configuration."""
    if selection == "gain":
        return "FPA-DMG"
    return "FPA" if layer_pruning else "FPA-NP"


def _layer_prune(
    graph: Graph,
    stats: CommunityStatistics,
    edges_into: dict[Node, int],
    layers: dict[int, list[Node]],
    layer_distances: list[int],
    objective: str,
    removal_order: list[Node],
    trace: list[float],
) -> list[int]:
    """Apply the Section 5.7 pruning; return the layers left for fine peeling.

    The candidate subgraphs are obtained by iteratively dropping whole outer
    layers.  The prefix with the best objective value is committed (its node
    removals are recorded in ``removal_order``/``trace``), and only the next
    (now outermost) layer of the selected subgraph is returned for the
    node-by-node peel.
    """
    # Evaluate the objective after removing each whole outer layer on a scratch copy.
    scratch = CommunityStatistics(graph, set(stats.members))
    prefix_values: list[tuple[int, float]] = [(0, evaluate_objective(graph, scratch, objective))]
    for index, dist in enumerate(layer_distances, start=1):
        for node in layers[dist]:
            if node in scratch.members:
                scratch.remove(node)
        if scratch.size == 0:
            break
        prefix_values.append((index, evaluate_objective(graph, scratch, objective)))
    best_prefix, _ = max(prefix_values, key=lambda item: (item[1], item[0]))

    # Commit the selected prefix: remove its layers from the real statistics.
    for dist in layer_distances[:best_prefix]:
        for node in layers[dist]:
            if node in stats.members:
                _remove_node(graph, stats, edges_into, node, removal_order)
                trace.append(evaluate_objective(graph, stats, objective))

    # Fine-grained peeling only touches the outermost layer that remains.
    return layer_distances[best_prefix : best_prefix + 1]


def _peel_layer(
    graph: Graph,
    stats: CommunityStatistics,
    edges_into: dict[Node, int],
    candidates: list[Node],
    selection: str,
    objective: str,
    distances: dict[Node, int],
    removal_order: list[Node],
    trace: list[float],
) -> None:
    """Peel every candidate of one distance layer in goodness order (in place)."""
    num_edges = graph.number_of_edges()
    candidate_set = set(candidates)

    if selection == "ratio":
        heap: list[tuple[float, int, Node]] = []
        counter = 0
        for node in candidates:
            theta = _theta(graph.degree(node), edges_into[node])
            heap.append((-theta, counter, node))
            counter += 1
        heapq.heapify(heap)
        while candidate_set and heap:
            neg_theta, _, node = heapq.heappop(heap)
            if node not in candidate_set:
                continue
            current_theta = _theta(graph.degree(node), edges_into[node])
            if -neg_theta < current_theta:
                # stale entry; re-push with the up-to-date (larger) Θ
                heapq.heappush(heap, (-current_theta, counter, node))
                counter += 1
                continue
            candidate_set.discard(node)
            neighbors = list(graph.adjacency(node))
            _remove_node(graph, stats, edges_into, node, removal_order)
            trace.append(evaluate_objective(graph, stats, objective))
            for neighbor in neighbors:
                if neighbor in candidate_set:
                    theta = _theta(graph.degree(neighbor), edges_into[neighbor])
                    heapq.heappush(heap, (-theta, counter, neighbor))
                    counter += 1
    else:  # selection == "gain": Λ is unstable, recompute over candidates each time
        while candidate_set:
            d_s = stats.degree_sum
            best_node = None
            best_key: tuple[float, float] = (float("-inf"), float("-inf"))
            for node in candidates:
                if node not in candidate_set:
                    continue
                d_v = graph.degree(node)
                k_v = edges_into[node]
                gain = -4.0 * num_edges * k_v + 2.0 * d_s * d_v - float(d_v) ** 2
                key = (gain, float(distances.get(node, 0)))
                if best_node is None or key > best_key:
                    best_key = key
                    best_node = node
            candidate_set.discard(best_node)
            _remove_node(graph, stats, edges_into, best_node, removal_order)
            trace.append(evaluate_objective(graph, stats, objective))


def _theta(degree: int, edges_in: int) -> float:
    """Density ratio Θ = d_v / k_{v,S}, with +inf for isolated candidates."""
    if edges_in <= 0:
        return float("inf")
    return degree / edges_in


def _remove_node(
    graph: Graph,
    stats: CommunityStatistics,
    edges_into: dict[Node, int],
    node: Node,
    removal_order: list[Node],
) -> None:
    """Remove ``node`` from the community, keeping every structure in sync."""
    stats.remove(node)
    for neighbor in graph.adjacency(node):
        if neighbor in edges_into and neighbor in stats.members:
            edges_into[neighbor] -= 1
    edges_into.pop(node, None)
    removal_order.append(node)


# ----------------------------------------------------------------------------
# CSR fast path
# ----------------------------------------------------------------------------


def _fpa_csr(
    graph: FrozenGraph,
    query_nodes: Sequence[Node],
    selection: str,
    layer_pruning: bool,
    objective: str,
    seed: int,
) -> CommunityResult:
    """CSR fast path: the same peel over flat integer arrays."""
    start = time.perf_counter()
    csr = graph.csr

    queries = frozenset(query_nodes)
    algorithm = _algorithm_name(selection, layer_pruning)
    if not queries:
        raise GraphError("community search needs at least one query node")
    index_of = csr.index_of
    for node in queries:
        if node not in index_of:
            raise GraphError(f"query node {node!r} is not in the graph")
    query_indices = [index_of[node] for node in queries]

    component = csr_connected_component(csr, query_indices[0])
    component_mask = bytearray(csr.number_of_nodes())
    for index in component:
        component_mask[index] = 1
    if any(not component_mask[index] for index in query_indices):
        return CommunityResult.empty(
            queries, algorithm, reason="query nodes are not in the same connected component"
        )

    node_list = csr.node_list
    protected = _csr_query_connector(csr, queries, seed) if len(queries) > 1 else set(query_indices)

    sources = sorted(protected, key=lambda i: repr(node_list[i]))
    dist, discovery_order = csr_multi_source_bfs(csr, sources)
    state = CSRPeelState(csr, component)
    is_protected = bytearray(csr.number_of_nodes())
    for index in protected:
        is_protected[index] = 1

    layers: dict[int, list[int]] = {}
    for index in discovery_order:
        layers.setdefault(dist[index], []).append(index)
    layer_distances = sorted((d for d in layers if d > 0), reverse=True)

    removal_order: list[int] = []
    trace: list[float] = [state.objective(objective)]

    if layer_pruning and layer_distances:
        fine_layers = _csr_layer_prune(
            state, layers, layer_distances, objective, removal_order, trace
        )
    else:
        fine_layers = layer_distances

    for layer_dist in fine_layers:
        candidates = [
            index for index in layers[layer_dist] if state.alive[index] and not is_protected[index]
        ]
        if not candidates:
            continue
        _csr_peel_layer(state, candidates, selection, objective, dist, removal_order, trace)

    best_index = max(range(len(trace)), key=lambda i: (trace[i], i))
    best_value = trace[best_index]
    removed_prefix = set(removal_order[:best_index])
    best_nodes = frozenset(node_list[i] for i in component if i not in removed_prefix)

    elapsed = time.perf_counter() - start
    return CommunityResult(
        nodes=best_nodes,
        query_nodes=queries,
        algorithm=algorithm,
        score=best_value,
        objective_name=objective,
        elapsed_seconds=elapsed,
        removal_order=tuple(node_list[i] for i in removal_order),
        trace=tuple(trace),
        extra={
            "selection": selection,
            "layer_pruning": layer_pruning,
            "protected_size": len(protected),
            "num_layers": len(layer_distances),
            "backend": "csr",
        },
    )


def _csr_query_connector(csr: CSRGraph, queries: frozenset, seed: int) -> set[int]:
    """Index-based replica of :func:`repro.graph.steiner.query_connector`.

    Must choose the same root (same RNG draw over the same repr-sorted query
    list) and the same shortest paths (identical BFS neighbour order) as the
    dict implementation.
    """
    node_list = csr.node_list
    query_list = [csr.index_of[node] for node in sorted(queries, key=repr)]
    rng = random.Random(seed)
    root = query_list[rng.randrange(len(query_list))]
    connector: set[int] = {root}
    for target in query_list:
        if target == root:
            continue
        path = csr_shortest_path(csr, root, target)
        if path is None:
            raise GraphError(
                f"query nodes {node_list[root]!r} and {node_list[target]!r} "
                "are not in the same connected component"
            )
        connector.update(path)
    return connector


def _csr_layer_prune(
    state: CSRPeelState,
    layers: dict[int, list[int]],
    layer_distances: list[int],
    objective: str,
    removal_order: list[int],
    trace: list[float],
) -> list[int]:
    """Index-based replica of :func:`_layer_prune` (Section 5.7)."""
    # Evaluate the objective after removing each whole outer layer on scratch scalars.
    csr = state.csr
    num_edges = csr.num_edges
    scratch_alive = bytearray(state.alive)
    scratch_size = state.size
    scratch_internal = state.internal
    scratch_degree_sum = state.degree_sum
    degree = state.degree
    adj = state.adj
    prefix_values: list[tuple[int, float]] = [
        (0, objective_from_scalars(num_edges, scratch_internal, scratch_degree_sum, scratch_size, objective))
    ]
    for prefix_index, layer_dist in enumerate(layer_distances, start=1):
        for index in layers[layer_dist]:
            if not scratch_alive[index]:
                continue
            scratch_alive[index] = 0
            scratch_size -= 1
            lost = 0
            for neighbor in adj[index]:
                if scratch_alive[neighbor]:
                    lost += 1
            scratch_internal -= lost
            scratch_degree_sum -= degree[index]
        if scratch_size == 0:
            break
        prefix_values.append(
            (
                prefix_index,
                objective_from_scalars(
                    num_edges, scratch_internal, scratch_degree_sum, scratch_size, objective
                ),
            )
        )
    best_prefix, _ = max(prefix_values, key=lambda item: (item[1], item[0]))

    # Commit the selected prefix on the real statistics.
    for layer_dist in layer_distances[:best_prefix]:
        for index in layers[layer_dist]:
            if state.alive[index]:
                state.remove(index)
                removal_order.append(index)
                trace.append(state.objective(objective))

    return layer_distances[best_prefix : best_prefix + 1]


def _csr_peel_layer(
    state: CSRPeelState,
    candidates: list[int],
    selection: str,
    objective: str,
    dist: list[int],
    removal_order: list[int],
    trace: list[float],
) -> None:
    """Index-based replica of :func:`_peel_layer`."""
    csr = state.csr
    num_edges = csr.num_edges
    degree = state.degree
    edges_into = state.edges_into
    adj = state.adj
    candidate_set = set(candidates)

    if selection == "ratio":
        heap: list[tuple[float, int, int]] = []
        counter = 0
        for index in candidates:
            theta = _theta(degree[index], edges_into[index])
            heap.append((-theta, counter, index))
            counter += 1
        heapq.heapify(heap)
        while candidate_set and heap:
            neg_theta, _, index = heapq.heappop(heap)
            if index not in candidate_set:
                continue
            current_theta = _theta(degree[index], edges_into[index])
            if -neg_theta < current_theta:
                # stale entry; re-push with the up-to-date (larger) Θ
                heapq.heappush(heap, (-current_theta, counter, index))
                counter += 1
                continue
            candidate_set.discard(index)
            neighbors = adj[index]
            state.remove(index)
            removal_order.append(index)
            trace.append(state.objective(objective))
            for neighbor in neighbors:
                if neighbor in candidate_set:
                    theta = _theta(degree[neighbor], edges_into[neighbor])
                    heapq.heappush(heap, (-theta, counter, neighbor))
                    counter += 1
    else:  # selection == "gain"
        while candidate_set:
            d_s = state.degree_sum
            best_node = -1
            best_key: tuple[float, float] = (float("-inf"), float("-inf"))
            for index in candidates:
                if index not in candidate_set:
                    continue
                d_v = degree[index]
                k_v = edges_into[index]
                gain = -4.0 * num_edges * k_v + 2.0 * d_s * d_v - float(d_v) ** 2
                key = (gain, float(dist[index]))
                if best_node < 0 or key > best_key:
                    best_key = key
                    best_node = index
            candidate_set.discard(best_node)
            state.remove(best_node)
            removal_order.append(best_node)
            trace.append(state.objective(objective))


def fpa_search(graph: Graph, query_nodes: Sequence[Node], **kwargs) -> set[Node]:
    """Convenience wrapper returning just the community node set of :func:`fpa`."""
    return set(fpa(graph, query_nodes, **kwargs).nodes)
