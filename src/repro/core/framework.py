"""Algorithm 1: the top-down greedy peeling framework.

The framework iteratively removes a *removable* node (one that is not a
query node and whose removal keeps the remaining graph connected), always
choosing the candidate that the plugged-in selection strategy ranks best,
and finally returns the intermediate subgraph with the largest goodness
value.  NCA and FPA are optimised instantiations of this framework; the
generic version here is intentionally simple and is used both as a reference
implementation in tests and as a base for custom strategies.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Sequence
from typing import Optional

from ..graph import (
    CSRGraph,
    FrozenGraph,
    Graph,
    GraphError,
    Node,
    connected_component_containing,
    multi_source_bfs,
    nodes_in_same_component,
    non_articulation_nodes,
)
from ..modularity import density_modularity
from .objectives import objective_from_scalars
from .result import CommunityResult

__all__ = [
    "greedy_peel",
    "RemovableStrategy",
    "SelectionStrategy",
    "prepare_search",
    "graph_backend",
    "CSRPeelState",
]


def graph_backend(graph: Graph) -> str:
    """Return which kernel backend ``graph`` selects: ``"csr"`` or ``"dict"``.

    A :class:`~repro.graph.csr.FrozenGraph` (produced by
    :meth:`~repro.graph.graph.Graph.freeze`) routes the peeling algorithms to
    the array-backed CSR kernels; every other graph uses the dict-of-dicts
    reference implementation.  Both produce identical results — the CSR path
    only changes the constant factor.
    """
    return "csr" if isinstance(graph, FrozenGraph) else "dict"


class CSRPeelState:
    """Scalar community statistics + per-node arrays for a CSR peel.

    The single CSR counterpart of
    :class:`~repro.modularity.CommunityStatistics`, shared by the NCA and
    FPA fast paths: it performs exactly the same float operations as the
    dict-side statistics plus
    :func:`~repro.core.objectives.objective_from_scalars`, which is what
    keeps the two backends bit-identical.
    """

    __slots__ = ("csr", "adj", "alive", "size", "internal", "degree_sum", "degree", "edges_into")

    def __init__(self, csr: CSRGraph, component: list[int]) -> None:
        self.csr = csr
        self.adj = csr.adjacency_lists()
        n = csr.number_of_nodes()
        self.alive = bytearray(n)
        for index in component:
            self.alive[index] = 1
        self.degree = csr.degrees()
        self.size = len(component)
        self.degree_sum = float(sum(self.degree[i] for i in component))
        # the query component is adjacency-closed: every incident edge is internal
        self.internal = float(int(self.degree_sum) // 2)
        self.edges_into = list(self.degree)

    def remove(self, index: int) -> None:
        """Remove node ``index``, updating statistics and neighbour counts."""
        alive = self.alive
        alive[index] = 0
        self.size -= 1
        lost = 0
        edges_into = self.edges_into
        for neighbor in self.adj[index]:
            if alive[neighbor]:
                lost += 1
                edges_into[neighbor] -= 1
        self.internal -= lost
        self.degree_sum -= self.degree[index]

    def objective(self, objective: str) -> float:
        """Return the requested objective of the current community."""
        return objective_from_scalars(
            self.csr.num_edges, self.internal, self.degree_sum, self.size, objective
        )

# A removable strategy maps (graph, current members, query nodes) to candidates.
RemovableStrategy = Callable[[Graph, set[Node], frozenset[Node]], Iterable[Node]]
# A selection strategy scores one candidate; higher is better (removed first).
SelectionStrategy = Callable[[Graph, set[Node], Node], float]


def prepare_search(
    graph: Graph, query_nodes: Sequence[Node]
) -> tuple[frozenset[Node], set[Node]]:
    """Validate the query and return ``(query set, starting component)``.

    Raises :class:`GraphError` when the query is empty, contains unknown
    nodes, or spans multiple connected components (in which case no connected
    community containing all query nodes exists).
    """
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")
    if not nodes_in_same_component(graph, queries):
        raise GraphError("query nodes are not in the same connected component")
    component = connected_component_containing(graph, next(iter(queries)))
    return queries, component


def greedy_peel(
    graph: Graph,
    query_nodes: Sequence[Node],
    removable_strategy: Optional[RemovableStrategy] = None,
    selection_strategy: Optional[SelectionStrategy] = None,
    goodness: Optional[Callable[[Graph, Iterable[Node]], float]] = None,
    algorithm_name: str = "greedy-peel",
) -> CommunityResult:
    """Run Algorithm 1 with pluggable strategies (reference implementation).

    Parameters
    ----------
    graph:
        The host graph.
    query_nodes:
        Nodes that must stay inside every intermediate subgraph.
    removable_strategy:
        Returns candidate nodes whose removal keeps the graph connected;
        defaults to all non-articulation, non-query nodes (NCA's choice).
    selection_strategy:
        Scores a candidate; the highest-scoring candidate is removed first.
        Defaults to the density modularity of the remaining subgraph (the
        direct greedy objective of Algorithm 1, line 4).
    goodness:
        The function maximised over intermediate subgraphs (Algorithm 1,
        line 7); defaults to density modularity.
    algorithm_name:
        Label stored in the returned :class:`CommunityResult`.

    Notes
    -----
    This implementation recomputes strategies from scratch each iteration and
    therefore runs in roughly ``O(|V|^2 (|V| + |E|))`` in the worst case; use
    :func:`repro.core.nca` or :func:`repro.core.fpa` for anything beyond a
    few thousand nodes.
    """
    start = time.perf_counter()
    queries, component = prepare_search(graph, query_nodes)
    goodness_fn = goodness if goodness is not None else density_modularity

    if removable_strategy is None:
        removable_strategy = _default_removable
    if selection_strategy is None:
        selection_strategy = _default_selection(goodness_fn)

    members = set(component)
    distances = multi_source_bfs(graph.subgraph(members), queries)

    best_nodes = set(members)
    best_value = goodness_fn(graph, members)
    trace = [best_value]
    removal_order: list[Node] = []

    while True:
        candidates = [node for node in removable_strategy(graph, members, queries)]
        candidates = [node for node in candidates if node not in queries]
        if not candidates:
            break
        # score candidates; tie-break by distance from queries (farther first)
        scored = [
            (selection_strategy(graph, members, node), distances.get(node, 0), node)
            for node in candidates
        ]
        scored.sort(key=lambda item: (item[0], item[1]), reverse=True)
        victim = scored[0][2]
        members.discard(victim)
        removal_order.append(victim)
        value = goodness_fn(graph, members)
        trace.append(value)
        if value >= best_value:
            best_value = value
            best_nodes = set(members)

    elapsed = time.perf_counter() - start
    return CommunityResult(
        nodes=frozenset(best_nodes),
        query_nodes=queries,
        algorithm=algorithm_name,
        score=best_value,
        objective_name=getattr(goodness_fn, "__name__", "goodness"),
        elapsed_seconds=elapsed,
        removal_order=tuple(removal_order),
        trace=tuple(trace),
    )


def _default_removable(graph: Graph, members: set[Node], queries: frozenset[Node]) -> list[Node]:
    """Non-articulation nodes of the current induced subgraph, minus queries."""
    subgraph = graph.subgraph(members)
    return [node for node in non_articulation_nodes(subgraph) if node not in queries]


def _default_selection(
    goodness_fn: Callable[[Graph, Iterable[Node]], float]
) -> SelectionStrategy:
    """Score a candidate by the goodness of the subgraph after removing it."""

    def score(graph: Graph, members: set[Node], node: Node) -> float:
        remaining = members - {node}
        if not remaining:
            return float("-inf")
        return goodness_fn(graph, remaining)

    return score
