"""Density-modularity community *detection* (the paper's future-work extension).

The conclusion of the paper notes that density modularity could also drive
community detection, since it mitigates the resolution limit that plagues
classic modularity maximisation.  This module implements that extension with
the machinery already built for DMCS:

repeatedly pick a seed node (highest degree among the unassigned nodes by
default), extract its maximum-density-modularity community with FPA
restricted to the still-unassigned part of the graph, assign those nodes to
a new community, and continue until every node is assigned.  Singleton
leftovers are merged into the neighbouring community with the most edges to
them, so the output is a partition of the node set.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from ..graph import Graph, GraphError, Node, connected_components
from ..modularity import density_modularity
from .fpa import fpa

__all__ = ["dmcs_detection"]


def dmcs_detection(
    graph: Graph,
    min_community_size: int = 2,
    layer_pruning: bool = False,
    max_communities: Optional[int] = None,
    seeds: Optional[Sequence[Node]] = None,
) -> list[set[Node]]:
    """Partition ``graph`` into communities by repeated DMCS extraction.

    Parameters
    ----------
    graph:
        The graph to partition (isolated nodes become singleton communities).
    min_community_size:
        Communities smaller than this are merged into their best-connected
        neighbouring community at the end.
    layer_pruning:
        Forwarded to :func:`repro.core.fpa`; detection defaults to the exact
        (non-pruned) peel because accuracy matters more than speed here.
    max_communities:
        Optional safety cap on the number of extraction rounds; remaining
        nodes are grouped by connected component once the cap is reached.
    seeds:
        Optional explicit seed order; by default the highest-degree
        unassigned node seeds each round.

    Returns
    -------
    list[set]
        Disjoint communities covering every node of the graph.
    """
    if min_community_size < 1:
        raise GraphError(f"min_community_size must be positive, got {min_community_size}")
    remaining = graph.copy()
    communities: list[set[Node]] = []
    seed_queue = list(seeds) if seeds is not None else []

    while remaining.number_of_nodes() > 0:
        if max_communities is not None and len(communities) >= max_communities:
            communities.extend(connected_components(remaining))
            break
        if remaining.number_of_edges() == 0:
            # only isolated nodes are left
            communities.extend({node} for node in remaining.iter_nodes())
            break
        seed = _next_seed(remaining, seed_queue)
        if remaining.degree(seed) == 0:
            communities.append({seed})
            remaining.remove_node(seed)
            continue
        result = fpa(remaining, [seed], layer_pruning=layer_pruning)
        community = set(result.nodes) if result.nodes else {seed}
        communities.append(community)
        remaining.remove_nodes_from(community)

    return _merge_small_communities(graph, communities, min_community_size)


def _next_seed(remaining: Graph, seed_queue: list[Node]) -> Node:
    """Pop the next usable seed, defaulting to the highest-degree node."""
    while seed_queue:
        candidate = seed_queue.pop(0)
        if remaining.has_node(candidate):
            return candidate
    return max(remaining.iter_nodes(), key=remaining.degree)


def _merge_small_communities(
    graph: Graph, communities: list[set[Node]], min_size: int
) -> list[set[Node]]:
    """Merge communities below ``min_size`` into their best-connected neighbour."""
    if min_size <= 1 or len(communities) <= 1:
        return [set(community) for community in communities if community]
    communities = [set(community) for community in communities if community]
    membership: dict[Node, int] = {}
    for index, community in enumerate(communities):
        for node in community:
            membership[node] = index

    changed = True
    while changed:
        changed = False
        for index, community in enumerate(communities):
            if not community or len(community) >= min_size:
                continue
            # count edges from this small community to every other community
            links: dict[int, int] = {}
            for node in community:
                for neighbor in graph.adjacency(node):
                    target = membership[neighbor]
                    if target != index:
                        links[target] = links.get(target, 0) + 1
            if not links:
                continue  # an isolated small community stays as it is
            best = max(links, key=lambda target: (links[target], -target))
            communities[best] |= community
            for node in community:
                membership[node] = best
            communities[index] = set()
            changed = True
    merged = [community for community in communities if community]
    # sanity: the result must still be a partition
    covered = set()
    for community in merged:
        covered |= community
    if covered != set(graph.iter_nodes()):
        raise GraphError("internal error: detection result does not cover the graph")
    return merged


def partition_density_modularity(graph: Graph, communities: list[set[Node]]) -> float:
    """Return the sum of per-community density modularity of a partition.

    This is the natural detection objective induced by Definition 2; it is
    exposed for evaluating :func:`dmcs_detection` outputs and for comparing
    against classic-modularity partitions (e.g. Louvain's).
    """
    seen: set[Node] = set()
    total = 0.0
    for community in communities:
        members = set(community)
        if members & seen:
            raise GraphError("communities must be disjoint")
        seen |= members
        total += density_modularity(graph, members)
    return total
