"""Exact incremental maintenance of core numbers and triangle supports.

The expensive part of republishing a snapshot after a small edit is not the
freeze itself (O(V + E) either way) but re-deriving the decompositions the
query algorithms sit on: the core numbers behind ``kc`` and the per-edge
triangle supports behind the truss peel.  This module maintains both under
single-edge insertions and deletions, exactly:

* **Core numbers** use the traversal ("subcore") algorithm of the streaming
  k-core literature: a single edge insertion can raise core numbers only
  within the connected ``K == r`` subgraph around the endpoints (``r`` the
  smaller endpoint core number), and only by exactly one — a constrained
  BFS plus a cascade of evictions settles the new values without touching
  the rest of the graph.  Deletions run the mirror-image cascade.
* **Triangle supports** update by intersecting the endpoint neighbourhoods
  once per edited edge: inserting ``(u, v)`` gives the new edge support
  ``|N(u) ∩ N(v)|`` and adds one to ``(u, w)`` / ``(v, w)`` for every
  common neighbour ``w``; deletion is the exact mirror.

Both structures are maintained *exactly* (no approximation, no deferred
repair), which is what lets the epoch layer publish snapshots that are
bit-identical to a from-scratch freeze — the CI parity gate for this
subsystem.  Trussness itself is re-peeled at publish time, seeded with the
maintained supports (see :func:`repro.graph.csr_truss.csr_truss_numbers`),
so the triangle-counting pass — the dominant cost — is never repeated.

All functions mutate ``graph``, ``core`` (node → core number) and
``support`` (canonical edge → triangle count) in place; the epoch manager
calls them on private copies and publishes only on success.

Each mutation optionally records the nodes whose incident structure it
touched into a caller-supplied ``touched`` set — the locality hint the
index repair (:func:`repro.graph.index_delta.repair_index`) seeds its
changed-node set with.  The hint is conservative (a superset is always
safe); the repair's own exact diff extends it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from ..graph.graph import Edge, Graph, Node

__all__ = ["apply_op", "canonical_edge", "insert_edge", "delete_edge", "remove_node", "add_node"]


def canonical_edge(u: Node, v: Node) -> Edge:
    """The library-wide canonical orientation: lexicographic on ``repr``."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


# ----------------------------------------------------------------------------
# core-number maintenance (traversal / subcore algorithm)
# ----------------------------------------------------------------------------


def _core_insert(graph: Graph, core: dict[Node, int], u: Node, v: Node) -> None:
    """Settle core numbers after ``(u, v)`` was inserted into ``graph``.

    Only vertices in the ``K == r`` subcore reachable from the endpoint(s)
    at level ``r = min(K(u), K(v))`` can change, each by exactly +1.  Every
    subcore member starts with its *core degree* — neighbours that could
    accompany it into the ``(r + 1)``-core — and members whose degree
    cannot support ``r + 1`` are evicted in cascade; the survivors are
    promoted.
    """
    r = min(core[u], core[v])
    roots = [x for x in (u, v) if core[x] == r]
    subcore = set(roots)
    stack = list(roots)
    while stack:
        x = stack.pop()
        for y in graph.adjacency(x):
            if y not in subcore and core[y] == r:
                subcore.add(y)
                stack.append(y)
    # every K == r neighbour of a subcore member is itself in the subcore,
    # so "K > r, or in the subcore" collapses to "K >= r"
    cd = {x: sum(1 for y in graph.adjacency(x) if core[y] >= r) for x in subcore}
    queue = deque(x for x in subcore if cd[x] <= r)
    settled = set(queue)
    evicted: set[Node] = set()
    while queue:
        x = queue.popleft()
        evicted.add(x)
        for y in graph.adjacency(x):
            if y in subcore and y not in settled:
                cd[y] -= 1
                if cd[y] <= r:
                    settled.add(y)
                    queue.append(y)
    for x in subcore:
        if x not in evicted:
            core[x] = r + 1


def _core_delete(graph: Graph, core: dict[Node, int], u: Node, v: Node) -> None:
    """Settle core numbers after ``(u, v)`` was removed from ``graph``.

    The mirror image of :func:`_core_insert`: only ``K == r`` vertices
    reachable (in the post-removal graph) from the endpoint(s) at level
    ``r`` can drop, each by exactly one; a vertex drops when fewer than
    ``r`` of its neighbours remain at level >= ``r``, and each drop may
    cascade to its neighbours.
    """
    r = min(core[u], core[v])
    roots = [x for x in (u, v) if core[x] == r]
    candidates = set(roots)
    stack = list(roots)
    while stack:
        x = stack.pop()
        for y in graph.adjacency(x):
            if y not in candidates and core[y] == r:
                candidates.add(y)
                stack.append(y)
    ed = {x: sum(1 for y in graph.adjacency(x) if core[y] >= r) for x in candidates}
    queue = deque(x for x in candidates if ed[x] < r)
    dropped = set(queue)
    while queue:
        x = queue.popleft()
        core[x] = r - 1
        for y in graph.adjacency(x):
            if y in candidates and y not in dropped:
                ed[y] -= 1
                if ed[y] < r:
                    dropped.add(y)
                    queue.append(y)


# ----------------------------------------------------------------------------
# the four mutations
# ----------------------------------------------------------------------------


def insert_edge(
    graph: Graph,
    core: dict[Node, int],
    support: dict[Edge, int],
    u: Node,
    v: Node,
    weight: float = 1.0,
    *,
    touched: Optional[set[Node]] = None,
) -> None:
    """Insert ``(u, v)`` and repair ``core`` and ``support`` exactly.

    Endpoints are auto-created (entering at core number 0), matching the
    mutable graph's own ``add_edge`` semantics; re-adding an existing edge
    only overwrites its weight — supports and core numbers are weight-free,
    so no structural repair runs.
    """
    if graph.has_edge(u, v):
        graph.add_edge(u, v, weight)  # weight-only: no structural change
        return
    if touched is not None:
        touched.update((u, v))
    common: list[Node] = []
    if graph.has_node(u) and graph.has_node(v):
        u_adjacency = graph.adjacency(u)
        v_adjacency = graph.adjacency(v)
        if len(u_adjacency) > len(v_adjacency):
            u_adjacency, v_adjacency = v_adjacency, u_adjacency
        common = [w for w in u_adjacency if w in v_adjacency]
    graph.add_edge(u, v, weight)
    core.setdefault(u, 0)
    core.setdefault(v, 0)
    support[canonical_edge(u, v)] = len(common)
    for w in common:
        support[canonical_edge(u, w)] += 1
        support[canonical_edge(v, w)] += 1
    _core_insert(graph, core, u, v)


def delete_edge(
    graph: Graph,
    core: dict[Node, int],
    support: dict[Edge, int],
    u: Node,
    v: Node,
    *,
    touched: Optional[set[Node]] = None,
) -> None:
    """Remove ``(u, v)`` and repair ``core`` and ``support`` exactly."""
    if not graph.has_edge(u, v):
        graph.remove_edge(u, v)  # raises the canonical GraphError
    if touched is not None:
        touched.update((u, v))
    u_adjacency = graph.adjacency(u)
    v_adjacency = graph.adjacency(v)
    if len(u_adjacency) > len(v_adjacency):
        u_adjacency, v_adjacency = v_adjacency, u_adjacency
    # the (u, v) edge itself never appears in the intersection, so the
    # common-neighbour set is the same before and after the removal
    common = [w for w in u_adjacency if w in v_adjacency]
    graph.remove_edge(u, v)
    del support[canonical_edge(u, v)]
    for w in common:
        support[canonical_edge(u, w)] -= 1
        support[canonical_edge(v, w)] -= 1
    _core_delete(graph, core, u, v)


def add_node(
    graph: Graph,
    core: dict[Node, int],
    node: Node,
    *,
    touched: Optional[set[Node]] = None,
) -> None:
    """Add an isolated node (no-op if present); isolated nodes have K = 0."""
    if touched is not None and not graph.has_node(node):
        touched.add(node)
    graph.add_node(node)
    core.setdefault(node, 0)


def remove_node(
    graph: Graph,
    core: dict[Node, int],
    support: dict[Edge, int],
    node: Node,
    *,
    touched: Optional[set[Node]] = None,
) -> None:
    """Remove a node as a sequence of exact single-edge deletions."""
    if not graph.has_node(node):
        graph.remove_node(node)  # raises the canonical GraphError
    if touched is not None:
        touched.add(node)
    for neighbor in list(graph.neighbors(node)):
        delete_edge(graph, core, support, node, neighbor, touched=touched)
    graph.remove_node(node)
    del core[node]


def apply_op(
    graph: Graph,
    core: dict[Node, int],
    support: dict[Edge, int],
    op: tuple[Any, ...],
    *,
    touched: Optional[set[Node]] = None,
) -> None:
    """Apply one recorded :class:`~repro.dynamic.delta.DeltaBatch` op."""
    kind = op[0]
    if kind == "add_edge":
        insert_edge(graph, core, support, op[1], op[2], op[3], touched=touched)
    elif kind == "remove_edge":
        delete_edge(graph, core, support, op[1], op[2], touched=touched)
    elif kind == "add_node":
        add_node(graph, core, op[1], touched=touched)
    elif kind == "remove_node":
        remove_node(graph, core, support, op[1], touched=touched)
    else:  # unreachable through DeltaBatch; guards hand-built tuples
        raise ValueError(f"unknown delta operation {kind!r}")
