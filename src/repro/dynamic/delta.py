"""The mutation log: an ordered, picklable, replayable batch of graph edits.

A :class:`DeltaBatch` records ``add_edge`` / ``remove_edge`` / ``add_node``
/ ``remove_node`` operations in the order they were issued.  It is the unit
of epochal publication: the :class:`~repro.dynamic.epoch.EpochManager`
applies one whole batch and publishes one new snapshot, so readers only
ever observe batch boundaries, never half-applied edits.

Batches exist in three equivalent encodings:

* **recorded** — the in-memory op tuples built by the recorder methods;
* **wire** — the JSON-safe list-of-lists carried by the serving tier's
  ``mutate`` operation (``[["add_edge", 0, 34], ["remove_node", 7]]``);
* **tokens** — the CLI's compact ``add-edge:0:34`` form.

Ops are plain tuples, so a batch pickles across process boundaries and
replays deterministically: ``batch.apply(graph)`` performs exactly the
recorded edits, in order, with the mutable graph's own validation (unknown
edges, self-loops, bad weights all raise the usual ``GraphError``).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from ..graph.graph import Graph, Node

__all__ = ["OP_KINDS", "DeltaBatch", "parse_mutation_token"]

OP_KINDS = ("add_edge", "remove_edge", "add_node", "remove_node")

# ops per kind on the wire, *excluding* the kind tag itself
_ARITY = {
    "add_edge": (2, 3),  # weight is optional
    "remove_edge": (2, 2),
    "add_node": (1, 1),
    "remove_node": (1, 1),
}


def _coerce_node(value: Any) -> Node:
    """Node identity, with the query protocol's int-when-possible rule.

    The wire carries JSON, where a client may send ``"5"`` for node ``5``;
    coercing here keeps mutation node identity consistent with query node
    identity (``parse_request`` applies the same rule).
    """
    if isinstance(value, bool):
        raise ValueError(f"node ids must be ints or strings, got {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            return value
    raise ValueError(f"node ids must be ints or strings, got {value!r}")


def _coerce_weight(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"edge weights must be numbers, got {value!r}")
    return float(value)


def parse_mutation_token(token: str) -> list:
    """Parse one CLI mutation token into a wire op.

    Tokens are ``add-edge:U:V[:WEIGHT]``, ``remove-edge:U:V``,
    ``add-node:N`` and ``remove-node:N`` (node ids therefore cannot contain
    ``:``).  Raises :class:`ValueError` with a flag-shaped message.
    """
    parts = str(token).split(":")
    kind = parts[0].replace("-", "_")
    if kind not in OP_KINDS:
        choices = ", ".join(name.replace("_", "-") for name in OP_KINDS)
        raise ValueError(f"unknown mutation {parts[0]!r} in {token!r}; choose from {choices}")
    low, high = _ARITY[kind]
    arguments = parts[1:]
    if not low <= len(arguments) <= high:
        raise ValueError(
            f"mutation {token!r} needs {low}"
            + (f"-{high}" if high != low else "")
            + f" ':'-separated arguments, got {len(arguments)}"
        )
    if kind == "add_edge" and len(arguments) == 3:
        try:
            weight: list = [float(arguments[2])]
        except ValueError:
            raise ValueError(f"invalid weight {arguments[2]!r} in {token!r}") from None
        return [kind, arguments[0], arguments[1], *weight]
    return [kind, *arguments]


class DeltaBatch:
    """An ordered log of graph mutations.

    Build one with the recorder methods and hand it to an
    :class:`~repro.dynamic.epoch.EpochManager`::

        batch = DeltaBatch()
        batch.add_edge(0, 34)
        batch.remove_node(7)
        manager.apply(batch)
    """

    __slots__ = ("_ops",)

    def __init__(self) -> None:
        self._ops: list[tuple] = []

    # ------------------------------------------------------------------
    # the recorder API
    # ------------------------------------------------------------------
    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> "DeltaBatch":
        """Record an edge insertion (or a weight overwrite, if it exists)."""
        self._ops.append(("add_edge", u, v, _coerce_weight(weight)))
        return self

    def remove_edge(self, u: Node, v: Node) -> "DeltaBatch":
        """Record an edge removal."""
        self._ops.append(("remove_edge", u, v))
        return self

    def add_node(self, node: Node) -> "DeltaBatch":
        """Record a node insertion (a no-op at replay if it exists)."""
        self._ops.append(("add_node", node))
        return self

    def remove_node(self, node: Node) -> "DeltaBatch":
        """Record a node removal (incident edges go with it)."""
        self._ops.append(("remove_node", node))
        return self

    # ------------------------------------------------------------------
    # encodings
    # ------------------------------------------------------------------
    @classmethod
    def from_wire(cls, ops: Any) -> "DeltaBatch":
        """Build a batch from the ``mutate`` operation's JSON payload.

        Raises :class:`ValueError` (request-shaped: the serving tier maps
        it to ``bad_request``) on malformed entries; *semantic* failures
        (removing an absent edge, say) surface at replay as ``GraphError``.
        """
        if not isinstance(ops, list) or not ops:
            raise ValueError("'ops' must be a non-empty list of operations")
        batch = cls()
        for position, entry in enumerate(ops):
            if not isinstance(entry, list) or not entry:
                raise ValueError(f"ops[{position}] must be a non-empty list, got {entry!r}")
            kind = entry[0]
            if kind not in OP_KINDS:
                raise ValueError(
                    f"ops[{position}]: unknown operation {kind!r}; "
                    f"choose from {', '.join(OP_KINDS)}"
                )
            low, high = _ARITY[kind]
            arguments = entry[1:]
            if not low <= len(arguments) <= high:
                raise ValueError(
                    f"ops[{position}]: {kind} takes {low}"
                    + (f"-{high}" if high != low else "")
                    + f" arguments, got {len(arguments)}"
                )
            try:
                if kind == "add_edge":
                    weight = _coerce_weight(arguments[2]) if len(arguments) == 3 else 1.0
                    batch._ops.append(
                        ("add_edge", _coerce_node(arguments[0]), _coerce_node(arguments[1]), weight)
                    )
                elif kind == "remove_edge":
                    batch._ops.append(
                        ("remove_edge", _coerce_node(arguments[0]), _coerce_node(arguments[1]))
                    )
                else:
                    batch._ops.append((kind, _coerce_node(arguments[0])))
            except ValueError as exc:
                raise ValueError(f"ops[{position}]: {exc}") from None
        return batch

    @classmethod
    def from_tokens(cls, tokens: Iterable[str]) -> "DeltaBatch":
        """Build a batch from CLI tokens like ``add-edge:0:34``."""
        return cls.from_wire([parse_mutation_token(token) for token in tokens])

    def to_wire(self) -> list[list]:
        """The JSON-safe encoding the ``mutate`` operation carries."""
        return [list(op) for op in self._ops]

    # ------------------------------------------------------------------
    # replay + introspection
    # ------------------------------------------------------------------
    def apply(self, graph: Graph) -> Graph:
        """Replay every recorded op, in order, onto ``graph``; returns it."""
        for op in self._ops:
            kind = op[0]
            if kind == "add_edge":
                graph.add_edge(op[1], op[2], op[3])
            elif kind == "remove_edge":
                graph.remove_edge(op[1], op[2])
            elif kind == "add_node":
                graph.add_node(op[1])
            else:
                graph.remove_node(op[1])
        return graph

    @property
    def ops(self) -> tuple[tuple, ...]:
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeltaBatch):
            return NotImplemented
        return self._ops == other._ops

    def __repr__(self) -> str:
        return f"DeltaBatch({len(self._ops)} ops)"
