"""Dynamic graphs: delta logs, incremental maintenance, epochal snapshots.

The rest of the library treats a graph as frozen exactly once; this package
is where evolution lives.  Mutations are accumulated in an ordered,
replayable :class:`DeltaBatch`; an :class:`EpochManager` applies a batch to
its working graph, maintains the core-number and triangle-support state
incrementally (or re-freezes from scratch past a size threshold), and
republishes a new :class:`~repro.graph.csr.FrozenGraph` under a
monotonically increasing epoch.  Every published snapshot is bit-identical
to freezing the mutated graph from scratch — the serving tier swaps it in
atomically between micro-batches and tags every response with the epoch it
was computed against.
"""

from .delta import DeltaBatch, parse_mutation_token
from .epoch import EpochManager, PreparedEpoch
from .incremental import apply_op, canonical_edge

__all__ = [
    "DeltaBatch",
    "EpochManager",
    "PreparedEpoch",
    "apply_op",
    "canonical_edge",
    "parse_mutation_token",
]
