"""Epochal snapshot publication: apply a delta, publish a new frozen graph.

:class:`EpochManager` owns the evolving state of one dataset: the current
mutable graph, its exact core-number and triangle-support state, the
current :class:`~repro.graph.csr.FrozenGraph` and the **epoch** — a
monotonically increasing integer that names each published snapshot.  The
serving tier keys result caches by epoch and stamps every response with
it, so "which graph answered this query" is always explicit on the wire.

Publication is two-phase so callers can interpose work between computing a
snapshot and exposing it (the serving layer reloads the community index
and builds a fresh replica set in between):

* :meth:`prepare` does *all* the work on private copies — replays the
  batch, repairs the decomposition state (incrementally up to
  ``threshold`` ops, by full recomputation past it), freezes the result
  and primes the snapshot's memo cache — and returns a
  :class:`PreparedEpoch`.  A failing op (``GraphError``) leaves the
  committed state untouched.
* :meth:`commit` swaps the prepared state in and advances the epoch.

The primed memo entries are exactly the values a from-scratch freeze would
derive lazily (same list orders, same canonical dict keys), which is the
bit-identical parity contract the tests and the ``dynamic-smoke`` CI job
enforce.  The truss decomposition is re-peeled at publish time, *seeded*
with the maintained supports, so the dominant triangle-counting pass never
reruns on the incremental path.
"""

from __future__ import annotations

from time import perf_counter
from time import time as wall_time
from typing import Any, Optional

from ..graph.csr import FrozenGraph, csr_core_numbers, freeze
from ..graph.csr_truss import csr_edge_index, csr_edge_support, csr_truss_numbers
from ..graph.graph import Edge, Graph, GraphError, Node
from ..graph.index import CommunityIndex, _assemble_index
from ..graph.index_delta import repair_index
from ..graph.trussness import _edge_value_dict
from .delta import DeltaBatch
from .incremental import apply_op

__all__ = ["EpochManager", "PreparedEpoch"]


class PreparedEpoch:
    """Everything :meth:`EpochManager.commit` needs, computed off to the side.

    When the manager has a bound community index, ``index`` carries its
    maintained successor (a fresh :class:`CommunityIndex` bit-identical to
    a from-scratch build on the new snapshot), ``index_mode`` says how it
    was produced (``"repaired"`` incrementally or ``"rebuilt"`` from the
    already-maintained decompositions) and ``index_seconds`` how long that
    took — the number the dynamic bench records as repair-vs-rebuild.
    """

    __slots__ = (
        "epoch",
        "mode",
        "delta_size",
        "frozen",
        "graph",
        "core",
        "support",
        "index",
        "index_mode",
        "index_seconds",
    )

    def __init__(
        self,
        *,
        epoch: int,
        mode: str,
        delta_size: int,
        frozen: FrozenGraph,
        graph: Graph,
        core: dict[Node, int],
        support: dict[Edge, int],
        index: Optional[CommunityIndex] = None,
        index_mode: Optional[str] = None,
        index_seconds: float = 0.0,
    ) -> None:
        self.epoch = epoch
        self.mode = mode
        self.delta_size = delta_size
        self.frozen = frozen
        self.graph = graph
        self.core = core
        self.support = support
        self.index = index
        self.index_mode = index_mode
        self.index_seconds = index_seconds

    def __repr__(self) -> str:
        return f"PreparedEpoch(epoch={self.epoch}, mode={self.mode!r}, ops={self.delta_size})"


class EpochManager:
    """Evolve one dataset through monotonically numbered snapshots.

    ``graph`` is the epoch-0 state; it is never mutated (every batch works
    on a copy), so handing in a cached dataset graph is safe.  ``frozen``
    lets a caller that already froze epoch 0 avoid a second freeze.
    ``threshold`` is the incremental/refreeze crossover: batches with more
    ops than this replay onto the copy and recompute the decompositions
    from scratch — past a point, one bulk recomputation beats per-edge
    repair.  ``threshold=0`` always refreezes.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        frozen: Optional[FrozenGraph] = None,
        threshold: int = 64,
        epoch: int = 0,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        self.threshold = threshold
        self.epoch = epoch
        # optional observability hook (a repro.obs.trace.Tracer): when set,
        # traced mutations get epoch.prepare / index.repair spans
        self.tracer = None
        self.frozen = frozen if frozen is not None else freeze(graph)
        self._graph = graph
        self._core: Optional[dict[Node, int]] = None
        self._support: Optional[dict[Edge, int]] = None
        self.index: Optional[CommunityIndex] = None
        # counters (JSON-safe via describe())
        self.batches = 0
        self.incremental_batches = 0
        self.refrozen_batches = 0
        self.ops_applied = 0
        self.index_repairs = 0
        self.index_rebuilds = 0

    def bind_index(self, index: Optional[CommunityIndex]) -> None:
        """Adopt the dataset's community index; ``prepare`` maintains it.

        Every subsequent :meth:`prepare` produces the index of the *new*
        snapshot alongside it — repaired in place for incremental batches,
        rebuilt from the already-maintained decompositions otherwise — so a
        serving tier in ``--index require`` mode never refuses a mutation.
        ``None`` detaches.  Binding runs the usual digest check against the
        committed snapshot.
        """
        if index is not None:
            index.bind(self.frozen, epoch=self.epoch)
        self.index = index

    # ------------------------------------------------------------------
    # decomposition state
    # ------------------------------------------------------------------
    def _state(self) -> tuple[dict[Node, int], dict[Edge, int]]:
        """The committed core/support dicts, derived lazily from the snapshot."""
        if self._core is None or self._support is None:
            csr = self.frozen.csr
            cache = self.frozen.shared_cache()
            core_list = cache.memo(("csr-core-numbers",), lambda: csr_core_numbers(csr))
            index = cache.memo(("csr-edge-index",), lambda: csr_edge_index(csr))
            self._core = dict(zip(csr.node_list, core_list))
            self._support = _edge_value_dict(
                self.frozen, index, csr_edge_support(csr, index)
            )
        return self._core, self._support

    # ------------------------------------------------------------------
    # two-phase publication
    # ------------------------------------------------------------------
    def prepare(self, batch: DeltaBatch, trace=None) -> PreparedEpoch:
        """Compute the next epoch's snapshot without exposing it yet.

        Raises ``GraphError`` on a semantically invalid op (the committed
        state is untouched — everything runs on copies) and ``ValueError``
        on an empty batch.  ``trace`` is an optional observability context
        (see :mod:`repro.obs.trace`); combined with an attached
        ``tracer`` it spans the whole prepare and the index maintenance
        section inside it.
        """
        tracer = self.tracer if trace is not None else None
        prepare_started = wall_time() if tracer is not None else 0.0
        ops = list(batch)
        if not ops:
            raise ValueError("cannot publish an epoch from an empty delta batch")
        working = self._graph.copy()
        incremental = len(ops) <= self.threshold
        touched: set[Node] = set()
        if incremental:
            committed_core, committed_support = self._state()
            core = dict(committed_core)
            support = dict(committed_support)
            for op in ops:
                apply_op(working, core, support, op, touched=touched)
        else:
            batch.apply(working)
            core = {}
            support = {}
        frozen = freeze(working)
        csr = frozen.csr
        index = csr_edge_index(csr)
        if incremental:
            node_list = csr.node_list
            core_list = [core[node] for node in node_list]
            reprs = [repr(node) for node in node_list]
            eu, ev = index.eu, index.ev
            support_list = []
            for e in range(index.num_edges):
                i, j = eu[e], ev[e]
                key = (
                    (node_list[i], node_list[j])
                    if reprs[i] <= reprs[j]
                    else (node_list[j], node_list[i])
                )
                support_list.append(support[key])
            truss_list = csr_truss_numbers(csr, index, support=support_list)
        else:
            core_list = csr_core_numbers(csr)
            support_list = csr_edge_support(csr, index)
            truss_list = csr_truss_numbers(csr, index)
            core = dict(zip(csr.node_list, core_list))
            support = _edge_value_dict(frozen, index, support_list)
        # prime the new snapshot's memo cache with the maintained values —
        # the exact base keys the lazy paths would fill; every derived
        # format (core dicts, truss dicts, k-core structures) computes
        # through these, so serving the new epoch never re-derives what the
        # incremental repair already knows
        cache = frozen.shared_cache()
        cache[("csr-core-numbers",)] = list(core_list)
        cache[("csr-edge-index",)] = index
        cache[("edge-support",)] = _edge_value_dict(frozen, index, support_list)
        cache[("csr-edge-truss",)] = list(truss_list)
        # maintain the bound community index: incremental batches repair it
        # in place (bit-identical to a from-scratch build, enforced by the
        # parity tests); anything else rebuilds from the decompositions just
        # computed — either way the index is never stale and never rebuilt
        # on the serving path
        index_new: Optional[CommunityIndex] = None
        index_mode: Optional[str] = None
        index_seconds = 0.0
        if self.index is not None:
            index_wall_started = wall_time() if tracer is not None else 0.0
            index_started = perf_counter()
            if incremental and self.index.format_version >= 2:
                try:
                    index_new = repair_index(
                        self.index, frozen, core_list, index, truss_list, touched=touched
                    )
                    index_mode = "repaired"
                except GraphError:
                    index_new = None
            if index_new is None:
                index_new = _assemble_index(
                    frozen, core_list, index, truss_list, dataset=self.index.dataset
                )
                index_mode = "rebuilt"
            index_seconds = perf_counter() - index_started
            if tracer is not None:
                tracer.emit(
                    trace,
                    "index.repair",
                    index_wall_started,
                    index_wall_started + index_seconds,
                    mode=index_mode,
                )
        if tracer is not None:
            tracer.emit(
                trace,
                "epoch.prepare",
                prepare_started,
                wall_time(),
                epoch=self.epoch + 1,
                mode="incremental" if incremental else "refreeze",
                ops=len(ops),
            )
        return PreparedEpoch(
            epoch=self.epoch + 1,
            mode="incremental" if incremental else "refreeze",
            delta_size=len(ops),
            frozen=frozen,
            graph=working,
            core=core,
            support=support,
            index=index_new,
            index_mode=index_mode,
            index_seconds=index_seconds,
        )

    def commit(self, prepared: PreparedEpoch) -> PreparedEpoch:
        """Expose a prepared epoch; rejects anything but the direct successor."""
        if prepared.epoch != self.epoch + 1:
            raise ValueError(
                f"cannot commit epoch {prepared.epoch}: current epoch is "
                f"{self.epoch} (prepare again from the committed state)"
            )
        self._graph = prepared.graph
        self._core = prepared.core
        self._support = prepared.support
        self.frozen = prepared.frozen
        self.epoch = prepared.epoch
        self.batches += 1
        self.ops_applied += prepared.delta_size
        if prepared.mode == "incremental":
            self.incremental_batches += 1
        else:
            self.refrozen_batches += 1
        if prepared.index is not None:
            self.index = prepared.index
            if prepared.index_mode == "repaired":
                self.index_repairs += 1
            else:
                self.index_rebuilds += 1
        return prepared

    def apply(self, batch: DeltaBatch) -> PreparedEpoch:
        """``prepare`` + ``commit`` in one step (the non-serving path)."""
        return self.commit(self.prepare(batch))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def graph_copy(self) -> Graph:
        """A private copy of the committed mutable graph (test/bench aid)."""
        return self._graph.copy()

    def core_numbers(self) -> dict[Node, int]:
        """The committed core numbers (a copy)."""
        return dict(self._state()[0])

    def edge_supports(self) -> dict[Edge, int]:
        """The committed triangle supports, canonically keyed (a copy)."""
        return dict(self._state()[1])

    def describe(self) -> dict[str, Any]:
        """JSON-safe counters for the serving tier's ``epoch`` stats block."""
        return {
            "current": self.epoch,
            "threshold": self.threshold,
            "batches": self.batches,
            "incremental_batches": self.incremental_batches,
            "refrozen_batches": self.refrozen_batches,
            "ops_applied": self.ops_applied,
            "index_bound": self.index is not None,
            "index_repairs": self.index_repairs,
            "index_rebuilds": self.index_rebuilds,
        }
