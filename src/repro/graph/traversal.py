"""Graph traversal primitives: BFS, multi-source BFS, Dijkstra, diameter.

The peeling algorithms in the paper depend on shortest-path distances from
the query nodes (Sections 5.2.2 and 5.5), which in the unweighted case are
breadth-first distances.  Weighted graphs fall back to Dijkstra.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Iterable
from typing import Optional

from .graph import Graph, GraphError, Node

__all__ = [
    "bfs_distances",
    "bfs_order",
    "multi_source_bfs",
    "dijkstra",
    "multi_source_dijkstra",
    "shortest_path",
    "eccentricity",
    "diameter",
    "distance_layers",
]


def bfs_distances(graph: Graph, source: Node, limit: Optional[int] = None) -> dict[Node, int]:
    """Return hop distances from ``source`` to every reachable node.

    Parameters
    ----------
    graph:
        The graph to traverse.
    source:
        Starting node.
    limit:
        If given, stop expanding beyond this distance.
    """
    if not graph.has_node(source):
        raise GraphError(f"source node {source!r} is not in the graph")
    distances: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        dist = distances[node]
        if limit is not None and dist >= limit:
            continue
        for neighbor in graph.adjacency(node):
            if neighbor not in distances:
                distances[neighbor] = dist + 1
                queue.append(neighbor)
    return distances


def bfs_order(graph: Graph, source: Node) -> list[Node]:
    """Return nodes reachable from ``source`` in BFS visitation order."""
    return list(bfs_distances(graph, source))


def multi_source_bfs(graph: Graph, sources: Iterable[Node]) -> dict[Node, int]:
    """Return the minimum hop distance from any node in ``sources``.

    This is the ``dist(v) = min_q dist(q, v)`` of Section 5.6 used by FPA to
    handle multiple query nodes.
    """
    source_list = list(sources)
    if not source_list:
        raise GraphError("multi_source_bfs needs at least one source")
    distances: dict[Node, int] = {}
    queue: deque[Node] = deque()
    for source in source_list:
        if not graph.has_node(source):
            raise GraphError(f"source node {source!r} is not in the graph")
        if source not in distances:
            distances[source] = 0
            queue.append(source)
    while queue:
        node = queue.popleft()
        dist = distances[node]
        for neighbor in graph.adjacency(node):
            if neighbor not in distances:
                distances[neighbor] = dist + 1
                queue.append(neighbor)
    return distances


def dijkstra(graph: Graph, source: Node) -> dict[Node, float]:
    """Return weighted shortest-path distances from ``source``."""
    return multi_source_dijkstra(graph, [source])


def multi_source_dijkstra(graph: Graph, sources: Iterable[Node]) -> dict[Node, float]:
    """Return the minimum weighted distance from any node in ``sources``."""
    source_list = list(sources)
    if not source_list:
        raise GraphError("multi_source_dijkstra needs at least one source")
    distances: dict[Node, float] = {}
    heap: list[tuple[float, int, Node]] = []
    counter = 0
    for source in source_list:
        if not graph.has_node(source):
            raise GraphError(f"source node {source!r} is not in the graph")
        heapq.heappush(heap, (0.0, counter, source))
        counter += 1
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in distances:
            continue
        distances[node] = dist
        for neighbor, weight in graph.adjacency(node).items():
            if neighbor not in distances:
                heapq.heappush(heap, (dist + weight, counter, neighbor))
                counter += 1
    return distances


def shortest_path(graph: Graph, source: Node, target: Node) -> Optional[list[Node]]:
    """Return one unweighted shortest path from ``source`` to ``target``.

    Returns ``None`` when ``target`` is unreachable.
    """
    if not graph.has_node(source):
        raise GraphError(f"source node {source!r} is not in the graph")
    if not graph.has_node(target):
        raise GraphError(f"target node {target!r} is not in the graph")
    if source == target:
        return [source]
    parents: dict[Node, Node] = {source: source}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.adjacency(node):
            if neighbor in parents:
                continue
            parents[neighbor] = node
            if neighbor == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(neighbor)
    return None


def eccentricity(graph: Graph, node: Node) -> int:
    """Return the eccentricity of ``node`` within its connected component."""
    distances = bfs_distances(graph, node)
    return max(distances.values()) if distances else 0


def diameter(graph: Graph, exact: bool = True, sample_size: int = 16, seed: int = 0) -> int:
    """Return the diameter of the graph (largest eccentricity).

    With ``exact=False`` a double-sweep / sampling lower bound is returned,
    which is what Figure 4 of the paper needs (community diameters of large
    networks).  The graph is assumed to be connected; for a disconnected
    graph the largest component-wise diameter is returned.
    """
    import random

    nodes = graph.nodes()
    if not nodes:
        return 0
    if exact:
        best = 0
        for node in nodes:
            best = max(best, eccentricity(graph, node))
        return best
    rng = random.Random(seed)
    sample = nodes if len(nodes) <= sample_size else rng.sample(nodes, sample_size)
    best = 0
    for node in sample:
        distances = bfs_distances(graph, node)
        if not distances:
            continue
        farthest = max(distances, key=distances.get)
        # double sweep: run a second BFS from the farthest node found
        second = bfs_distances(graph, farthest)
        best = max(best, max(second.values(), default=0))
    return best


def distance_layers(graph: Graph, sources: Iterable[Node]) -> dict[int, list[Node]]:
    """Group nodes by their minimum hop distance from ``sources``.

    Returns ``{distance: [nodes...]}``; this is the layer structure
    ``L_1, ..., L_g`` used by the layer-based pruning strategy (Section 5.7)
    and the farthest-node groups ``S_1, ..., S_D`` of Section 5.2.2.
    Unreachable nodes are not included.
    """
    distances = multi_source_bfs(graph, sources)
    layers: dict[int, list[Node]] = {}
    for node, dist in distances.items():
        layers.setdefault(dist, []).append(node)
    return layers
