"""Zero-copy shared-memory export of frozen CSR snapshots.

A :class:`~repro.graph.csr.FrozenGraph` already stores its hot state as
flat ``array`` primitives (``indptr`` / ``indices`` / ``weights``), so the
step from "each worker process pickles and rebuilds its own copy" to "one
host-side segment every worker maps read-only" is a layout move, not an
algorithm change.  This module owns that move:

* :func:`share_frozen` copies a snapshot's CSR arrays into **one** named
  ``multiprocessing.shared_memory`` segment and returns a
  :class:`SharedSnapshot` — the owner-side handle with the explicit
  ``close()`` / ``unlink()`` lifecycle and a registry
  (:func:`live_segment_names`) tests use to assert nothing leaked;
* :class:`SnapshotDescriptor` is the small picklable value the owner hands
  to workers (segment name + per-region typecodes/offsets/counts);
* :func:`attach_frozen` maps the segment in a worker and wraps it in an
  :class:`AttachedFrozenGraph` — a :class:`FrozenGraph` whose CSR arrays
  are **read-only memoryviews into the shared buffer** (zero copies) and
  whose dict-of-dicts adjacency is only materialised if some cold dict
  path explicitly asks for it.

Parity discipline: the attached CSR holds byte-for-byte the same arrays
as the owner's, so every kernel result (orders, tie-breaks, floats) is
identical whether a replica froze privately or attached.

Lifecycle rules:

* the **owner** (the serving host that called :func:`share_frozen`) is the
  only party allowed to ``unlink()``; it stays registered with the
  ``resource_tracker`` so a crashed owner still gets its segments reaped
  at tracker shutdown;
* **attachers** never unlink.  On Pythons without the ``track=False``
  attach parameter (< 3.13) the segment is explicitly unregistered from
  the attacher's resource tracker right after mapping, otherwise the
  tracker would tear the owner's segment down when the worker family
  exits (the classic bpo-38119 footgun);
* both ``close()`` and ``unlink()`` are idempotent, and unlinking a
  segment that is already gone is not an error — double teardown in
  crash-recovery paths must stay safe.
"""

from __future__ import annotations

import os
import pickle
import sys
import threading
from array import array
from collections.abc import Iterator, Mapping
from typing import Optional

from .csr import CSRGraph, FrozenGraph
from .graph import Edge, GraphError, Node

__all__ = [
    "SnapshotDescriptor",
    "SharedSnapshot",
    "AttachedFrozenGraph",
    "share_frozen",
    "attach_frozen",
    "share_regions",
    "attach_regions",
    "shared_memory_available",
    "live_segment_names",
    "SEGMENT_PREFIX",
]

#: every segment this module creates is named ``<prefix><pid>_<counter>`` —
#: a recognisable prefix is what lets the benchmarks (and CI) scan for
#: orphans after a server shuts down.
SEGMENT_PREFIX = "repro_snap_"

_ALIGN = 8  # keep every region 8-byte aligned regardless of platform itemsizes

_counter_lock = threading.Lock()
_counter = 0

#: owner-side registry: segment name → SharedSnapshot, for leak assertions.
_live: dict[str, "SharedSnapshot"] = {}
_live_lock = threading.Lock()


def shared_memory_available() -> bool:
    """Return ``True`` when named shared-memory segments work here."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    return True


def live_segment_names() -> tuple[str, ...]:
    """Names of segments created by this process and not yet unlinked."""
    with _live_lock:
        return tuple(sorted(_live))


def _next_segment_name(tag: str = "") -> str:
    global _counter
    with _counter_lock:
        _counter += 1
        return f"{SEGMENT_PREFIX}{tag}{os.getpid()}_{_counter}"


class SnapshotDescriptor:
    """The picklable recipe for re-attaching one shared snapshot.

    ``regions`` maps each CSR field to ``(typecode, offset, count)`` inside
    the single segment; the pickled tail at ``payload_offset`` carries the
    node list and scalar totals (node objects are arbitrary hashables, so
    they travel as a pickle, not as a flat region).
    """

    __slots__ = ("segment", "regions", "payload_offset", "payload_length")

    def __init__(
        self,
        segment: str,
        regions: dict[str, tuple[str, int, int]],
        payload_offset: int,
        payload_length: int,
    ) -> None:
        self.segment = segment
        self.regions = dict(regions)
        self.payload_offset = payload_offset
        self.payload_length = payload_length

    def __getstate__(self):
        return (self.segment, self.regions, self.payload_offset, self.payload_length)

    def __setstate__(self, state) -> None:
        self.segment, self.regions, self.payload_offset, self.payload_length = state

    def __repr__(self) -> str:
        return f"SnapshotDescriptor(segment={self.segment!r}, regions={sorted(self.regions)})"


class SharedSnapshot:
    """Owner-side handle of one exported snapshot.

    The owner keeps this for the lifetime of the serving shard and calls
    :meth:`unlink` (or uses the context manager) when the last attacher is
    gone.  ``close()`` only drops this process's mapping; ``unlink()``
    removes the name from the system so the memory is reclaimed once every
    mapping closes.
    """

    def __init__(self, shm, descriptor: SnapshotDescriptor) -> None:
        self._shm = shm
        self.descriptor = descriptor
        self._closed = False
        self._unlinked = False

    @property
    def name(self) -> str:
        return self.descriptor.segment

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:  # a view of the buffer is still alive somewhere
            self._closed = False
            raise

    def unlink(self) -> None:
        """Remove the segment name from the system (idempotent).

        Safe to call twice, and safe when the segment is already gone —
        teardown paths that race a crash handler must not explode.
        """
        if self._unlinked:
            return
        self._unlinked = True
        with _live_lock:
            _live.pop(self.name, None)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.unlink()

    def __repr__(self) -> str:
        state = "unlinked" if self._unlinked else ("closed" if self._closed else "live")
        return f"SharedSnapshot({self.name!r}, {state})"


def _region_bytes(values: array) -> bytes:
    return values.tobytes()


def _pad(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def share_regions(
    fields: Mapping[str, array], payload: bytes, *, tag: str = ""
) -> SharedSnapshot:
    """Pack named flat arrays plus a pickled tail into one shared segment.

    This is the layout primitive under both :func:`share_frozen` (CSR
    snapshots) and the community index tier: each ``fields`` entry becomes
    an 8-byte-aligned region recorded in the returned descriptor, and
    ``payload`` travels verbatim at the tail.  ``tag`` lands in the segment
    name right after :data:`SEGMENT_PREFIX`, so leak scans that glob the
    prefix cover every flavour of segment while tests can still tell them
    apart.
    """
    from multiprocessing import shared_memory

    regions: dict[str, tuple[str, int, int]] = {}
    offset = 0
    blobs: list[tuple[int, bytes]] = []
    for field, values in fields.items():
        blob = _region_bytes(values)
        regions[field] = (values.typecode, offset, len(values))
        blobs.append((offset, blob))
        offset = _pad(offset + len(blob))
    payload_offset = offset
    blobs.append((offset, payload))
    total = offset + len(payload)

    shm = None
    while shm is None:
        name = _next_segment_name(tag)
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=max(total, 1))
        except FileExistsError:  # stale name from a recycled pid; try the next
            continue
    for start, blob in blobs:
        shm.buf[start : start + len(blob)] = blob

    descriptor = SnapshotDescriptor(shm.name, regions, payload_offset, len(payload))
    snapshot = SharedSnapshot(shm, descriptor)
    with _live_lock:
        _live[shm.name] = snapshot
    return snapshot


def share_frozen(frozen: FrozenGraph) -> SharedSnapshot:
    """Export ``frozen``'s CSR arrays into one named shared segment.

    The frozen graph itself is untouched — the owner keeps serving from
    its private arrays; the returned handle's :attr:`descriptor` is what
    workers feed to :func:`attach_frozen`.
    """
    csr = frozen.csr
    fields: dict[str, array] = {
        "indptr": _as_array("l", csr.indptr),
        "indices": _as_array("l", csr.indices),
        "weights": _as_array("d", csr.weights),
    }
    payload = pickle.dumps(
        (csr.node_list, csr.num_edges, csr.total_weight),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return share_regions(fields, payload)


def _as_array(typecode: str, values) -> array:
    if isinstance(values, array) and values.typecode == typecode:
        return values
    return array(typecode, values)


#: serialises the register-suppression window in :func:`_open_segment`
_attach_lock = threading.Lock()


def _open_segment(name: str):
    """Attach to ``name`` without adopting cleanup responsibility."""
    from multiprocessing import shared_memory

    try:
        try:
            return shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no track parameter
            return _open_untracked(shared_memory, name)
    except FileNotFoundError:
        raise GraphError(
            f"shared snapshot segment {name!r} is gone "
            "(the owner unlinked it or crashed); refreeze or re-share"
        ) from None


def _open_untracked(shared_memory, name: str):
    """Attach without registering with the resource tracker (pre-3.13).

    ``SharedMemory.__init__`` registers plain attaches too (bpo-38119).
    Unregistering *after* the fact is wrong when attacher and owner share
    one tracker process (spawned workers inherit the parent's): the
    unregister message would erase the owner's crash-safety registration
    and make the owner's eventual ``unlink`` log a tracker KeyError.  So
    the registration is suppressed for the duration of the attach instead
    — attachers never own cleanup, the owner's entry stays intact.
    """
    if sys.platform == "win32":  # Windows has no resource tracker for shm
        return shared_memory.SharedMemory(name=name)
    from multiprocessing import resource_tracker

    with _attach_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def attach_regions(descriptor: SnapshotDescriptor):
    """Map a shared segment read-only and expose its regions as views.

    Returns ``(shm, views, payload)`` where ``views`` maps each region
    name to a read-only typed memoryview into the segment and ``payload``
    is a private copy of the pickled tail.  On any failure the mapping is
    released before the exception propagates; raises :class:`GraphError`
    when the segment no longer exists.
    """
    shm = _open_segment(descriptor.segment)
    views: dict[str, memoryview] = {}
    try:
        for field, (typecode, offset, count) in descriptor.regions.items():
            nbytes = count * array(typecode).itemsize
            views[field] = shm.buf[offset : offset + nbytes].cast(typecode).toreadonly()
        start = descriptor.payload_offset
        payload = bytes(shm.buf[start : start + descriptor.payload_length])
    except BaseException:
        for view in list(views.values()):
            view.release()
        shm.close()
        raise
    return shm, views, payload


def attach_frozen(descriptor: SnapshotDescriptor) -> "AttachedFrozenGraph":
    """Map a shared snapshot read-only and wrap it as a frozen graph.

    Raises :class:`GraphError` when the segment no longer exists (owner
    crashed or already unlinked) — callers treat that like any other
    failed snapshot load and fall back to a private freeze.
    """
    shm, views, payload = attach_regions(descriptor)
    try:
        node_list, num_edges, total_weight = pickle.loads(payload)
    except BaseException:
        for view in list(views.values()):
            view.release()
        shm.close()
        raise
    csr = CSRGraph(
        indptr=views["indptr"],
        indices=views["indices"],
        weights=views["weights"],
        node_list=node_list,
        num_edges=num_edges,
        total_weight=total_weight,
    )
    return AttachedFrozenGraph(shm, descriptor, csr, views)


class AttachedFrozenGraph(FrozenGraph):
    """A frozen graph whose CSR arrays live in someone else's segment.

    Behaves exactly like a privately frozen :class:`FrozenGraph` — same
    kernels, same orders, same results — but the three flat arrays are
    read-only views into the shared buffer, so N attached replicas hold
    one copy of the edge structure between them.  The dict-of-dicts
    adjacency the base :class:`~repro.graph.graph.Graph` stores is *not*
    built at attach time: the common read surface is overridden to route
    through the CSR, and only a cold dict-only code path (``thaw()``,
    ``subgraph()`` of a non-frozen consumer, ...) pays for materialising
    ``_adj`` lazily — in private process memory, never in the segment.

    Pickling an attached graph re-attaches by descriptor on the other
    side (zero-copy there too); it never serialises the arrays.
    """

    __slots__ = ("_shm", "_descriptor", "_views", "_adj_dict", "_detached")

    def __init__(self, shm, descriptor, csr: CSRGraph, views: dict) -> None:
        # deliberately skip Graph.__init__: _adj is a property here
        self._shm = shm
        self._descriptor = descriptor
        self._views = views
        self._adj_dict: Optional[dict] = None
        self._detached = False
        self._csr = csr
        self._cache = None
        self._num_edges = csr.num_edges
        self._total_weight = csr.total_weight

    # -- identity / lifecycle ---------------------------------------------
    @property
    def descriptor(self) -> SnapshotDescriptor:
        """The descriptor this graph attached with (picklable)."""
        return self._descriptor

    def detach(self) -> None:
        """Release the shared views and drop this process's mapping.

        After ``detach()`` the graph must not be used; worker processes
        call it on shutdown so the segment's refcount falls without the
        owner having to wait on process exit.  Idempotent.
        """
        if self._detached:
            return
        self._detached = True
        if self._csr is not None:
            # the numpy tier caches frombuffer views of indptr/indices on the
            # CSR; they alias the segment and would keep buffer exports alive
            # past close(), so drop them before releasing the memoryviews
            self._csr._np_cache = None
        for view in self._views.values():
            view.release()
        self._views = {}
        self._csr = None
        try:
            self._shm.close()
        except BufferError:
            # some caller still holds a neighbour slice; process exit will
            # drop the mapping — never fail a clean shutdown over it
            pass

    def __reduce__(self):
        return (attach_frozen, (self._descriptor,))

    def __del__(self):
        # release the buffer views *before* SharedMemory.__del__ runs, or
        # a garbage-collected attached graph spews BufferError noise
        try:
            self.detach()
        except Exception:  # noqa: BLE001 - never raise from a finalizer
            pass

    # -- the lazily materialised dict fallback ----------------------------
    @property
    def _adj(self) -> dict:
        adj = self._adj_dict
        if adj is None:
            csr = self._require_csr()
            indptr, indices, weights = csr.indptr, csr.indices, csr.weights
            node_list = csr.node_list
            adj = {}
            for i, node in enumerate(node_list):
                row: dict[Node, float] = {}
                for pos in range(indptr[i], indptr[i + 1]):
                    row[node_list[indices[pos]]] = weights[pos]
                adj[node] = row
            self._adj_dict = adj
        return adj

    def _require_csr(self) -> CSRGraph:
        if self._csr is None:
            raise GraphError("attached snapshot was detached; re-attach before use")
        return self._csr

    @property
    def csr(self) -> CSRGraph:
        return self._require_csr()

    # -- CSR-routed read surface (no dict materialisation) ----------------
    def has_node(self, node: Node) -> bool:
        return node in self._require_csr().index_of

    def __contains__(self, node: Node) -> bool:
        return node in self._require_csr().index_of

    def number_of_nodes(self) -> int:
        return len(self._require_csr().node_list)

    def __len__(self) -> int:
        return len(self._require_csr().node_list)

    def is_empty(self) -> bool:
        return not self._require_csr().node_list

    def nodes(self) -> list[Node]:
        return list(self._require_csr().node_list)

    def iter_nodes(self) -> Iterator[Node]:
        return iter(self._require_csr().node_list)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._require_csr().node_list)

    def degree(self, node: Node) -> int:
        csr = self._require_csr()
        index = self._index(csr, node)
        return csr.indptr[index + 1] - csr.indptr[index]

    def weighted_degree(self, node: Node) -> float:
        csr = self._require_csr()
        index = self._index(csr, node)
        weights = csr.weights
        return sum(weights[pos] for pos in range(csr.indptr[index], csr.indptr[index + 1]))

    def neighbors(self, node: Node) -> list[Node]:
        csr = self._require_csr()
        index = self._index(csr, node)
        node_list = csr.node_list
        return [node_list[j] for j in csr.neighbors(index)]

    def adjacency(self, node: Node) -> Mapping[Node, float]:
        adj = self._adj_dict
        if adj is not None:
            if node not in adj:
                raise GraphError(f"node {node!r} is not in the graph")
            return adj[node]
        csr = self._require_csr()
        index = self._index(csr, node)
        node_list = csr.node_list
        indices, weights = csr.indices, csr.weights
        return {
            node_list[indices[pos]]: weights[pos]
            for pos in range(csr.indptr[index], csr.indptr[index + 1])
        }

    def has_edge(self, u: Node, v: Node) -> bool:
        csr = self._require_csr()
        index_of = csr.index_of
        if u not in index_of or v not in index_of:
            return False
        return index_of[v] in set(csr.neighbors(index_of[u]))

    def edge_weight(self, u: Node, v: Node) -> float:
        csr = self._require_csr()
        index_of = csr.index_of
        if u in index_of and v in index_of:
            j = index_of[v]
            indices, weights = csr.indices, csr.weights
            for pos in range(csr.indptr[index_of[u]], csr.indptr[index_of[u] + 1]):
                if indices[pos] == j:
                    return weights[pos]
        raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph")

    def degree_map(self) -> dict[Node, int]:
        csr = self._require_csr()
        indptr = csr.indptr
        return {
            node: indptr[i + 1] - indptr[i] for i, node in enumerate(csr.node_list)
        }

    def edges(self) -> list[Edge]:
        return [(u, v) for u, v, _ in self.iter_edges()]

    def iter_edges(self) -> Iterator[tuple[Node, Node, float]]:
        # same "each edge once, first orientation wins" order the dict
        # backend produces: rows in node order, skipping already-seen rows
        csr = self._require_csr()
        node_list = csr.node_list
        indptr, indices, weights = csr.indptr, csr.indices, csr.weights
        seen = bytearray(len(node_list))
        for i, node in enumerate(node_list):
            for pos in range(indptr[i], indptr[i + 1]):
                j = indices[pos]
                if not seen[j]:
                    yield (node, node_list[j], weights[pos])
            seen[i] = 1

    @staticmethod
    def _index(csr: CSRGraph, node: Node) -> int:
        try:
            return csr.index_of[node]
        except KeyError:
            raise GraphError(f"node {node!r} is not in the graph") from None

    def __repr__(self) -> str:
        if self._detached:
            return "AttachedFrozenGraph(detached)"
        return (
            f"AttachedFrozenGraph(|V|={self.number_of_nodes()}, "
            f"|E|={self.number_of_edges()}, segment={self._descriptor.segment!r})"
        )
