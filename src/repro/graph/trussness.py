"""k-truss decomposition.

A ``k``-truss is a maximal subgraph in which every edge participates in at
least ``k - 2`` triangles *within the subgraph*.  The truss decomposition is
used by the ``kt``, ``hightruss`` and ``huang2015`` baselines and by the
paper's query-set generation, which samples query nodes from a
``(k + 1)``-truss so that queries land inside meaningful communities.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from .graph import Edge, Graph, GraphError, Node

__all__ = [
    "edge_support",
    "truss_numbers",
    "k_truss_subgraph",
    "max_truss_number",
    "node_truss_numbers",
]


def _canonical(u: Node, v: Node) -> Edge:
    """Return a canonical ordering of an undirected edge for dict keys."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


def edge_support(graph: Graph) -> dict[Edge, int]:
    """Return the number of triangles each edge participates in."""
    support: dict[Edge, int] = {}
    for u, v, _ in graph.iter_edges():
        u_neighbors = graph.adjacency(u)
        v_neighbors = graph.adjacency(v)
        if len(u_neighbors) > len(v_neighbors):
            u_neighbors, v_neighbors = v_neighbors, u_neighbors
        count = sum(1 for w in u_neighbors if w in v_neighbors)
        support[_canonical(u, v)] = count
    return support


def truss_numbers(graph: Graph) -> dict[Edge, int]:
    """Return the truss number of every edge.

    The truss number of an edge ``e`` is the largest ``k`` such that ``e``
    belongs to the ``k``-truss.  Peeling proceeds by repeatedly removing the
    edge with minimum support, in the style of the core decomposition.
    """
    import heapq

    working = graph.copy()
    support = edge_support(working)
    counter = 0
    heap: list[tuple[int, int, Edge]] = []
    for edge, sup in support.items():
        heap.append((sup, counter, edge))
        counter += 1
    heapq.heapify(heap)
    truss: dict[Edge, int] = {}
    removed: set[Edge] = set()
    k = 2
    while heap:
        sup, _, edge = heapq.heappop(heap)
        if edge in removed or support.get(edge) != sup:
            continue
        u, v = edge
        k = max(k, sup + 2)
        truss[edge] = k
        removed.add(edge)
        # decrement the support of edges that formed triangles with (u, v)
        u_neighbors = working.adjacency(u)
        v_neighbors = working.adjacency(v)
        if len(u_neighbors) > len(v_neighbors):
            u, v = v, u
            u_neighbors, v_neighbors = v_neighbors, u_neighbors
        common = [w for w in u_neighbors if w in v_neighbors]
        working.remove_edge(u, v)
        for w in common:
            for other in ((u, w), (v, w)):
                key = _canonical(*other)
                if key in removed or key not in support:
                    continue
                support[key] -= 1
                heapq.heappush(heap, (support[key], counter, key))
                counter += 1
    return truss


def k_truss_subgraph(graph: Graph, k: int, within: Optional[Iterable[Node]] = None) -> Graph:
    """Return the maximal subgraph where every edge lies in ≥ ``k - 2`` triangles.

    Nodes left isolated by the edge-peeling are dropped, matching the usual
    k-truss community semantics.
    """
    if k < 2:
        raise GraphError(f"k must be at least 2 for a k-truss, got {k}")
    working = graph.subgraph(within) if within is not None else graph.copy()
    threshold = k - 2
    changed = True
    while changed:
        support = edge_support(working)
        weak = [edge for edge, sup in support.items() if sup < threshold]
        changed = bool(weak)
        for u, v in weak:
            working.remove_edge(u, v)
    isolated = [node for node in working.iter_nodes() if working.degree(node) == 0]
    working.remove_nodes_from(isolated)
    return working


def max_truss_number(graph: Graph) -> int:
    """Return the largest ``k`` for which the ``k``-truss is non-empty."""
    truss = truss_numbers(graph)
    return max(truss.values()) if truss else 2


def node_truss_numbers(graph: Graph) -> dict[Node, int]:
    """Return the trussness of each node (max truss number of incident edges).

    Nodes with no incident edges get trussness 2 by convention (the trivial
    truss level).
    """
    truss = truss_numbers(graph)
    result: dict[Node, int] = {node: 2 for node in graph.iter_nodes()}
    for (u, v), value in truss.items():
        if value > result[u]:
            result[u] = value
        if value > result[v]:
            result[v] = value
    return result
