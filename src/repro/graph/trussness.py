"""k-truss decomposition.

A ``k``-truss is a maximal subgraph in which every edge participates in at
least ``k - 2`` triangles *within the subgraph*.  The truss decomposition is
used by the ``kt``, ``hightruss`` and ``huang2015`` baselines and by the
paper's query-set generation, which samples query nodes from a
``(k + 1)``-truss so that queries land inside meaningful communities.

Like the core decomposition, every public function dispatches on the graph
backend: mutable :class:`~repro.graph.graph.Graph` inputs run the dict
reference implementation below, while a frozen snapshot
(:class:`~repro.graph.csr.FrozenGraph`) routes to the array-backed kernels
of :mod:`repro.graph.csr_truss` and memoises the full decomposition on the
snapshot's shared cache — a batch of ``kt`` / ``hightruss`` / ``huang2015``
queries then pays for one peel per dataset instead of one per query.  Both
backends return identical results (same truss numbers, same canonical edge
keys, same subgraph node and adjacency orders).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from .csr import FrozenGraph
from .csr_truss import csr_edge_index, csr_edge_support, csr_truss_numbers
from .graph import Edge, Graph, GraphError, Node

__all__ = [
    "edge_support",
    "truss_numbers",
    "k_truss_subgraph",
    "max_truss_number",
    "node_truss_numbers",
]


def _canonical_edges(graph: Graph) -> list[tuple[Edge, Edge]]:
    """Return ``[(edge, canonical edge)]`` in ``iter_edges`` order.

    ``repr`` is called once per node instead of twice per edge touch — the
    canonical orientation (lexicographic on ``repr``) is unchanged.
    """
    reprs = {node: repr(node) for node in graph.iter_nodes()}
    return [
        ((u, v), (u, v) if reprs[u] <= reprs[v] else (v, u))
        for u, v, _ in graph.iter_edges()
    ]


def edge_support(graph: Graph) -> dict[Edge, int]:
    """Return the number of triangles each edge participates in."""
    if isinstance(graph, FrozenGraph):
        return _frozen_edge_support(graph)
    support: dict[Edge, int] = {}
    for (u, v), canonical in _canonical_edges(graph):
        u_neighbors = graph.adjacency(u)
        v_neighbors = graph.adjacency(v)
        if len(u_neighbors) > len(v_neighbors):
            u_neighbors, v_neighbors = v_neighbors, u_neighbors
        support[canonical] = sum(1 for w in u_neighbors if w in v_neighbors)
    return support


def truss_numbers(graph: Graph) -> dict[Edge, int]:
    """Return the truss number of every edge.

    The truss number of an edge ``e`` is the largest ``k`` such that ``e``
    belongs to the ``k``-truss.  Peeling proceeds by repeatedly removing the
    edge with minimum support, in the style of the core decomposition.
    """
    import heapq

    if isinstance(graph, FrozenGraph):
        return _frozen_truss_numbers(graph)

    working = graph.copy()
    support = edge_support(working)
    # canonical ids for both orientations, so the hot loop below does a
    # single dict lookup instead of two repr() calls per support update
    canonical_of: dict[Edge, Edge] = {}
    for u, v in support:
        canonical_of[(u, v)] = (u, v)
        canonical_of[(v, u)] = (u, v)
    counter = 0
    heap: list[tuple[int, int, Edge]] = []
    for edge, sup in support.items():
        heap.append((sup, counter, edge))
        counter += 1
    heapq.heapify(heap)
    truss: dict[Edge, int] = {}
    removed: set[Edge] = set()
    k = 2
    while heap:
        sup, _, edge = heapq.heappop(heap)
        if edge in removed or support.get(edge) != sup:
            continue
        u, v = edge
        k = max(k, sup + 2)
        truss[edge] = k
        removed.add(edge)
        # decrement the support of edges that formed triangles with (u, v)
        u_neighbors = working.adjacency(u)
        v_neighbors = working.adjacency(v)
        if len(u_neighbors) > len(v_neighbors):
            u, v = v, u
            u_neighbors, v_neighbors = v_neighbors, u_neighbors
        common = [w for w in u_neighbors if w in v_neighbors]
        working.remove_edge(u, v)
        for w in common:
            for other in ((u, w), (v, w)):
                key = canonical_of[other]
                if key in removed or key not in support:
                    continue
                support[key] -= 1
                heapq.heappush(heap, (support[key], counter, key))
                counter += 1
    return truss


def k_truss_subgraph(graph: Graph, k: int, within: Optional[Iterable[Node]] = None) -> Graph:
    """Return the maximal subgraph where every edge lies in ≥ ``k - 2`` triangles.

    Nodes left isolated by the edge-peeling are dropped, matching the usual
    k-truss community semantics.
    """
    if k < 2:
        raise GraphError(f"k must be at least 2 for a k-truss, got {k}")
    if isinstance(graph, FrozenGraph):
        if within is None:
            return _frozen_k_truss_subgraph(graph, k)
        return _frozen_k_truss_within(graph, k, within)
    working = graph.subgraph(within) if within is not None else graph.copy()
    threshold = k - 2
    changed = True
    while changed:
        support = edge_support(working)
        weak = [edge for edge, sup in support.items() if sup < threshold]
        changed = bool(weak)
        for u, v in weak:
            working.remove_edge(u, v)
    isolated = [node for node in working.iter_nodes() if working.degree(node) == 0]
    working.remove_nodes_from(isolated)
    return working


def max_truss_number(graph: Graph) -> int:
    """Return the largest ``k`` for which the ``k``-truss is non-empty."""
    truss = truss_numbers(graph)
    return max(truss.values()) if truss else 2


def node_truss_numbers(graph: Graph) -> dict[Node, int]:
    """Return the trussness of each node (max truss number of incident edges).

    Nodes with no incident edges get trussness 2 by convention (the trivial
    truss level).  Memoised on frozen snapshots.
    """
    if isinstance(graph, FrozenGraph):
        return graph.shared_cache().memo(
            ("node-truss-numbers",), lambda: _compute_node_truss_numbers(graph)
        )
    return _compute_node_truss_numbers(graph)


def _compute_node_truss_numbers(graph: Graph) -> dict[Node, int]:
    truss = truss_numbers(graph)
    result: dict[Node, int] = {node: 2 for node in graph.iter_nodes()}
    for (u, v), value in truss.items():
        if value > result[u]:
            result[u] = value
        if value > result[v]:
            result[v] = value
    return result


# ----------------------------------------------------------------------------
# CSR fast path (frozen snapshots)
# ----------------------------------------------------------------------------


def _frozen_edge_index(graph: FrozenGraph):
    """Return (and memoise) the snapshot's CSR edge numbering."""
    return graph.shared_cache().memo(("csr-edge-index",), lambda: csr_edge_index(graph.csr))


def _frozen_edge_truss(graph: FrozenGraph) -> list[int]:
    """Return (and memoise) the full per-edge-id truss decomposition."""
    return graph.shared_cache().memo(
        ("csr-edge-truss",), lambda: csr_truss_numbers(graph.csr, _frozen_edge_index(graph))
    )


def _frozen_edge_support(graph: FrozenGraph) -> dict[Edge, int]:
    def _compute():
        index = _frozen_edge_index(graph)
        support = csr_edge_support(graph.csr, index)
        return _edge_value_dict(graph, index, support)

    return graph.shared_cache().memo(("edge-support",), _compute)


def _frozen_truss_numbers(graph: FrozenGraph) -> dict[Edge, int]:
    return graph.shared_cache().memo(
        ("truss-numbers",),
        lambda: _edge_value_dict(graph, _frozen_edge_index(graph), _frozen_edge_truss(graph)),
    )


def _edge_value_dict(graph: FrozenGraph, index, values: list[int]) -> dict[Edge, int]:
    """Map per-edge-id ``values`` to a canonically keyed edge dict."""
    node_list = graph.csr.node_list
    reprs = [repr(node) for node in node_list]
    result: dict[Edge, int] = {}
    for e in range(index.num_edges):
        i = index.eu[e]
        j = index.ev[e]
        u = node_list[i]
        v = node_list[j]
        result[(u, v) if reprs[i] <= reprs[j] else (v, u)] = values[e]
    return result


def _frozen_k_truss_subgraph(graph: FrozenGraph, k: int) -> Graph:
    """The ``k``-truss of the whole snapshot: an O(|E|) filter of the memo.

    The result is built with the exact node and adjacency orders the dict
    path produces (original insertion order minus peeled edges / isolated
    nodes), so downstream tie-breaks cannot diverge between backends.
    """
    csr = graph.csr
    index = _frozen_edge_index(graph)
    truss = _frozen_edge_truss(graph)
    indptr = csr.indptr
    indices = csr.indices
    weights = csr.weights
    edge_id = index.edge_id
    node_list = csr.node_list
    result = Graph()
    adjacency = result._adj
    num_edges = 0
    total_weight = 0.0
    for i, node in enumerate(node_list):
        row: dict[Node, float] = {}
        for pos in range(indptr[i], indptr[i + 1]):
            if truss[edge_id[pos]] >= k:
                j = indices[pos]
                row[node_list[j]] = weights[pos]
                if i < j:
                    num_edges += 1
                    total_weight += weights[pos]
        if row:
            adjacency[node] = row
    result._num_edges = num_edges
    result._total_weight = total_weight
    return result


def _frozen_k_truss_within(graph: FrozenGraph, k: int, within: Iterable[Node]) -> Graph:
    """The ``k``-truss of an induced subview, peeled on the CSR arrays.

    The mutable induced subgraph is built exactly like the dict path builds
    it (``graph.subgraph(within)``) and then filtered by the kept-edge set,
    which keeps node/adjacency orders identical between backends; only the
    peel itself — the dict path's repeated full support recomputation — runs
    on the CSR kernels.
    """
    working = graph.subgraph(within)
    csr = graph.csr
    index = _frozen_edge_index(graph)
    alive = bytearray(csr.number_of_nodes())
    index_of = csr.index_of
    for node in working.iter_nodes():
        alive[index_of[node]] = 1
    truss = csr_truss_numbers(csr, index, alive)
    edge_of = index.edge_of
    for u, v in working.edges():
        if truss[edge_of[index_of[u]][index_of[v]]] < k:
            working.remove_edge(u, v)
    isolated = [node for node in working.iter_nodes() if working.degree(node) == 0]
    working.remove_nodes_from(isolated)
    return working
