"""Edge-list and community-file input/output.

The SNAP datasets used in the paper ship as whitespace-separated edge lists
plus one-community-per-line ground-truth files; these helpers read and write
that format so that users with the real data can drop it in directly.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path
from typing import Optional, Union

from .graph import Graph, GraphError, Node

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_communities",
    "write_communities",
    "parse_edge_list",
]

PathLike = Union[str, Path]


def parse_edge_list(lines: Iterable[str], weighted: bool = False, comments: str = "#") -> Graph:
    """Build a graph from an iterable of edge-list lines.

    Each non-comment line must contain two node tokens (and a weight when
    ``weighted`` is true); node tokens are parsed as integers when possible
    and kept as strings otherwise.
    """
    graph = Graph()
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(comments):
            continue
        parts = line.split()
        if weighted:
            if len(parts) < 3:
                raise GraphError(f"line {line_number}: expected 'u v w', got {line!r}")
            u, v = _parse_node(parts[0]), _parse_node(parts[1])
            graph.add_edge(u, v, float(parts[2]))
        else:
            if len(parts) < 2:
                raise GraphError(f"line {line_number}: expected 'u v', got {line!r}")
            u, v = _parse_node(parts[0]), _parse_node(parts[1])
            if u == v:
                continue  # drop self-loops silently; SNAP files contain a few
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
    return graph


def read_edge_list(path: PathLike, weighted: bool = False, comments: str = "#") -> Graph:
    """Read a whitespace-separated edge list from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_edge_list(handle, weighted=weighted, comments=comments)


def write_edge_list(graph: Graph, path: PathLike, weighted: bool = False) -> None:
    """Write the graph as a whitespace-separated edge list."""
    with open(path, "w", encoding="utf-8") as handle:
        for u, v, weight in graph.iter_edges():
            if weighted:
                handle.write(f"{u} {v} {weight}\n")
            else:
                handle.write(f"{u} {v}\n")


def read_communities(path: PathLike, comments: str = "#") -> list[set[Node]]:
    """Read ground-truth communities, one whitespace-separated community per line."""
    communities: list[set[Node]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith(comments):
                continue
            members = {_parse_node(token) for token in line.split()}
            if members:
                communities.append(members)
    return communities


def write_communities(communities: Iterable[Iterable[Node]], path: PathLike) -> None:
    """Write communities, one whitespace-separated community per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for community in communities:
            handle.write(" ".join(str(node) for node in community) + "\n")


def _parse_node(token: str) -> Node:
    """Parse a node token as int when possible, string otherwise."""
    try:
        return int(token)
    except ValueError:
        return token


def to_networkx(graph: Graph, weighted: bool = True):
    """Convert to a :class:`networkx.Graph` (optional dependency)."""
    import networkx as nx

    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.iter_nodes())
    for u, v, weight in graph.iter_edges():
        if weighted:
            nx_graph.add_edge(u, v, weight=weight)
        else:
            nx_graph.add_edge(u, v)
    return nx_graph


def from_networkx(nx_graph, weight_attribute: Optional[str] = "weight") -> Graph:
    """Convert a :class:`networkx.Graph` into a :class:`repro.graph.Graph`."""
    graph = Graph()
    graph.add_nodes_from(nx_graph.nodes())
    for u, v, data in nx_graph.edges(data=True):
        if u == v:
            continue
        weight = float(data.get(weight_attribute, 1.0)) if weight_attribute else 1.0
        graph.add_edge(u, v, weight)
    return graph
