"""Incremental repair of a :class:`~repro.graph.index.CommunityIndex`.

PR 8 made graphs evolve by publishing epochal snapshots whose core/truss
decompositions are patched in place instead of recomputed; this module does
the same for the community index that sits on top of them.  A small delta
perturbs only the hierarchy levels along the affected nodes' component
paths — laminarity means every untouched level keeps exactly its old
components — so :func:`repair_index` diffs the old index against the new
snapshot's patched numbers, recomputes only the *dirty* levels, remaps the
clean ones, and reassembles through the very same linearisation code
:func:`~repro.graph.index.build_index` uses.

The contract (enforced by randomized edit-script parity tests) is strict
**bit-identity**: the repaired index's regions and digest equal a
from-scratch ``build_index`` on the post-mutation graph.  That falls out of
three facts:

* the CSR node order is insertion order, so surviving nodes keep their
  relative indices across a mutation (the old→new remap is monotone) and
  every content-determined ordering rule — component enumeration by min
  member index, kecc class numbering — is preserved by remapping;
* dirty levels run the *same* component sweeps the build runs;
* the permutation/window tail (:func:`_finish_index`) is shared code.

Dirtiness is computed conservatively from exact diffs: per-node core
changes and per-edge existence/truss changes (the old per-edge truss rides
in the v2 ``edge_*`` regions precisely so this diff never needs the old
graph).  Truss changes cascade globally, so the edge diff is a full O(E)
scan — still far below the decomposition cost the repair avoids.
"""

from __future__ import annotations

import time
from array import array
from typing import Optional

from .csr import FrozenGraph, csr_connected_components
from .graph import GraphError, Node
from .index import (
    _FIELD_TYPECODE,
    CommunityIndex,
    _finish_index,
    _inc_max_truss,
    _truss_level_components,
)

__all__ = ["repair_index"]


def _remap_components(old: CommunityIndex, family: str, level: int, remap):
    """An old level's components as new-index lists, first-seen order.

    Only called for *clean* levels, whose membership is unchanged — every
    member must therefore survive the delta.  Components come back ordered
    by min member index, which the monotone remap makes identical to the
    enumeration order a fresh component sweep would produce.
    """
    fields = old._fields
    ptr = fields[family + "_ptr"]
    starts = fields[family + "_start"]
    ends = fields[family + "_end"]
    order = fields[family + "_order"]
    components = []
    for w in range(ptr[level], ptr[level + 1]):
        members = []
        for p in range(starts[w], ends[w]):
            new_i = remap[order[p]]
            if new_i is None:  # pragma: no cover - dirtiness diff invariant
                raise GraphError(
                    f"index repair: clean {family} level {level} lost a member; "
                    f"the dirtiness diff is unsound"
                )
            members.append(new_i)
        components.append(members)
    components.sort(key=min)
    return components


def repair_index(
    old: CommunityIndex,
    frozen: FrozenGraph,
    core,
    edge_index,
    truss,
    *,
    touched: Optional[set[Node]] = None,
) -> CommunityIndex:
    """Repair ``old`` into the index of ``frozen`` after a small delta.

    ``core`` / ``edge_index`` / ``truss`` are the post-mutation kernel
    values the epoch manager already maintains incrementally (the repair
    never reruns a decomposition).  ``touched`` optionally seeds the
    changed-node set with the nodes the delta ops named — purely a
    conservative hint; the exact diff below extends it.

    Returns a **new** local index (the old one, which workers may still
    have mapped, is never mutated) bit-identical to ``build_index`` on
    ``frozen``.  Raises :class:`GraphError` when ``old`` cannot be
    repaired (v1 file: no edge hierarchy to diff against) — callers fall
    back to a full rebuild.
    """
    started = time.perf_counter()
    if old.format_version < 2:
        raise GraphError(
            "cannot repair a format v1 index (no edge hierarchy to diff); "
            "rebuild it with 'repro index build'"
        )
    from ..baselines.kecc import KECC_APPROXIMATE_ABOVE as cap

    if old.meta.get("kecc_cap") != cap:
        raise GraphError(
            "cannot repair an index built with a different kecc cap; rebuild it"
        )

    csr = frozen.csr
    node_list = csr.node_list
    index_of = csr.index_of
    n = len(node_list)
    edge_id = edge_index.edge_id
    eu, ev = edge_index.eu, edge_index.ev

    old_fields = old._fields
    old_nodes = old.node_list
    n_old = len(old_nodes)
    old_core = old_fields["node_core"]
    old_labels = old_fields["kecc_label"]

    # old -> new node index (None = removed); monotone because the CSR node
    # order is insertion order and mutations only append or drop nodes
    remap = [index_of.get(node) for node in old_nodes]
    survived = bytearray(n)
    for new_i in remap:
        if new_i is not None:
            survived[new_i] = 1

    node_core_new = array(_FIELD_TYPECODE, core)
    inc_max_new = _inc_max_truss(csr, edge_id, truss)
    node_truss_new = array(_FIELD_TYPECODE, (b if b >= 2 else 2 for b in inc_max_new))

    # ------------------------------------------------------------------
    # exact diff -> dirty-level cutoffs + changed-node set
    # ------------------------------------------------------------------
    # changed: new indices incident to any edge existence change (feeds the
    # kecc candidate-reuse check; truss-value changes don't affect kecc)
    changed: set[int] = set()
    if touched:
        for node in touched:
            new_i = index_of.get(node)
            if new_i is not None:
                changed.add(new_i)

    old_edge_truss = {
        frozenset((old_nodes[old_fields["edge_eu"][e]], old_nodes[old_fields["edge_ev"][e]])): (
            old_fields["edge_truss"][e]
        )
        for e in range(old.meta["edges"])
    }

    core_dirty = 0  # core levels 1..core_dirty recompute (level 0 always does)
    truss_dirty = 1  # truss levels 2..truss_dirty recompute

    new_pairs = set()
    for e in range(edge_index.num_edges):
        pair = frozenset((node_list[eu[e]], node_list[ev[e]]))
        new_pairs.add(pair)
        t_new = truss[e]
        t_old = old_edge_truss.get(pair)
        if t_old is None:  # added edge
            if core_dirty < n:
                core_dirty = max(core_dirty, min(core[eu[e]], core[ev[e]]))
            truss_dirty = max(truss_dirty, t_new)
            changed.add(eu[e])
            changed.add(ev[e])
        elif t_old != t_new:  # truss cascade reached this surviving edge
            truss_dirty = max(truss_dirty, t_old, t_new)

    old_index_of = old.index_of
    for pair, t_old in old_edge_truss.items():
        if pair not in new_pairs:  # removed edge
            u, v = tuple(pair)
            core_dirty = max(
                core_dirty, min(old_core[old_index_of[u]], old_core[old_index_of[v]])
            )
            truss_dirty = max(truss_dirty, t_old)
            for node in (u, v):
                new_i = index_of.get(node)
                if new_i is not None:
                    changed.add(new_i)

    for old_i in range(n_old):
        new_i = remap[old_i]
        if new_i is None:  # removed node
            core_dirty = max(core_dirty, old_core[old_i])
        elif old_core[old_i] != node_core_new[new_i]:
            core_dirty = max(core_dirty, old_core[old_i], node_core_new[new_i])
    for new_i in range(n):
        if not survived[new_i]:  # added node
            core_dirty = max(core_dirty, node_core_new[new_i])
            changed.add(new_i)

    # ------------------------------------------------------------------
    # levels: recompute dirty, remap clean
    # ------------------------------------------------------------------
    level0 = csr_connected_components(csr)
    core_kmax = max(core, default=0)
    core_levels = [level0]
    for k in range(1, core_kmax + 1):
        if k <= core_dirty:
            alive = bytearray(1 if c >= k else 0 for c in core)
            core_levels.append(csr_connected_components(csr, alive=alive))
        else:
            core_levels.append(_remap_components(old, "core", k, remap))

    truss_kmax = max(inc_max_new, default=1)
    truss_levels = [level0]
    for k in range(2, truss_kmax + 1):
        if k <= truss_dirty:
            truss_levels.append(
                _truss_level_components(csr, edge_id, truss, inc_max_new, k)
            )
        else:
            truss_levels.append(_remap_components(old, "truss", k - 1, remap))

    kecc_label, kecc_counts = _repair_kecc_labels(
        old, frozen, core_levels, core_dirty, remap, changed, cap
    )

    index = _finish_index(
        frozen,
        core_levels,
        truss_levels,
        fields={
            "node_core": node_core_new,
            "node_truss": node_truss_new,
            "edge_eu": array(_FIELD_TYPECODE, eu),
            "edge_ev": array(_FIELD_TYPECODE, ev),
            "edge_truss": array(_FIELD_TYPECODE, truss),
            "kecc_label": kecc_label,
        },
        kecc_counts=kecc_counts,
        dataset=old.dataset,
        started=started,
    )
    return index


def _repair_kecc_labels(
    old: CommunityIndex,
    frozen: FrozenGraph,
    core_levels,
    core_dirty: int,
    remap,
    changed: set[int],
    cap: int,
) -> tuple[array, list[int]]:
    """Per-level kecc labels of the repaired index (bit-identical to build).

    Clean core levels scatter the old labels through the monotone remap —
    the canonical numbering (candidates by first-seen order, classes by min
    member index) is order-preserved, so the labels carry over verbatim.
    Dirty levels re-derive candidate by candidate, reusing a candidate's
    old partition when its membership is unchanged and no existence-changed
    edge touches it (edge-connectivity ignores truss values, so the induced
    subgraph — and hence the partition — is provably identical); everything
    else reruns the same memoised partition the build uses.
    """
    from ..baselines.kecc import _kecc_partition

    csr = frozen.csr
    node_list = csr.node_list
    index_of = csr.index_of
    n = len(node_list)
    n_old = len(old.node_list)
    old_labels = old._fields["kecc_label"]
    old_counts = old.meta["kecc_counts"]
    old_core_kmax = old.meta["core_kmax"]
    old_core_pos = old._fields["core_pos"]

    # new index -> old index, for reading a dirty candidate's old labels
    back = [None] * n
    for old_i, new_i in enumerate(remap):
        if new_i is not None:
            back[new_i] = old_i

    labels = array(_FIELD_TYPECODE, bytes(0))
    counts: list[int] = []
    core_kmax = len(core_levels) - 1
    for k in range(1, core_kmax + 1):
        level_labels = array(_FIELD_TYPECODE, [-1] * n)
        if k > core_dirty:
            old_base = (k - 1) * n_old
            for old_i in range(n_old):
                new_i = remap[old_i]
                if new_i is not None:
                    label = old_labels[old_base + old_i]
                    if label != -1:
                        level_labels[new_i] = label
            counts.append(old_counts[k - 1])
        else:
            next_label = 0
            for component in core_levels[k]:
                if len(component) > cap:
                    for i in component:
                        level_labels[i] = -2
                    continue
                classes = None
                if k <= old_core_kmax:
                    classes = _reuse_candidate(
                        old, component, k, back, changed, old_core_pos, n_old
                    )
                if classes is None:
                    candidate = {node_list[i] for i in component}
                    classes = [
                        sorted(index_of[node] for node in cls)
                        for cls in _kecc_partition(frozen, candidate, k)
                    ]
                classes.sort(key=lambda members: members[0])
                for members in classes:
                    for i in members:
                        level_labels[i] = next_label
                    next_label += 1
            counts.append(next_label)
        labels.extend(level_labels)
    return labels, counts


def _reuse_candidate(
    old: CommunityIndex,
    component,
    k: int,
    back,
    changed: set[int],
    old_core_pos,
    n_old: int,
):
    """The candidate's old kecc classes (new-index lists), or ``None``.

    Reuse demands proof the induced subgraph is unchanged: every member
    survived, none touches an existence-changed edge, and the members fill
    exactly one old level-``k`` core window (same size ⇒ same set).
    """
    window = None
    for i in component:
        old_i = back[i]
        if old_i is None or i in changed:
            return None
        w = old._window("core", k, old_core_pos[old_i])
        if w is None or (window is not None and w != window):
            return None
        window = w
    if window is None or window[1] - window[0] != len(component):
        return None
    old_labels = old._fields["kecc_label"]
    old_base = (k - 1) * n_old
    groups: dict[int, list[int]] = {}
    for i in component:
        label = old_labels[old_base + back[i]]
        if label == -2:  # old candidate was over the cap; cannot happen when
            return None  # membership is identical, but recompute defensively
        if label >= 0:
            groups.setdefault(label, []).append(i)
    return [sorted(members) for members in groups.values()]
