"""k-edge-connected components (the ``kecc`` baseline substrate).

The paper compares against the k-edge-connected component community search
of Chang et al. (SIGMOD 2015).  We implement a correct (if not index-based)
decomposition: repeatedly split a candidate subgraph along a global minimum
cut until every remaining piece is k-edge-connected, then report the maximal
pieces.  Minimum cuts are found with the Stoer–Wagner algorithm implemented
on top of the :class:`~repro.graph.graph.Graph` substrate.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from .components import connected_components
from .graph import Graph, GraphError, Node

__all__ = ["stoer_wagner_min_cut", "k_edge_connected_components", "k_edge_connected_subgraphs"]


def stoer_wagner_min_cut(graph: Graph) -> tuple[float, set[Node]]:
    """Return ``(cut_weight, one_side)`` of a global minimum edge cut.

    The graph must be connected and have at least two nodes.  Runs the
    classic Stoer–Wagner minimum-cut phases with a simple priority queue.
    """
    import heapq

    if graph.number_of_nodes() < 2:
        raise GraphError("minimum cut requires at least two nodes")

    # Work on a contracted copy: supernode -> set of original nodes
    working = graph.copy()
    members: dict[Node, set[Node]] = {node: {node} for node in working.iter_nodes()}
    best_weight = float("inf")
    best_side: set[Node] = set()

    while working.number_of_nodes() > 1:
        # --- one minimum cut phase -------------------------------------
        nodes = working.nodes()
        start = nodes[0]
        added: set[Node] = {start}
        weights: dict[Node, float] = {}
        counter = 0
        heap: list[tuple[float, int, Node]] = []
        for neighbor, weight in working.adjacency(start).items():
            weights[neighbor] = weight
            heapq.heappush(heap, (-weight, counter, neighbor))
            counter += 1
        order = [start]
        while len(added) < len(nodes):
            while True:
                neg_weight, _, node = heapq.heappop(heap)
                if node not in added and weights.get(node) == -neg_weight:
                    break
            added.add(node)
            order.append(node)
            for neighbor, weight in working.adjacency(node).items():
                if neighbor in added:
                    continue
                weights[neighbor] = weights.get(neighbor, 0.0) + weight
                heapq.heappush(heap, (-weights[neighbor], counter, neighbor))
                counter += 1
        last = order[-1]
        cut_weight = sum(working.adjacency(last).values())
        if cut_weight < best_weight:
            best_weight = cut_weight
            best_side = set(members[last])
        # contract the last two nodes added
        second_last = order[-2]
        members[second_last] |= members.pop(last)
        for neighbor, weight in list(working.adjacency(last).items()):
            if neighbor == second_last:
                continue
            if working.has_edge(second_last, neighbor):
                new_weight = working.edge_weight(second_last, neighbor) + weight
                working.add_edge(second_last, neighbor, new_weight)
            else:
                working.add_edge(second_last, neighbor, weight)
        working.remove_node(last)
    return best_weight, best_side


def _is_k_edge_connected(graph: Graph, k: int) -> bool:
    """Return ``True`` when ``graph`` is k-edge-connected (unweighted cuts)."""
    n = graph.number_of_nodes()
    if n == 1:
        return True
    if n == 0:
        return False
    if min(graph.degree(node) for node in graph.iter_nodes()) < k:
        return False
    # Unweighted connectivity: use edge multiplicity of 1 regardless of weight
    unweighted = Graph()
    unweighted.add_nodes_from(graph.iter_nodes())
    for u, v, _ in graph.iter_edges():
        unweighted.add_edge(u, v, 1.0)
    cut_weight, _ = stoer_wagner_min_cut(unweighted)
    return cut_weight >= k


def k_edge_connected_components(graph: Graph, k: int) -> list[set[Node]]:
    """Return the maximal k-edge-connected components of ``graph``.

    Every returned node set induces a subgraph whose global minimum cut is at
    least ``k``.  Components of a single node are omitted for ``k >= 1``
    because a singleton cannot host any community.
    """
    if k < 1:
        raise GraphError(f"k must be positive, got {k}")
    results: list[set[Node]] = []
    stack: list[set[Node]] = [component for component in connected_components(graph)]
    while stack:
        nodes = stack.pop()
        if len(nodes) < 2:
            continue
        sub = graph.subgraph(nodes)
        # quick reject: prune nodes of degree < k first (cheap and sound)
        changed = True
        while changed:
            low = [node for node in sub.iter_nodes() if sub.degree(node) < k]
            changed = bool(low)
            sub.remove_nodes_from(low)
        if sub.number_of_nodes() < 2:
            continue
        pieces = connected_components(sub)
        if len(pieces) > 1:
            stack.extend(pieces)
            continue
        if _is_k_edge_connected(sub, k):
            results.append(set(sub.iter_nodes()))
            continue
        _, side = stoer_wagner_min_cut(sub)
        other = set(sub.iter_nodes()) - side
        stack.append(side)
        stack.append(other)
    return results


def k_edge_connected_subgraphs(
    graph: Graph, k: int, containing: Optional[Iterable[Node]] = None
) -> list[Graph]:
    """Return induced subgraphs of the k-edge-connected components.

    With ``containing`` given, only components containing *all* those nodes
    are returned (the community-search use case).
    """
    required = set(containing) if containing is not None else set()
    subgraphs = []
    for component in k_edge_connected_components(graph, k):
        if required and not required <= component:
            continue
        subgraphs.append(graph.subgraph(component))
    return subgraphs
