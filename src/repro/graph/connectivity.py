"""k-edge-connected components (the ``kecc`` baseline substrate).

The paper compares against the k-edge-connected component community search
of Chang et al. (SIGMOD 2015).  We implement a correct (if not index-based)
decomposition: repeatedly split a candidate subgraph along a global minimum
cut until every remaining piece is k-edge-connected, then report the maximal
pieces.  Minimum cuts are found with the Stoer–Wagner algorithm implemented
on top of the :class:`~repro.graph.graph.Graph` substrate.

Both functions dispatch on the graph backend: a frozen snapshot
(:class:`~repro.graph.csr.FrozenGraph`) routes to the int-indexed kernels of
:mod:`repro.graph.csr_cut`, which recurse on induced CSR subviews instead of
``graph.copy()``.  Induced subgraphs are always ordered by the host graph's
insertion order (not set-iteration order), so the two backends make the same
cut and split choices and return identical components in identical order.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from .components import connected_components
from .csr import FrozenGraph
from .csr_cut import csr_k_edge_connected_components, csr_stoer_wagner
from .graph import Graph, GraphError, Node

__all__ = ["stoer_wagner_min_cut", "k_edge_connected_components", "k_edge_connected_subgraphs"]


def stoer_wagner_min_cut(graph: Graph) -> tuple[float, set[Node]]:
    """Return ``(cut_weight, one_side)`` of a global minimum edge cut.

    The graph must be connected and have at least two nodes.  Runs the
    classic Stoer–Wagner minimum-cut phases with a simple priority queue;
    frozen snapshots run the int-indexed mirror in
    :mod:`repro.graph.csr_cut` with bit-identical results.
    """
    import heapq

    if isinstance(graph, FrozenGraph):
        csr = graph.csr
        weight, side = csr_stoer_wagner(csr)
        return weight, set(csr.nodes_for(side))

    if graph.number_of_nodes() < 2:
        raise GraphError("minimum cut requires at least two nodes")

    # Work on a contracted copy: supernode -> set of original nodes
    working = graph.copy()
    members: dict[Node, set[Node]] = {node: {node} for node in working.iter_nodes()}
    best_weight = float("inf")
    best_side: set[Node] = set()

    while working.number_of_nodes() > 1:
        # --- one minimum cut phase -------------------------------------
        nodes = working.nodes()
        start = nodes[0]
        added: set[Node] = {start}
        weights: dict[Node, float] = {}
        counter = 0
        heap: list[tuple[float, int, Node]] = []
        for neighbor, weight in working.adjacency(start).items():
            weights[neighbor] = weight
            heapq.heappush(heap, (-weight, counter, neighbor))
            counter += 1
        order = [start]
        while len(added) < len(nodes):
            while True:
                neg_weight, _, node = heapq.heappop(heap)
                if node not in added and weights.get(node) == -neg_weight:
                    break
            added.add(node)
            order.append(node)
            for neighbor, weight in working.adjacency(node).items():
                if neighbor in added:
                    continue
                weights[neighbor] = weights.get(neighbor, 0.0) + weight
                heapq.heappush(heap, (-weights[neighbor], counter, neighbor))
                counter += 1
        last = order[-1]
        cut_weight = sum(working.adjacency(last).values())
        if cut_weight < best_weight:
            best_weight = cut_weight
            best_side = set(members[last])
        # contract the last two nodes added
        second_last = order[-2]
        members[second_last] |= members.pop(last)
        for neighbor, weight in list(working.adjacency(last).items()):
            if neighbor == second_last:
                continue
            if working.has_edge(second_last, neighbor):
                new_weight = working.edge_weight(second_last, neighbor) + weight
                working.add_edge(second_last, neighbor, new_weight)
            else:
                working.add_edge(second_last, neighbor, weight)
        working.remove_node(last)
    return best_weight, best_side


def _induced(graph: Graph, nodes: Iterable[Node], position: dict[Node, int]) -> Graph:
    """Return ``G[nodes]`` with nodes ordered by the host's insertion order.

    Unlike :meth:`Graph.subgraph` (which iterates a Python set, so node and
    adjacency orders depend on hashes), the result's node order is the host
    order filtered to ``nodes`` and each adjacency keeps the host's
    (filtered) neighbour order — deterministic, and identical to the order
    the CSR kernels see.
    """
    keep = set(nodes)
    missing = keep - position.keys()
    if missing:
        raise GraphError(f"nodes not in graph: {sorted(map(repr, missing))[:5]}")
    order = sorted(keep, key=position.__getitem__)
    sub = Graph()
    adjacency = sub._adj
    num_edges = 0
    total_weight = 0.0
    for node in order:
        adjacency[node] = {
            neighbor: weight
            for neighbor, weight in graph.adjacency(node).items()
            if neighbor in keep
        }
    for node in order:
        rank = position[node]
        for neighbor, weight in adjacency[node].items():
            if rank < position[neighbor]:
                num_edges += 1
                total_weight += weight
    sub._num_edges = num_edges
    sub._total_weight = total_weight
    return sub


def _unweighted_view(graph: Graph) -> Graph:
    """Return a copy of ``graph`` with every edge weight set to ``1.0``."""
    clone = Graph()
    clone._adj = {
        node: dict.fromkeys(graph.adjacency(node), 1.0) for node in graph.iter_nodes()
    }
    clone._num_edges = graph.number_of_edges()
    clone._total_weight = float(graph.number_of_edges())
    return clone


def k_edge_connected_components(
    graph: Graph, k: int, within: Optional[Iterable[Node]] = None
) -> list[set[Node]]:
    """Return the maximal k-edge-connected components of ``graph``.

    Every returned node set induces a subgraph whose global minimum cut is at
    least ``k``.  Components of a single node are omitted for ``k >= 1``
    because a singleton cannot host any community.  ``within`` restricts the
    decomposition to an induced subview (equivalent to decomposing
    ``graph.subgraph(within)`` but without materialising a copy on the CSR
    backend).
    """
    if k < 1:
        raise GraphError(f"k must be positive, got {k}")

    if isinstance(graph, FrozenGraph):
        csr = graph.csr
        subset = csr.indices_for(within) if within is not None else None
        pieces = csr_k_edge_connected_components(csr, k, subset)
        return [set(csr.nodes_for(piece)) for piece in pieces]

    position = {node: index for index, node in enumerate(graph.iter_nodes())}
    host = graph if within is None else _induced(graph, within, position)
    # on a uniformly 1.0-weighted host (the common case) every induced piece
    # *is* its own unweighted view, so the k-connectivity test needs no copy
    # at all and its cut doubles as the splitting cut; otherwise one unit-
    # weight view per surviving piece (never one per recursive call)
    uniform = all(weight == 1.0 for _, _, weight in host.iter_edges())

    results: list[set[Node]] = []
    stack: list[set[Node]] = [component for component in connected_components(host)]
    while stack:
        nodes = stack.pop()
        if len(nodes) < 2:
            continue
        sub = _induced(host, nodes, position)
        # quick reject: prune nodes of degree < k first (cheap and sound)
        changed = True
        while changed:
            low = [node for node in sub.iter_nodes() if sub.degree(node) < k]
            changed = bool(low)
            sub.remove_nodes_from(low)
        if sub.number_of_nodes() < 2:
            continue
        pieces = connected_components(sub)
        if len(pieces) > 1:
            stack.extend(pieces)
            continue
        # unweighted connectivity test: edge multiplicity 1 regardless of weight
        cut_weight, side = stoer_wagner_min_cut(sub if uniform else _unweighted_view(sub))
        if cut_weight >= k:
            results.append(set(sub.iter_nodes()))
            continue
        if not uniform:
            # weighted split: the unit-weight cut above need not be minimal
            # under the real weights
            _, side = stoer_wagner_min_cut(sub)
        other = set(sub.iter_nodes()) - side
        stack.append(side)
        stack.append(other)
    return results


def k_edge_connected_subgraphs(
    graph: Graph, k: int, containing: Optional[Iterable[Node]] = None
) -> list[Graph]:
    """Return induced subgraphs of the k-edge-connected components.

    With ``containing`` given, only components containing *all* those nodes
    are returned (the community-search use case).
    """
    required = set(containing) if containing is not None else set()
    subgraphs = []
    for component in k_edge_connected_components(graph, k):
        if required and not required <= component:
            continue
        subgraphs.append(graph.subgraph(component))
    return subgraphs
