"""Steiner-style connectors for multiple query nodes.

Section 5.6 of the paper: with multiple query nodes FPA first finds a small
connected subgraph containing all of them, then treats that subgraph as the
"query" so that peeling farthest layers can never disconnect the queries.
The paper's procedure is: pick one query node, compute shortest paths to all
other nodes, keep the paths ending at query nodes and merge them.  We
implement that procedure (:func:`query_connector`) plus the classic
2-approximate Steiner tree on the metric closure
(:func:`steiner_tree_nodes`) for comparison and testing.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Optional

from .graph import Graph, GraphError, Node
from .traversal import bfs_distances, shortest_path

__all__ = ["query_connector", "steiner_tree_nodes", "connector_subgraph"]


def query_connector(graph: Graph, query_nodes: Sequence[Node], seed: int = 0) -> set[Node]:
    """Return a connected node set containing every query node.

    Implements the 5-step procedure of Section 5.6:

    1. pick one query node ``q`` (deterministically from ``seed``),
    2. compute shortest paths from ``q``,
    3. keep the shortest paths whose endpoints are query nodes,
    4. merge those paths,
    5. return the merged node set.

    Raises :class:`GraphError` when some query node is unreachable from the
    chosen root, i.e. the queries do not lie in one connected component.
    """
    import random

    queries = list(dict.fromkeys(query_nodes))
    if not queries:
        raise GraphError("query_connector needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")
    if len(queries) == 1:
        return {queries[0]}
    rng = random.Random(seed)
    root = queries[rng.randrange(len(queries))]
    connector: set[Node] = {root}
    for target in queries:
        if target == root:
            continue
        path = shortest_path(graph, root, target)
        if path is None:
            raise GraphError(
                f"query nodes {root!r} and {target!r} are not in the same connected component"
            )
        connector.update(path)
    return connector


def steiner_tree_nodes(
    graph: Graph, terminals: Sequence[Node], weighted: bool = False
) -> Optional[set[Node]]:
    """Return the node set of a 2-approximate Steiner tree over ``terminals``.

    Uses the classic metric-closure MST approximation: build the complete
    graph over terminals weighted by shortest-path distance, take its minimum
    spanning tree, and expand every MST edge back to an actual path.
    Returns ``None`` when the terminals are not mutually reachable.
    """
    from .traversal import dijkstra

    terms = list(dict.fromkeys(terminals))
    if not terms:
        return set()
    for node in terms:
        if not graph.has_node(node):
            raise GraphError(f"terminal {node!r} is not in the graph")
    if len(terms) == 1:
        return {terms[0]}

    # pairwise shortest-path distances between terminals
    distances: dict[Node, dict[Node, float]] = {}
    for term in terms:
        dist = dijkstra(graph, term) if weighted else bfs_distances(graph, term)
        distances[term] = {other: dist[other] for other in terms if other in dist}
    for term in terms:
        if len(distances[term]) < len(terms):
            return None

    # Prim's MST on the metric closure
    import heapq

    in_tree: set[Node] = {terms[0]}
    tree_edges: list[tuple[Node, Node]] = []
    heap: list[tuple[float, int, Node, Node]] = []
    counter = 0
    for other in terms[1:]:
        heapq.heappush(heap, (distances[terms[0]][other], counter, terms[0], other))
        counter += 1
    while len(in_tree) < len(terms):
        weight, _, u, v = heapq.heappop(heap)
        if v in in_tree:
            continue
        in_tree.add(v)
        tree_edges.append((u, v))
        for other in terms:
            if other not in in_tree:
                heapq.heappush(heap, (distances[v][other], counter, v, other))
                counter += 1

    # expand MST edges back into graph paths
    nodes: set[Node] = set(terms)
    for u, v in tree_edges:
        path = shortest_path(graph, u, v)
        if path is None:
            return None
        nodes.update(path)
    return nodes


def connector_subgraph(graph: Graph, query_nodes: Iterable[Node], seed: int = 0) -> Graph:
    """Return the induced subgraph over :func:`query_connector`'s node set."""
    return graph.subgraph(query_connector(graph, list(query_nodes), seed=seed))
