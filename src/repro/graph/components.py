"""Connected components and related helpers."""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from typing import Optional

from .graph import Graph, GraphError, Node

__all__ = [
    "connected_components",
    "connected_component_containing",
    "is_connected",
    "nodes_in_same_component",
    "largest_component",
]


def connected_components(graph: Graph) -> list[set[Node]]:
    """Return all connected components as a list of node sets.

    Components are returned in order of first-seen node, so the output is
    deterministic for a deterministic insertion order.
    """
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for start in graph.iter_nodes():
        if start in seen:
            continue
        component: set[Node] = {start}
        queue: deque[Node] = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in graph.adjacency(node):
                if neighbor not in component:
                    component.add(neighbor)
                    queue.append(neighbor)
        seen |= component
        components.append(component)
    return components


def connected_component_containing(graph: Graph, node: Node) -> set[Node]:
    """Return the node set of the component that contains ``node``."""
    if not graph.has_node(node):
        raise GraphError(f"node {node!r} is not in the graph")
    component: set[Node] = {node}
    queue: deque[Node] = deque([node])
    while queue:
        current = queue.popleft()
        for neighbor in graph.adjacency(current):
            if neighbor not in component:
                component.add(neighbor)
                queue.append(neighbor)
    return component


def is_connected(graph: Graph) -> bool:
    """Return ``True`` when the graph is connected (empty graphs count as connected)."""
    if graph.is_empty():
        return True
    first = next(graph.iter_nodes())
    return len(connected_component_containing(graph, first)) == graph.number_of_nodes()


def nodes_in_same_component(graph: Graph, nodes: Iterable[Node]) -> bool:
    """Return ``True`` when every node in ``nodes`` lies in one component.

    This is the feasibility check both NCA and FPA perform before peeling:
    if the query nodes are disconnected, DMCS has no feasible solution.
    """
    node_list = list(nodes)
    if not node_list:
        return True
    component = connected_component_containing(graph, node_list[0])
    return all(node in component for node in node_list[1:])


def largest_component(graph: Graph) -> Optional[set[Node]]:
    """Return the node set of the largest connected component (``None`` if empty)."""
    components = connected_components(graph)
    if not components:
        return None
    return max(components, key=len)
