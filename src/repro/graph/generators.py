"""Synthetic graph generators.

These generators build every synthetic workload the paper evaluates on:

* :func:`lfr_benchmark` — the LFR benchmark of Lancichinetti, Fortunato &
  Radicchi (2008) with power-law degree and community-size distributions and
  a mixing parameter ``mu`` (Table 2 and Figures 8–14).
* :func:`planted_partition` / :func:`stochastic_block_model` — surrogates for
  the real-world graphs whose raw edge lists are unavailable offline
  (Figures 15–19) and the scalability workload (Figure 11).
* :func:`ring_of_cliques` — the resolution-limit example of Figure 2.
* :func:`figure1_network` lives in :mod:`repro.datasets.toy` (it is a named
  dataset rather than a parametric generator).
* Classic random graphs (Erdős–Rényi, Barabási–Albert) used in property
  tests and ablations.

All generators are deterministic for a given ``seed``.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from .graph import Graph, GraphError

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "ring_of_cliques",
    "planted_partition",
    "stochastic_block_model",
    "powerlaw_sequence",
    "lfr_benchmark",
    "LFRResult",
]


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """Return a G(n, p) random graph on nodes ``0..n-1``."""
    if n < 0:
        raise GraphError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def barabasi_albert(n: int, m: int, seed: int = 0) -> Graph:
    """Return a Barabási–Albert preferential-attachment graph.

    Starts from a star on ``m + 1`` nodes and attaches each new node to
    ``m`` distinct existing nodes chosen proportionally to degree.
    """
    if m < 1 or n < m + 1:
        raise GraphError(f"need n > m >= 1, got n={n}, m={m}")
    rng = random.Random(seed)
    graph = Graph(nodes=range(n))
    # repeated-nodes list implements preferential attachment
    repeated: list[int] = []
    for v in range(1, m + 1):
        graph.add_edge(0, v)
        repeated.extend((0, v))
    for new_node in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for target in targets:
            graph.add_edge(new_node, target)
            repeated.extend((new_node, target))
    return graph


def ring_of_cliques(num_cliques: int, clique_size: int) -> Graph:
    """Return a ring of cliques (the Figure-2 resolution-limit example).

    ``num_cliques`` cliques of ``clique_size`` nodes each are connected in a
    ring by a single edge between consecutive cliques.  Node ``(i, j)`` is the
    ``j``-th node of clique ``i``; the ring edges join ``(i, 0)`` and
    ``(i+1 mod num_cliques, 1)`` so no ring edge is duplicated.
    """
    if num_cliques < 3:
        raise GraphError(f"need at least 3 cliques for a ring, got {num_cliques}")
    if clique_size < 2:
        raise GraphError(f"cliques need at least 2 nodes, got {clique_size}")
    graph = Graph()
    for i in range(num_cliques):
        members = [(i, j) for j in range(clique_size)]
        graph.add_nodes_from(members)
        for a in range(clique_size):
            for b in range(a + 1, clique_size):
                graph.add_edge(members[a], members[b])
    for i in range(num_cliques):
        graph.add_edge((i, 0), ((i + 1) % num_cliques, 1))
    return graph


def planted_partition(
    num_communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> tuple[Graph, dict[int, int]]:
    """Return a planted-partition graph and its ground-truth membership.

    Every community has exactly ``community_size`` nodes; intra-community
    edges appear with probability ``p_in`` and inter-community edges with
    probability ``p_out``.  Returns ``(graph, {node: community_id})``.
    """
    sizes = [community_size] * num_communities
    return stochastic_block_model(sizes, p_in, p_out, seed=seed)


def stochastic_block_model(
    community_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> tuple[Graph, dict[int, int]]:
    """Return an SBM graph with diagonal probability ``p_in`` and off-diagonal ``p_out``.

    Nodes are integers ``0..n-1`` assigned to blocks in order of
    ``community_sizes``.  Returns ``(graph, membership)``.
    """
    if not community_sizes:
        raise GraphError("community_sizes must not be empty")
    for probability in (p_in, p_out):
        if not 0.0 <= probability <= 1.0:
            raise GraphError(f"probabilities must be in [0, 1], got {probability}")
    rng = random.Random(seed)
    membership: dict[int, int] = {}
    node = 0
    for block, size in enumerate(community_sizes):
        if size < 1:
            raise GraphError(f"community sizes must be positive, got {size}")
        for _ in range(size):
            membership[node] = block
            node += 1
    n = node
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            probability = p_in if membership[u] == membership[v] else p_out
            if probability > 0.0 and rng.random() < probability:
                graph.add_edge(u, v)
    return graph, membership


def powerlaw_sequence(
    n: int, exponent: float, minimum: int, maximum: int, seed: int = 0
) -> list[int]:
    """Return ``n`` integers drawn from a truncated power law.

    Values fall in ``[minimum, maximum]`` with density proportional to
    ``x ** -exponent`` (inverse-CDF sampling on the continuous law, rounded).
    """
    if minimum < 1 or maximum < minimum:
        raise GraphError(f"need 1 <= minimum <= maximum, got [{minimum}, {maximum}]")
    if exponent <= 1.0:
        raise GraphError(f"power-law exponent must exceed 1, got {exponent}")
    rng = random.Random(seed)
    values: list[int] = []
    alpha = 1.0 - exponent
    low = minimum ** alpha
    high = maximum ** alpha
    for _ in range(n):
        u = rng.random()
        x = (low + u * (high - low)) ** (1.0 / alpha)
        values.append(int(min(maximum, max(minimum, round(x)))))
    return values


class LFRResult:
    """Output of :func:`lfr_benchmark`: the graph plus ground-truth communities."""

    __slots__ = ("graph", "communities", "membership", "parameters")

    def __init__(
        self,
        graph: Graph,
        communities: list[set[int]],
        membership: dict[int, int],
        parameters: dict,
    ) -> None:
        self.graph = graph
        self.communities = communities
        self.membership = membership
        self.parameters = parameters

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"LFRResult(|V|={self.graph.number_of_nodes()}, "
            f"|E|={self.graph.number_of_edges()}, |C|={len(self.communities)})"
        )


def lfr_benchmark(
    n: int = 1000,
    avg_degree: int = 20,
    max_degree: int = 200,
    mu: float = 0.2,
    min_community: int = 20,
    max_community: int = 1000,
    degree_exponent: float = 2.5,
    community_exponent: float = 1.5,
    seed: int = 0,
) -> LFRResult:
    """Generate an LFR-style benchmark graph with ground-truth communities.

    The generator follows the structure of Lancichinetti et al. (2008):

    1. draw node degrees from a truncated power law with mean close to
       ``avg_degree`` and maximum ``max_degree``;
    2. draw community sizes from a truncated power law in
       ``[min_community, max_community]`` until they cover all nodes;
    3. assign nodes to communities such that each node's internal degree
       ``(1 - mu) * degree`` fits in its community;
    4. wire ``(1 - mu)`` of each node's stubs inside its community and ``mu``
       of them to random outside nodes, avoiding duplicates and self-loops.

    The result is a simple graph whose empirical mixing is close to ``mu``.
    The defaults mirror Table 2 of the paper, scaled from 5,000 to 1,000
    nodes so that pure-Python sweeps complete quickly; callers can pass
    ``n=5000`` for the paper's exact configuration.
    """
    if not 0.0 <= mu <= 1.0:
        raise GraphError(f"mu must be in [0, 1], got {mu}")
    if avg_degree < 2 or max_degree < avg_degree:
        raise GraphError("need max_degree >= avg_degree >= 2")
    if min_community < 2 or max_community < min_community:
        raise GraphError("need max_community >= min_community >= 2")
    rng = random.Random(seed)

    # -- 1. degree sequence -------------------------------------------------
    min_degree = _solve_min_degree(avg_degree, max_degree, degree_exponent)
    degrees = powerlaw_sequence(n, degree_exponent, min_degree, max_degree, seed=seed + 1)

    # -- 2. community sizes -------------------------------------------------
    max_community = min(max_community, n)
    sizes: list[int] = []
    remaining = n
    size_seed = seed + 2
    while remaining > 0:
        size = powerlaw_sequence(1, community_exponent, min_community, max_community, seed=size_seed)[0]
        size_seed += 1
        if size > remaining:
            size = remaining
            if size < min_community and sizes:
                # merge the remainder into the smallest existing community
                sizes[sizes.index(min(sizes))] += size
                remaining = 0
                break
        sizes.append(size)
        remaining -= size

    # -- 3. assign nodes to communities -------------------------------------
    # Internal degree of node i is round((1 - mu) * degree[i]); it must be
    # strictly smaller than its community size.
    internal_target = [max(1, round((1.0 - mu) * degree)) for degree in degrees]
    community_of: dict[int, int] = {}
    capacity = list(sizes)
    # place high-degree nodes first so that large internal degrees land in
    # large communities
    order = sorted(range(n), key=lambda i: -internal_target[i])
    community_indices = sorted(range(len(sizes)), key=lambda c: -sizes[c])
    for node in order:
        placed = False
        for community in community_indices:
            if capacity[community] > 0 and internal_target[node] < sizes[community]:
                community_of[node] = community
                capacity[community] -= 1
                placed = True
                break
        if not placed:
            # clamp: put the node in the largest community with free capacity
            for community in community_indices:
                if capacity[community] > 0:
                    community_of[node] = community
                    capacity[community] -= 1
                    internal_target[node] = max(1, sizes[community] - 1)
                    placed = True
                    break
        if not placed:
            raise GraphError("LFR assignment failed: no community capacity left")

    members: list[list[int]] = [[] for _ in sizes]
    for node, community in community_of.items():
        members[community].append(node)

    # -- 4. wire edges -------------------------------------------------------
    graph = Graph(nodes=range(n))
    # 4a. internal edges per community via stub matching
    for community, nodes in enumerate(members):
        stubs: list[int] = []
        for node in nodes:
            target = min(internal_target[node], len(nodes) - 1)
            stubs.extend([node] * target)
        rng.shuffle(stubs)
        _match_stubs(graph, stubs, rng, allowed=set(nodes))
    # 4b. external edges: each node gets ~mu * degree stubs wired outside
    external_stubs: list[int] = []
    for node in range(n):
        external = max(0, degrees[node] - internal_target[node])
        external_stubs.extend([node] * external)
    rng.shuffle(external_stubs)
    _match_external_stubs(graph, external_stubs, community_of, rng)

    communities = [set(nodes) for nodes in members if nodes]
    membership = dict(community_of)
    parameters = {
        "n": n,
        "avg_degree": avg_degree,
        "max_degree": max_degree,
        "mu": mu,
        "min_community": min_community,
        "max_community": max_community,
        "seed": seed,
    }
    return LFRResult(graph, communities, membership, parameters)


def _solve_min_degree(avg_degree: float, max_degree: int, exponent: float) -> int:
    """Find the power-law lower cutoff whose mean is closest to ``avg_degree``."""
    best_min, best_gap = 1, float("inf")
    for candidate in range(1, max_degree + 1):
        mean = _powerlaw_mean(candidate, max_degree, exponent)
        gap = abs(mean - avg_degree)
        if gap < best_gap:
            best_min, best_gap = candidate, gap
        if mean > avg_degree:
            break
    return best_min


def _powerlaw_mean(minimum: int, maximum: int, exponent: float) -> float:
    """Mean of the continuous truncated power law on [minimum, maximum]."""
    if minimum == maximum:
        return float(minimum)
    a = exponent
    num = (maximum ** (2 - a) - minimum ** (2 - a)) / (2 - a)
    den = (maximum ** (1 - a) - minimum ** (1 - a)) / (1 - a)
    return num / den


def _match_stubs(graph: Graph, stubs: list[int], rng: random.Random, allowed: set[int]) -> None:
    """Randomly pair stubs into edges inside ``allowed``, skipping duplicates."""
    attempts = 0
    max_attempts = 10 * max(1, len(stubs))
    stubs = list(stubs)
    while len(stubs) > 1 and attempts < max_attempts:
        attempts += 1
        u = stubs.pop()
        v = stubs.pop()
        if u == v or graph.has_edge(u, v) or u not in allowed or v not in allowed:
            # re-insert at random positions and retry
            stubs.insert(rng.randrange(len(stubs) + 1), u)
            stubs.insert(rng.randrange(len(stubs) + 1), v)
            continue
        graph.add_edge(u, v)


def _match_external_stubs(
    graph: Graph, stubs: list[int], community_of: dict[int, int], rng: random.Random
) -> None:
    """Pair stubs across communities, skipping intra-community pairs."""
    attempts = 0
    max_attempts = 10 * max(1, len(stubs))
    stubs = list(stubs)
    while len(stubs) > 1 and attempts < max_attempts:
        attempts += 1
        u = stubs.pop()
        v = stubs.pop()
        same_community = community_of[u] == community_of[v]
        if u == v or graph.has_edge(u, v) or same_community:
            stubs.insert(rng.randrange(len(stubs) + 1), u)
            stubs.insert(rng.randrange(len(stubs) + 1), v)
            continue
        graph.add_edge(u, v)
