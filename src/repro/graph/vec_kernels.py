"""Optional numpy-vectorised tier of the CSR kernels.

The pure-python CSR kernels (:mod:`repro.graph.csr`,
:mod:`repro.graph.csr_truss`) pay a Python-level loop iteration per edge
touch.  This module provides vectorised twins for the three kernels that
dominate serving traffic — multi-source BFS, edge-support counting and
truss peeling — as an *optional* tier:

* numpy is an extra (``pip install -e ".[vec]"``), never a hard
  dependency: without it every entry point below reports unavailable and
  the dispatch sites in ``csr.py`` / ``csr_truss.py`` keep running the
  pure-python kernels;
* ``REPRO_VEC=0`` in the environment is the kill switch (and
  ``REPRO_VEC=1`` the explicit opt-in; by default the tier is on exactly
  when numpy imports), :func:`set_vec_enabled` the programmatic override
  tests use to compare both tiers;
* every kernel is **bit-identical** to its CSR reference: the BFS
  preserves exact discovery order (np.unique's first-occurrence indices,
  re-sorted, reproduce the sequential frontier order), and support /
  truss values are order-independent graph invariants, so the
  level-synchronous peel returns exactly what the sequential bucket
  queue returns.

The kernels read the CSR's ``indptr`` / ``indices`` buffers through
``np.frombuffer`` — zero-copy whether the buffers are private ``array``
objects or read-only shared-memory views (:mod:`repro.graph.shm`), which
is what makes this tier compose with attached snapshots: N worker
processes BFS over literally the same bytes.
"""

from __future__ import annotations

import os
from typing import Optional

from .graph import GraphError

__all__ = [
    "numpy_available",
    "vec_enabled",
    "set_vec_enabled",
    "vec_multi_source_bfs",
    "vec_edge_support",
    "vec_truss_numbers",
]

_numpy = None
_numpy_missing = False

#: programmatic override: None = decide from env + availability
_override: Optional[bool] = None


def _np():
    """Import numpy lazily; remember a failure so we probe only once."""
    global _numpy, _numpy_missing
    if _numpy is None and not _numpy_missing:
        try:
            import numpy
        except ImportError:
            _numpy_missing = True
        else:
            _numpy = numpy
    return _numpy


def numpy_available() -> bool:
    """Return ``True`` when the optional numpy extra is importable."""
    return _np() is not None


def vec_enabled() -> bool:
    """Should the dispatch sites route to the vectorised tier?

    Priority: :func:`set_vec_enabled` override, then the ``REPRO_VEC``
    environment switch (``0``/``false``/``off`` disables, anything else
    enables *if numpy imports*), then plain availability.
    """
    if _override is not None:
        return _override and numpy_available()
    env = os.environ.get("REPRO_VEC")
    if env is not None and env.strip().lower() in ("0", "false", "off", "no"):
        return False
    return numpy_available()


def set_vec_enabled(value: Optional[bool]) -> None:
    """Force the tier on/off (tests); ``None`` restores auto-detection."""
    global _override
    _override = value


# ----------------------------------------------------------------------------
# zero-copy views of the CSR buffers
# ----------------------------------------------------------------------------


def _int_dtype(np, buf):
    return np.dtype(f"i{buf.itemsize}")


def _csr_arrays(csr):
    """``(indptr, indices)`` as int64-ish numpy views, cached on the CSR."""
    cached = csr._np_cache
    if cached is None:
        np = _np()
        indptr = np.frombuffer(csr.indptr, dtype=_int_dtype(np, csr.indptr))
        indices = np.frombuffer(csr.indices, dtype=_int_dtype(np, csr.indices))
        cached = (indptr, indices)
        csr._np_cache = cached
    return cached


def _alive_mask(np, alive, n):
    if alive is None:
        return None
    return np.frombuffer(alive, dtype=np.uint8).astype(bool)


# ----------------------------------------------------------------------------
# multi-source BFS
# ----------------------------------------------------------------------------


def vec_multi_source_bfs(csr, sources, alive=None):
    """Vectorised twin of :func:`repro.graph.csr.csr_multi_source_bfs`.

    Returns the same ``(dist, order)`` lists, including the exact
    discovery order: within a level, candidates are gathered in frontier
    × adjacency order and deduplicated to their first occurrence, which
    is precisely the order the sequential FIFO queue discovers them in.
    """
    np = _np()
    if not sources:
        raise GraphError("csr_multi_source_bfs needs at least one source")
    n = csr.number_of_nodes()
    indptr, indices = _csr_arrays(csr)
    alive_np = _alive_mask(np, alive, n)

    dist = np.full(n, -1, dtype=np.int64)
    seeds = []
    for source in sources:
        if alive is not None and not alive[source]:
            raise GraphError(f"source node {csr.node_list[source]!r} is not alive")
        if dist[source] == -1:
            dist[source] = 0
            seeds.append(source)
    frontier = np.asarray(seeds, dtype=np.int64)
    order_parts = [frontier]
    level = 0
    while frontier.size:
        level += 1
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if not total:
            break
        # gather every frontier row, in frontier-then-adjacency order
        ends = counts.cumsum()
        positions = np.repeat(starts - (ends - counts), counts) + np.arange(total)
        candidates = indices[positions]
        fresh = dist[candidates] == -1
        if alive_np is not None:
            fresh &= alive_np[candidates]
        candidates = candidates[fresh]
        if not candidates.size:
            break
        # first-occurrence dedupe that preserves candidate order: unique()
        # returns the first index of each value (values sorted); re-sorting
        # those indices restores the sequential discovery order
        _, first = np.unique(candidates, return_index=True)
        frontier = candidates[np.sort(first)]
        dist[frontier] = level
        order_parts.append(frontier)
    order = np.concatenate(order_parts) if len(order_parts) > 1 else order_parts[0]
    return dist.tolist(), order.tolist()


# ----------------------------------------------------------------------------
# edge support (triangle counts)
# ----------------------------------------------------------------------------


def _vec_cache(index):
    """The per-edge-index cache dict for the numpy structures below."""
    cache = index._vec_cache
    if cache is None:
        cache = index._vec_cache = {}
    return cache


def _edge_data(np, csr, index):
    """Per-(csr, index) numpy edge structures, cached on the edge index.

    ``eu`` / ``ev`` as arrays, plus a sorted undirected-edge-key table
    (``min * n + max``) for O(log m) vectorised edge-id lookups.
    """
    cache = _vec_cache(index)
    cached = cache.get("edges")
    if cached is None:
        n = csr.number_of_nodes()
        eu = np.frombuffer(index.eu, dtype=_int_dtype(np, index.eu))
        ev = np.frombuffer(index.ev, dtype=_int_dtype(np, index.ev))
        keys = np.minimum(eu, ev) * n + np.maximum(eu, ev)
        key_order = np.argsort(keys, kind="stable")
        cached = (eu, ev, keys[key_order], key_order.astype(np.int64))
        cache["edges"] = cached
    return cached


#: pair-generation chunk bound — caps transient memory of the triangle sweep
_TRIANGLE_CHUNK = 1 << 22


def _triangle_data(np, csr, index):
    """Every triangle of the *full* graph as three edge-id columns.

    Built once per edge index with the same (degree, index)-rank
    orientation the python kernel uses: each node lists only its
    higher-ranked neighbours, each triangle is generated exactly once at
    its lowest-ranked corner, and the third side is resolved through the
    sorted edge-key table.  Alive masks are applied by the callers as a
    filter over the cached list (a triangle survives iff all three edges
    do), so the sweep never reruns per query.
    """
    cache = _vec_cache(index)
    cached = cache.get("triangles")
    if cached is not None:
        return cached
    n = csr.number_of_nodes()
    indptr, indices = _csr_arrays(csr)
    _, _, sorted_keys, ids_by_key = _edge_data(np, csr, index)
    deg = (indptr[1:] - indptr[:-1]).astype(np.int64)
    rank = np.empty(n, dtype=np.int64)
    rank[np.lexsort((np.arange(n), deg))] = np.arange(n)
    edge_id = np.frombuffer(index.edge_id, dtype=_int_dtype(np, index.edge_id))
    # forward adjacency: keep only the higher-ranked endpoint of every
    # directed position, grouped by source and sorted by neighbour rank
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    keep = rank[indices] > rank[src]
    fw_src = src[keep]
    fw_dst = indices[keep].astype(np.int64)
    fw_eid = edge_id[keep].astype(np.int64)
    order = np.lexsort((rank[fw_dst], fw_src))
    fw_src = fw_src[order]
    fw_dst = fw_dst[order]
    fw_eid = fw_eid[order]
    row_len = np.bincount(fw_src, minlength=n)
    row_start = np.zeros(n, dtype=np.int64)
    if n > 1:
        np.cumsum(row_len[:-1], out=row_start[1:])
    p = np.arange(fw_src.size, dtype=np.int64)
    # entry at local offset i of a length-f row pairs with its f-1-i successors
    k = row_len[fw_src] - 1 - (p - row_start[fw_src])
    cum = k.cumsum()
    total = int(cum[-1]) if k.size else 0
    parts_uv, parts_uw, parts_vw = [], [], []
    start_entry = 0
    done = 0
    while done < total:
        stop_entry = int(np.searchsorted(cum, done + _TRIANGLE_CHUNK, side="right"))
        stop_entry = max(stop_entry, start_entry + 1)
        k_c = k[start_entry:stop_entry]
        tot_c = int(k_c.sum())
        if tot_c:
            ends_c = k_c.cumsum()
            within = np.arange(tot_c, dtype=np.int64) - np.repeat(ends_c - k_c, k_c)
            left = np.repeat(p[start_entry:stop_entry], k_c)
            right = left + 1 + within
            v = fw_dst[left]
            w = fw_dst[right]
            keys = np.minimum(v, w) * n + np.maximum(v, w)
            vw_ids, found = _lookup_edges(np, sorted_keys, ids_by_key, keys)
            parts_uv.append(fw_eid[left][found])
            parts_uw.append(fw_eid[right][found])
            parts_vw.append(vw_ids[found])
        start_entry = stop_entry
        done += tot_c
    if parts_uv:
        cached = (
            np.concatenate(parts_uv),
            np.concatenate(parts_uw),
            np.concatenate(parts_vw),
        )
    else:
        empty = np.empty(0, dtype=np.int64)
        cached = (empty, empty, empty)
    cache["triangles"] = cached
    return cached


def _incidence_data(np, csr, index):
    """Edge-id → triangle-id incidence as a CSR, cached on the edge index."""
    cache = _vec_cache(index)
    cached = cache.get("incidence")
    if cached is None:
        t_uv, t_uw, t_vw = _triangle_data(np, csr, index)
        m = index.num_edges
        edge_col = np.concatenate((t_uv, t_uw, t_vw))
        tri_col = np.tile(np.arange(t_uv.size, dtype=np.int64), 3)
        inc_tri = tri_col[np.argsort(edge_col, kind="stable")]
        inc_ptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(edge_col, minlength=m), out=inc_ptr[1:])
        cached = (inc_ptr, inc_tri)
        cache["incidence"] = cached
    return cached


def _lookup_edges(np, sorted_keys, ids_by_key, keys):
    """Map undirected edge keys to edge ids (-1 when the edge is absent)."""
    slots = np.searchsorted(sorted_keys, keys)
    slots_clipped = np.minimum(slots, len(sorted_keys) - 1) if len(sorted_keys) else slots
    found = (
        (slots < len(sorted_keys)) & (sorted_keys[slots_clipped] == keys)
        if len(sorted_keys)
        else np.zeros(len(keys), dtype=bool)
    )
    ids = np.where(found, ids_by_key[slots_clipped], -1)
    return ids, found


def _expand_rows(np, indptr, nodes):
    """Concatenate the adjacency rows of ``nodes``; returns (owner, position)."""
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if not total:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    ends = counts.cumsum()
    positions = np.repeat(starts - (ends - counts), counts) + np.arange(total)
    owners = np.repeat(np.arange(len(nodes)), counts)
    return owners, positions


def vec_edge_support(csr, index, alive=None):
    """Vectorised twin of :func:`repro.graph.csr_truss.csr_edge_support`.

    Support values are triangle counts of the alive-induced subgraph — an
    order-free invariant — so this is a bincount over the cached triangle
    list (:func:`_triangle_data`): a triangle survives an alive mask iff
    all three of its edges do.  Edges with a dead endpoint get ``-1``,
    exactly like the reference.
    """
    np = _np()
    m = index.num_edges
    if m == 0:
        return []
    n = csr.number_of_nodes()
    t_uv, t_uw, t_vw = _triangle_data(np, csr, index)
    alive_np = _alive_mask(np, alive, n)
    if alive_np is None:
        support = np.bincount(np.concatenate((t_uv, t_uw, t_vw)), minlength=m)
    else:
        eu, ev, _, _ = _edge_data(np, csr, index)
        edge_alive = alive_np[eu] & alive_np[ev]
        # a triangle's three edges are alive iff its three nodes are
        tri_ok = edge_alive[t_uv] & edge_alive[t_uw] & edge_alive[t_vw]
        support = np.bincount(
            np.concatenate((t_uv[tri_ok], t_uw[tri_ok], t_vw[tri_ok])), minlength=m
        )
        support[~edge_alive] = -1
    return support.tolist()


# ----------------------------------------------------------------------------
# truss peeling
# ----------------------------------------------------------------------------


def vec_truss_numbers(csr, index, alive=None):
    """Vectorised twin of :func:`repro.graph.csr_truss.csr_truss_numbers`.

    Level-synchronous peel over the cached triangle list: every alive edge
    at the current support level is removed in one round, its triangles
    are read off the edge → triangle incidence (no per-round neighbour
    expansion), and the surviving partner edges lose one support per
    broken triangle.  Only edges decremented in a round can join the next
    sub-round's frontier, so the scan cost per sub-round is proportional
    to the decrement set, not ``m``.  Triangles whose edges are peeled in the
    same round are settled with the classic tie-break (the lowest peeled
    edge id owns the triangle; partners peeled alongside never get
    decremented), which reproduces the sequential bucket queue's values
    exactly — truss numbers are order-independent, only the *work
    schedule* differs.
    """
    np = _np()
    m = index.num_edges
    if m == 0:
        return []
    support = np.asarray(vec_edge_support(csr, index, alive), dtype=np.int64)
    t_uv, t_uw, t_vw = _triangle_data(np, csr, index)
    inc_ptr, inc_tri = _incidence_data(np, csr, index)

    truss = np.full(m, -1, dtype=np.int64)
    peeled = support < 0  # dead edges never enter the peel
    remaining = int(m - peeled.sum())
    level = 0
    pending = None  # edges decremented last round — the only new-frontier candidates
    while remaining:
        if pending is not None:
            cand = pending[~peeled[pending] & (support[pending] <= level)]
            pending = None
            if not cand.size:
                continue  # level exhausted; fall through to the jump scan
            frontier = np.unique(cand)
        else:
            # jump straight to the next occupied support level (supports are
            # floored at the previous level, so this never moves backwards)
            alive_idx = np.nonzero(~peeled)[0]
            alive_support = support[alive_idx]
            level = int(alive_support.min())
            frontier = alive_idx[alive_support == level]
        truss[frontier] = level + 2
        in_frontier = np.zeros(m, dtype=bool)
        in_frontier[frontier] = True
        owners, positions = _expand_rows(np, inc_ptr, frontier)
        if positions.size:
            tris = inc_tri[positions]
            e_ids = frontier[owners]
            a, b, c = t_uv[tris], t_uw[tris], t_vw[tris]
            partner1 = np.where(a == e_ids, b, a)
            partner2 = np.where(c == e_ids, b, c)
            # the triangle only still exists if neither partner was peeled
            # in an earlier round
            keep = ~peeled[partner1] & ~peeled[partner2]
            e_ids = e_ids[keep]
            partner1 = partner1[keep]
            partner2 = partner2[keep]
            if e_ids.size:
                p1_f = in_frontier[partner1]
                p2_f = in_frontier[partner2]
                # same-round settlement: the lowest frontier edge of each
                # triangle owns it; co-peeled partners are never decremented
                lowest = (~p1_f | (e_ids < partner1)) & (~p2_f | (e_ids < partner2))
                dec = np.concatenate(
                    (partner1[lowest & ~p1_f], partner2[lowest & ~p2_f])
                )
                if dec.size:
                    support -= np.bincount(dec, minlength=m)
                    # supports never sink below the current level: the
                    # sequential peel assigns those edges this same truss
                    # value via its cursor rollback
                    targets = np.unique(dec)
                    support[targets] = np.maximum(support[targets], level)
                    pending = targets
        peeled |= in_frontier
        remaining -= int(frontier.size)
    return truss.tolist()
