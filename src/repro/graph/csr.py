"""Array-backed CSR fast path for the hot peeling kernels.

The dict-of-dicts :class:`~repro.graph.graph.Graph` is the friendly,
mutable reference representation, but every edge touch pays a Python hash
lookup.  This module provides the compact, immutable counterpart:

* :class:`CSRGraph` — the classic compressed-sparse-row layout
  (``indptr`` / ``indices`` / ``weights``) over ``array`` primitives, with a
  node↔index mapping so algorithms can speak integers internally and node
  objects at the API boundary;
* :class:`FrozenGraph` — an immutable :class:`Graph` subclass that carries a
  lazily built :class:`CSRGraph`.  Passing a frozen graph to ``nca`` / ``fpa``
  transparently selects the CSR kernels (see ``repro.core.framework``);
* int-indexed kernels for the operations the peeling loops spend their time
  in: multi-source BFS, connected components, shortest paths, articulation
  points (Hopcroft–Tarjan) and coreness peeling.

Every kernel accepts an optional ``alive`` byte mask so the peeling loops can
restrict them to the surviving induced subgraph without rebuilding anything.
The adjacency order of the CSR arrays is exactly the insertion order of the
source :class:`Graph`, which is what makes the dict and CSR code paths of
NCA / FPA produce bit-identical results (same traversal orders, same
tie-breaks).
"""

from __future__ import annotations

import threading
from array import array
from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

from .graph import Graph, GraphError, Node

__all__ = [
    "CSRGraph",
    "FrozenGraph",
    "SharedCache",
    "freeze",
    "csr_multi_source_bfs",
    "csr_connected_component",
    "csr_connected_components",
    "csr_shortest_path",
    "csr_articulation_points",
    "csr_core_numbers",
]


class CSRGraph:
    """Immutable compressed-sparse-row view of an undirected graph.

    Node ``i`` corresponds to ``node_list[i]`` (the source graph's insertion
    order); its neighbours are ``indices[indptr[i]:indptr[i + 1]]`` in the
    source graph's adjacency insertion order, with matching ``weights``.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "node_list",
        "index_of",
        "num_edges",
        "total_weight",
        "_adj_lists",
        "_np_cache",
    )

    def __init__(
        self,
        indptr: array,
        indices: array,
        weights: array,
        node_list: list[Node],
        num_edges: int,
        total_weight: float,
        index_of: Optional[dict[Node, int]] = None,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.node_list = node_list
        self.index_of: dict[Node, int] = (
            index_of if index_of is not None else {node: i for i, node in enumerate(node_list)}
        )
        self.num_edges = num_edges
        self.total_weight = total_weight
        self._adj_lists: Optional[list[list[int]]] = None
        self._np_cache = None  # numpy views of indptr/indices (vec_kernels)

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Build a CSR snapshot of ``graph`` preserving its iteration orders."""
        node_list = list(graph.iter_nodes())
        index_of = {node: i for i, node in enumerate(node_list)}
        n = len(node_list)
        indptr = array("l", [0] * (n + 1))
        indices = array("l")
        weights = array("d")
        position = 0
        for i, node in enumerate(node_list):
            for neighbor, weight in graph.adjacency(node).items():
                indices.append(index_of[neighbor])
                weights.append(weight)
                position += 1
            indptr[i + 1] = position
        return cls(
            indptr=indptr,
            indices=indices,
            weights=weights,
            node_list=node_list,
            num_edges=graph.number_of_edges(),
            total_weight=graph.total_edge_weight(),
            index_of=index_of,
        )

    # ------------------------------------------------------------------
    # queries (index based)
    # ------------------------------------------------------------------
    def number_of_nodes(self) -> int:
        """Return ``|V|``."""
        return len(self.node_list)

    def number_of_edges(self) -> int:
        """Return ``|E|``."""
        return self.num_edges

    def degree(self, index: int) -> int:
        """Return the degree of node ``index``."""
        return self.indptr[index + 1] - self.indptr[index]

    def degrees(self) -> list[int]:
        """Return the degree of every node, indexed positionally."""
        indptr = self.indptr
        return [indptr[i + 1] - indptr[i] for i in range(len(self.node_list))]

    def neighbors(self, index: int) -> array:
        """Return the neighbour indices of node ``index`` (a zero-copy-ish slice)."""
        return self.indices[self.indptr[index] : self.indptr[index + 1]]

    def adjacency_lists(self) -> list[list[int]]:
        """Return (and cache) the adjacency as a list of int lists.

        ``array`` keeps the memory footprint minimal, but Python-level loops
        iterate plain lists of cached small ints noticeably faster; the hot
        kernels below all run on this view.
        """
        if self._adj_lists is None:
            indptr = self.indptr
            indices = self.indices
            self._adj_lists = [
                list(indices[indptr[i] : indptr[i + 1]]) for i in range(len(self.node_list))
            ]
        return self._adj_lists

    def iter_neighbors(self, index: int) -> Iterator[int]:
        """Iterate the neighbour indices of node ``index``."""
        indices = self.indices
        for pos in range(self.indptr[index], self.indptr[index + 1]):
            yield indices[pos]

    def indices_for(self, nodes: Iterable[Node]) -> list[int]:
        """Map node objects to CSR indices, raising on unknown nodes."""
        index_of = self.index_of
        result = []
        for node in nodes:
            if node not in index_of:
                raise GraphError(f"node {node!r} is not in the graph")
            result.append(index_of[node])
        return result

    def nodes_for(self, indices: Iterable[int]) -> list[Node]:
        """Map CSR indices back to node objects."""
        node_list = self.node_list
        return [node_list[i] for i in indices]

    def __getstate__(self):
        """Pickle only the canonical arrays; caches are rebuilt on demand.

        Keeps the payload minimal when the batched runner ships a frozen
        graph to ``concurrent.futures`` process workers.  A CSR whose
        buffers are shared-memory views (see :mod:`repro.graph.shm`)
        pickles as plain private arrays — the zero-copy re-attach path is
        :meth:`AttachedFrozenGraph.__reduce__`, not this one.
        """
        return (
            self.indptr if isinstance(self.indptr, array) else array("l", self.indptr),
            self.indices if isinstance(self.indices, array) else array("l", self.indices),
            self.weights if isinstance(self.weights, array) else array("d", self.weights),
            self.node_list,
            self.num_edges,
            self.total_weight,
        )

    def __setstate__(self, state) -> None:
        indptr, indices, weights, node_list, num_edges, total_weight = state
        self.__init__(indptr, indices, weights, node_list, num_edges, total_weight)

    def __repr__(self) -> str:
        return f"CSRGraph(|V|={self.number_of_nodes()}, |E|={self.num_edges})"


class SharedCache:
    """The per-snapshot memo dict, with **single-flight** computation.

    Plain dict access (``cache[key]``, ``key in cache``, iteration) behaves
    like the dict this used to be, so existing check-then-store callers and
    introspection keep working.  :meth:`memo` is the concurrency-aware entry
    point: when several threads (e.g. inline replicas of one serving shard
    absorbing a cold burst) ask for the same query-independent decomposition
    at once, exactly one computes it and the rest wait for that value — the
    cold cost of a decomposition is 1× regardless of replica count, instead
    of "1× per replica that raced past the same ``key not in cache`` check".

    A compute that raises wakes the waiters, and the first of them retries
    as the new owner (the failure is not cached).  Pickling ships only the
    computed values — locks and in-flight state are rebuilt empty, which is
    what lets a frozen snapshot still travel to process-pool workers.
    """

    __slots__ = ("_data", "_lock", "_inflight")

    def __init__(self, data: Optional[dict] = None) -> None:
        self._data: dict = dict(data) if data else {}
        self._lock = threading.Lock()
        self._inflight: dict = {}  # key -> threading.Event of the computing thread

    # -- the dict surface the existing memo sites and tests use -----------
    def __contains__(self, key) -> bool:
        return key in self._data

    def __getitem__(self, key):
        return self._data[key]

    def __setitem__(self, key, value) -> None:
        with self._lock:
            self._data[key] = value

    def get(self, key, default=None):
        return self._data.get(key, default)

    def __iter__(self):
        return iter(tuple(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def keys(self):
        return tuple(self._data)

    # -- single flight -----------------------------------------------------
    def memo(self, key, compute):
        """Return ``cache[key]``, computing it at most once across threads.

        ``compute`` is a zero-argument callable.  The first caller of a
        missing ``key`` becomes the owner and runs ``compute()`` outside the
        lock; concurrent callers of the same ``key`` block until the value
        lands and then return it without recomputing.
        """
        while True:
            with self._lock:
                if key in self._data:
                    return self._data[key]
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    owner = True
                else:
                    owner = False
            if not owner:
                event.wait()
                continue  # value landed — or the owner failed and we retry
            try:
                value = compute()
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                event.set()
                raise
            with self._lock:
                self._data[key] = value
                self._inflight.pop(key, None)
            event.set()
            return value

    # -- pickling (process-pool workers receive the values, fresh locks) ---
    def __getstate__(self) -> dict:
        return dict(self._data)

    def __setstate__(self, data: dict) -> None:
        self.__init__(data)

    def __repr__(self) -> str:
        return f"SharedCache({len(self._data)} entries)"


#: Guards the lazy creation of a snapshot's SharedCache (not its contents).
_SHARED_CACHE_INIT_LOCK = threading.Lock()


class FrozenGraph(Graph):
    """An immutable :class:`Graph` carrying a cached :class:`CSRGraph`.

    All read operations behave exactly like the dict-backed graph (metrics,
    baselines and reporting keep working unchanged); mutators raise
    :class:`GraphError`.  The peeling algorithms detect frozen inputs and
    switch to the CSR kernels.
    """

    __slots__ = ("_csr", "_cache")

    def __init__(
        self,
        edges: Optional[Iterable[tuple]] = None,
        nodes: Optional[Iterable[Node]] = None,
    ) -> None:
        super().__init__(edges=edges, nodes=nodes)
        self._csr: Optional[CSRGraph] = None
        self._cache: Optional[SharedCache] = None

    @classmethod
    def from_graph(cls, graph: Graph) -> "FrozenGraph":
        """Snapshot ``graph`` into a frozen copy (original stays mutable)."""
        frozen = cls.__new__(cls)
        frozen._adj = {node: dict(nbrs) for node, nbrs in graph._adj.items()}
        frozen._num_edges = graph.number_of_edges()
        frozen._total_weight = graph.total_edge_weight()
        frozen._csr = None
        frozen._cache = None
        return frozen

    @property
    def csr(self) -> CSRGraph:
        """Return the CSR view, building it on first access."""
        if self._csr is None:
            self._csr = CSRGraph.from_graph(self)
        return self._csr

    def shared_cache(self) -> SharedCache:
        """Return the mutable memo cache tied to this immutable snapshot.

        Because a frozen graph can never change, query-independent derived
        structure (core decompositions, k-edge-connected partitions, ...) can
        be computed once and reused by every query of a batch.  Keys are
        namespaced tuples like ``("kcore-structure", k)``; use
        :meth:`SharedCache.memo` so concurrent callers of one key (inline
        replicas absorbing a cold burst) single-flight the computation.
        """
        if self._cache is None:
            # double-checked init: concurrent first callers must agree on ONE
            # cache object or its per-key in-flight guards would not be shared
            with _SHARED_CACHE_INIT_LOCK:
                if self._cache is None:
                    self._cache = SharedCache()
        return self._cache

    def freeze(self) -> "FrozenGraph":
        """Already frozen; return self."""
        return self

    def without_cache(self) -> "FrozenGraph":
        """Return a view of this snapshot with an *empty* memo cache.

        Structure (adjacency dicts, CSR arrays) is shared with ``self``;
        only the :class:`SharedCache` is dropped.  Used when shipping a
        snapshot to worker processes for an index-backed shard: the index
        segment already carries every decomposition the workers need, so
        pickling warm memo values per worker would duplicate them N times.
        """
        clone = FrozenGraph.__new__(FrozenGraph)
        clone._adj = self._adj
        clone._num_edges = self._num_edges
        clone._total_weight = self._total_weight
        clone._csr = self._csr
        clone._cache = None
        return clone

    # -- zero-copy sharing (see repro.graph.shm) -----------------------
    def share(self):
        """Export the CSR arrays into a named shared-memory segment.

        Returns the owner-side :class:`~repro.graph.shm.SharedSnapshot`;
        its ``descriptor`` is the small picklable value worker processes
        hand to :meth:`attach`.  The owner must eventually ``unlink()``
        the returned handle (or use it as a context manager).
        """
        from .shm import share_frozen

        return share_frozen(self)

    @staticmethod
    def attach(descriptor):
        """Map a shared snapshot by descriptor (zero-copy, read-only).

        The returned :class:`~repro.graph.shm.AttachedFrozenGraph` is a
        drop-in frozen graph whose arrays alias the owner's segment.
        Raises :class:`GraphError` when the segment no longer exists.
        """
        from .shm import attach_frozen

        return attach_frozen(descriptor)

    def thaw(self) -> Graph:
        """Return a mutable :class:`Graph` copy."""
        clone = Graph()
        clone._adj = {node: dict(nbrs) for node, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        clone._total_weight = self._total_weight
        return clone

    def _immutable(self, operation: str):
        raise GraphError(f"FrozenGraph is immutable; {operation} is not allowed (thaw() first)")

    def add_node(self, node: Node) -> None:  # noqa: D102 - immutability guard
        self._immutable("add_node")

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:  # noqa: D102
        self._immutable("add_edge")

    def remove_edge(self, u: Node, v: Node) -> None:  # noqa: D102
        self._immutable("remove_edge")

    def remove_node(self, node: Node) -> None:  # noqa: D102
        self._immutable("remove_node")

    def __repr__(self) -> str:
        return f"FrozenGraph(|V|={self.number_of_nodes()}, |E|={self.number_of_edges()})"


def freeze(graph: Graph) -> FrozenGraph:
    """Return an immutable CSR-carrying snapshot of ``graph``."""
    if isinstance(graph, FrozenGraph):
        return graph
    return FrozenGraph.from_graph(graph)


# ----------------------------------------------------------------------------
# int-indexed kernels
# ----------------------------------------------------------------------------


def csr_multi_source_bfs(
    csr: CSRGraph,
    sources: Sequence[int],
    alive: Optional[bytearray] = None,
) -> tuple[list[int], list[int]]:
    """Multi-source BFS over indices.

    Returns ``(dist, order)`` where ``dist[i]`` is the minimum hop distance
    from any source (``-1`` if unreachable / dead) and ``order`` lists the
    reached indices in discovery order (sources first, in the given order).

    When the optional numpy tier is installed and enabled (see
    :mod:`repro.graph.vec_kernels`) the frontier expansion is vectorised;
    the returned lists — including the discovery order — are identical.
    """
    from . import vec_kernels

    if vec_kernels.vec_enabled():
        return vec_kernels.vec_multi_source_bfs(csr, sources, alive)
    if not sources:
        raise GraphError("csr_multi_source_bfs needs at least one source")
    n = csr.number_of_nodes()
    dist = [-1] * n
    order: list[int] = []
    for source in sources:
        if alive is not None and not alive[source]:
            raise GraphError(f"source node {csr.node_list[source]!r} is not alive")
        if dist[source] == -1:
            dist[source] = 0
            order.append(source)
    adj = csr.adjacency_lists()
    head = 0
    if alive is None:
        while head < len(order):
            node = order[head]
            head += 1
            next_dist = dist[node] + 1
            for neighbor in adj[node]:
                if dist[neighbor] == -1:
                    dist[neighbor] = next_dist
                    order.append(neighbor)
    else:
        while head < len(order):
            node = order[head]
            head += 1
            next_dist = dist[node] + 1
            for neighbor in adj[node]:
                if dist[neighbor] == -1 and alive[neighbor]:
                    dist[neighbor] = next_dist
                    order.append(neighbor)
    return dist, order


def csr_connected_component(
    csr: CSRGraph, start: int, alive: Optional[bytearray] = None
) -> list[int]:
    """Return the indices of ``start``'s connected component in discovery order."""
    _, order = csr_multi_source_bfs(csr, [start], alive=alive)
    return order


def csr_connected_components(
    csr: CSRGraph, alive: Optional[bytearray] = None
) -> list[list[int]]:
    """Return every connected component (as index lists) in first-seen order."""
    n = csr.number_of_nodes()
    seen = bytearray(n)
    components: list[list[int]] = []
    for start in range(n):
        if seen[start] or (alive is not None and not alive[start]):
            continue
        component = csr_connected_component(csr, start, alive=alive)
        for index in component:
            seen[index] = 1
        components.append(component)
    return components


def csr_shortest_path(
    csr: CSRGraph, source: int, target: int, alive: Optional[bytearray] = None
) -> Optional[list[int]]:
    """Return one unweighted shortest path ``source → target`` as indices.

    Mirrors :func:`repro.graph.traversal.shortest_path`: breadth-first with
    first-found parents, neighbours visited in adjacency order, so both
    backends pick the same path among ties.
    """
    if source == target:
        return [source]
    n = csr.number_of_nodes()
    parent = [-1] * n
    parent[source] = source
    queue = [source]
    head = 0
    adj = csr.adjacency_lists()
    while head < len(queue):
        node = queue[head]
        head += 1
        for neighbor in adj[node]:
            if parent[neighbor] != -1 or (alive is not None and not alive[neighbor]):
                continue
            parent[neighbor] = node
            if neighbor == target:
                path = [target]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(neighbor)
    return None


def csr_articulation_points(csr: CSRGraph, alive: Optional[bytearray] = None) -> set[int]:
    """Return the articulation points (as indices) of the alive subgraph.

    Iterative Hopcroft–Tarjan identical in structure to
    :func:`repro.graph.articulation.articulation_points`, but over int arrays:
    discovery / low are flat lists and the DFS stack stores (node, next
    position in the adjacency slice) pairs instead of live iterators.
    """
    n = csr.number_of_nodes()
    adj = csr.adjacency_lists()
    if alive is None:
        alive = b"\x01" * n
    visited = bytearray(n)
    discovery = [0] * n
    low = [0] * n
    parent = [-1] * n
    points: set[int] = set()
    timer = 0

    for root in range(n):
        if visited[root] or not alive[root]:
            continue
        root_children = 0
        visited[root] = 1
        discovery[root] = low[root] = timer
        timer += 1
        # stack of (node, resumable neighbour iterator)
        stack: list[tuple[int, Iterator[int]]] = [(root, iter(adj[root]))]
        while stack:
            node, neighbors = stack[-1]
            advanced = False
            parent_of_node = parent[node]
            low_node = low[node]
            for neighbor in neighbors:
                if not alive[neighbor]:
                    continue
                if not visited[neighbor]:
                    parent[neighbor] = node
                    if node == root:
                        root_children += 1
                    visited[neighbor] = 1
                    discovery[neighbor] = low[neighbor] = timer
                    timer += 1
                    stack.append((neighbor, iter(adj[neighbor])))
                    advanced = True
                    break
                if neighbor != parent_of_node and discovery[neighbor] < low_node:
                    low_node = discovery[neighbor]
            low[node] = low_node
            if advanced:
                continue
            stack.pop()
            if stack:
                parent_node = stack[-1][0]
                if low_node < low[parent_node]:
                    low[parent_node] = low_node
                if parent_node != root and low_node >= discovery[parent_node]:
                    points.add(parent_node)
        if root_children >= 2:
            points.add(root)
    return points


def csr_core_numbers(csr: CSRGraph, alive: Optional[bytearray] = None) -> list[int]:
    """Return the core number of every (alive) node, ``-1`` for dead nodes.

    Linear-time bucket peeling (Batagelj & Zaveršnik) over flat arrays — the
    CSR counterpart of :func:`repro.graph.coreness.core_numbers`, which uses a
    lazy-deletion heap on the dict backend.
    """
    n = csr.number_of_nodes()
    indptr = csr.indptr
    adj = csr.adjacency_lists()
    degree = [0] * n
    max_degree = 0
    for i in range(n):
        if alive is not None and not alive[i]:
            degree[i] = -1
            continue
        if alive is None:
            d = indptr[i + 1] - indptr[i]
        else:
            d = sum(1 for neighbor in adj[i] if alive[neighbor])
        degree[i] = d
        if d > max_degree:
            max_degree = d

    # bucket sort nodes by degree
    bucket_start = [0] * (max_degree + 2)
    for i in range(n):
        if degree[i] >= 0:
            bucket_start[degree[i] + 1] += 1
    for d in range(1, max_degree + 2):
        bucket_start[d] += bucket_start[d - 1]
    position = [0] * n
    ordered = [0] * bucket_start[max_degree + 1]
    cursor = list(bucket_start[: max_degree + 1])
    for i in range(n):
        d = degree[i]
        if d < 0:
            continue
        ordered[cursor[d]] = i
        position[i] = cursor[d]
        cursor[d] += 1

    core = list(degree)
    for index in range(len(ordered)):
        node = ordered[index]
        node_degree = core[node]
        for neighbor in adj[node]:
            if core[neighbor] > node_degree:
                # move neighbor one bucket down: swap it with the first node
                # of its current bucket, then shrink that bucket
                neighbor_degree = core[neighbor]
                neighbor_position = position[neighbor]
                first_position = bucket_start[neighbor_degree]
                first_node = ordered[first_position]
                if neighbor != first_node:
                    ordered[neighbor_position] = first_node
                    ordered[first_position] = neighbor
                    position[first_node] = neighbor_position
                    position[neighbor] = first_position
                bucket_start[neighbor_degree] += 1
                core[neighbor] -= 1
    return core
