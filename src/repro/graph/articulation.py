"""Articulation points (cut vertices) via the Hopcroft–Tarjan DFS-tree rule.

Section 5.2.1 of the paper computes removable nodes as *non-articulation*
nodes using exactly this DFS-tree characterisation:

* the DFS root is an articulation node iff it has at least two DFS children;
* a non-root node ``x`` is an articulation node iff it has a child ``y`` such
  that no node in the subtree rooted at ``y`` has a back edge to a proper
  ancestor of ``x``.

The implementation below is iterative (explicit stack) so it works on graphs
whose DFS depth exceeds Python's recursion limit.
"""

from __future__ import annotations

from .graph import Graph, Node

__all__ = ["articulation_points", "non_articulation_nodes", "biconnected_components"]


def articulation_points(graph: Graph) -> set[Node]:
    """Return the set of articulation points of ``graph``.

    Works per connected component; isolated nodes are never articulation
    points.
    """
    visited: set[Node] = set()
    discovery: dict[Node, int] = {}
    low: dict[Node, int] = {}
    parent: dict[Node, Node] = {}
    points: set[Node] = set()
    timer = 0

    for root in graph.iter_nodes():
        if root in visited:
            continue
        root_children = 0
        # stack of (node, iterator over neighbors)
        stack: list[tuple[Node, iter]] = []
        visited.add(root)
        discovery[root] = low[root] = timer
        timer += 1
        stack.append((root, iter(graph.adjacency(root))))
        while stack:
            node, neighbors = stack[-1]
            advanced = False
            for neighbor in neighbors:
                if neighbor not in visited:
                    parent[neighbor] = node
                    if node == root:
                        root_children += 1
                    visited.add(neighbor)
                    discovery[neighbor] = low[neighbor] = timer
                    timer += 1
                    stack.append((neighbor, iter(graph.adjacency(neighbor))))
                    advanced = True
                    break
                if neighbor != parent.get(node):
                    low[node] = min(low[node], discovery[neighbor])
            if advanced:
                continue
            stack.pop()
            if stack:
                parent_node = stack[-1][0]
                low[parent_node] = min(low[parent_node], low[node])
                if parent_node != root and low[node] >= discovery[parent_node]:
                    points.add(parent_node)
        if root_children >= 2:
            points.add(root)
    return points


def non_articulation_nodes(graph: Graph) -> set[Node]:
    """Return nodes whose removal keeps their component connected."""
    return set(graph.iter_nodes()) - articulation_points(graph)


def biconnected_components(graph: Graph) -> list[set[Node]]:
    """Return the biconnected components (as node sets) of ``graph``.

    Provided for completeness of the substrate (it is the natural companion
    of articulation points and is useful when analysing the peel traces).
    Bridges yield 2-node components; isolated nodes yield singleton
    components.
    """
    visited: set[Node] = set()
    discovery: dict[Node, int] = {}
    low: dict[Node, int] = {}
    parent: dict[Node, Node] = {}
    components: list[set[Node]] = []
    edge_stack: list[tuple[Node, Node]] = []
    timer = 0

    def pop_component(u: Node, v: Node) -> None:
        component: set[Node] = set()
        while edge_stack:
            a, b = edge_stack.pop()
            component.add(a)
            component.add(b)
            if (a, b) == (u, v) or (b, a) == (u, v):
                break
        if component:
            components.append(component)

    for root in graph.iter_nodes():
        if root in visited:
            continue
        if graph.degree(root) == 0:
            components.append({root})
            visited.add(root)
            continue
        visited.add(root)
        discovery[root] = low[root] = timer
        timer += 1
        stack: list[tuple[Node, iter]] = [(root, iter(graph.adjacency(root)))]
        while stack:
            node, neighbors = stack[-1]
            advanced = False
            for neighbor in neighbors:
                if neighbor not in visited:
                    parent[neighbor] = node
                    edge_stack.append((node, neighbor))
                    visited.add(neighbor)
                    discovery[neighbor] = low[neighbor] = timer
                    timer += 1
                    stack.append((neighbor, iter(graph.adjacency(neighbor))))
                    advanced = True
                    break
                if neighbor != parent.get(node) and discovery[neighbor] < discovery[node]:
                    edge_stack.append((node, neighbor))
                    low[node] = min(low[node], discovery[neighbor])
            if advanced:
                continue
            stack.pop()
            if stack:
                parent_node = stack[-1][0]
                low[parent_node] = min(low[parent_node], low[node])
                if low[node] >= discovery[parent_node]:
                    pop_component(parent_node, node)
        if edge_stack:
            component: set[Node] = set()
            while edge_stack:
                a, b = edge_stack.pop()
                component.add(a)
                component.add(b)
            components.append(component)
    return components
