"""Array-backed minimum-cut kernels for the CSR fast path.

The exact ``kecc`` baseline spends its time in recursive Stoer–Wagner
minimum cuts, and the dict implementation pays for a fresh
``graph.copy()`` / ``graph.subgraph()`` (node-object dicts, method-call
overhead, bookkeeping) at every level of the recursion.  The kernels here
speak integer indices end to end:

* :func:`csr_stoer_wagner` — the classic minimum-cut phases on int-keyed
  adjacency dicts built straight from the CSR arrays, with the subview
  renumbered to compact local ids so every per-phase structure is sized to
  the piece, not the snapshot.  It mirrors the dict implementation
  operation for operation (same start node, same lazy heap with a push
  counter, same last-into-second-last contraction, same float-accumulation
  order), so cut weights — and, on a frozen snapshot, the returned side —
  are bit-identical to :func:`repro.graph.connectivity.stoer_wagner_min_cut`;
* :func:`csr_k_edge_connected_components` — the recursive min-cut
  decomposition over index subsets: degree pruning, component splitting and
  the unweighted-test / weighted-split asymmetry of the dict path are all
  replicated on ``alive`` masks over the shared CSR arrays instead of
  per-level ``Graph`` copies.

Subsets are always processed in index order (the source graph's insertion
order), matching the deterministic ordering the dict path uses since PR 2.
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

from .csr import CSRGraph
from .graph import GraphError

__all__ = ["csr_stoer_wagner", "csr_k_edge_connected_components"]


def _induced_adjacency(
    csr: CSRGraph, nodes: Optional[Sequence[int]], unit_weights: bool
) -> tuple[list[int], list[dict[int, float]]]:
    """Return ``(original ids, adjacency)`` of the subview in local ids.

    Local id ``i`` is the ``i``-th entry of ``nodes`` (or CSR index ``i``
    when ``nodes`` is ``None``); adjacency dicts preserve the CSR (= source
    insertion) order, filtered to the subset — the same order the dict path
    sees after ``_induced``.
    """
    indptr = csr.indptr
    indices = csr.indices
    weights = csr.weights
    if nodes is None:
        to_orig = list(range(csr.number_of_nodes()))
        local_of = to_orig
    else:
        to_orig = list(nodes)
        local_of = [-1] * csr.number_of_nodes()
        for local, i in enumerate(to_orig):
            local_of[i] = local
    adjacency: list[dict[int, float]] = []
    for i in to_orig:
        row: dict[int, float] = {}
        for pos in range(indptr[i], indptr[i + 1]):
            local = local_of[indices[pos]]
            if local >= 0:
                row[local] = 1.0 if unit_weights else weights[pos]
        adjacency.append(row)
    return to_orig, adjacency


def csr_stoer_wagner(
    csr: CSRGraph,
    nodes: Optional[Sequence[int]] = None,
    unit_weights: bool = False,
) -> tuple[float, set[int]]:
    """Return ``(cut_weight, one_side)`` of a global minimum cut, as indices.

    ``nodes`` restricts the computation to an induced subview (which must be
    connected); ``unit_weights`` replaces every edge weight with ``1.0`` for
    unweighted-connectivity tests.  Mirrors the dict implementation's phase
    and contraction order exactly.
    """
    to_orig, adjacency = _induced_adjacency(csr, nodes, unit_weights)
    size = len(to_orig)
    if size < 2:
        raise GraphError("minimum cut requires at least two nodes")

    members: list[Optional[list[int]]] = [[i] for i in range(size)]
    alive = bytearray(b"\x01") * size
    # flat per-phase state (validity tracked by the phase stamp): the dict
    # path's `added` set and `weights` dict, as O(1) array slots
    added = bytearray(size)
    weights = [0.0] * size
    in_phase = [0] * size
    stamp = 0
    best_weight = float("inf")
    best_side: list[int] = []

    remaining = size
    while remaining > 1:
        # --- one minimum cut phase -------------------------------------
        current = [i for i in range(size) if alive[i]]
        start = current[0]
        stamp += 1
        for i in current:
            added[i] = 0
        added[start] = 1
        counter = 0
        heap: list[tuple[float, int, int]] = []
        push = heapq.heappush
        for neighbor, weight in adjacency[start].items():
            weights[neighbor] = weight
            in_phase[neighbor] = stamp
            push(heap, (-weight, counter, neighbor))
            counter += 1
        phase_order = [start]
        phase_size = len(current)
        heappop = heapq.heappop
        while len(phase_order) < phase_size:
            while True:
                neg_weight, _, node = heappop(heap)
                if not added[node] and in_phase[node] == stamp and weights[node] == -neg_weight:
                    break
            added[node] = 1
            phase_order.append(node)
            for neighbor, weight in adjacency[node].items():
                if added[neighbor]:
                    continue
                if in_phase[neighbor] == stamp:
                    weight = weights[neighbor] + weight
                weights[neighbor] = weight
                in_phase[neighbor] = stamp
                push(heap, (-weight, counter, neighbor))
                counter += 1
        last = phase_order[-1]
        cut_weight = sum(adjacency[last].values())
        if cut_weight < best_weight:
            best_weight = cut_weight
            best_side = list(members[last])
        # contract the last two nodes added
        second_last = phase_order[-2]
        members[second_last].extend(members[last])
        members[last] = None
        row_second = adjacency[second_last]
        for neighbor, weight in list(adjacency[last].items()):
            if neighbor == second_last:
                continue
            if neighbor in row_second:
                new_weight = row_second[neighbor] + weight
                row_second[neighbor] = new_weight
                adjacency[neighbor][second_last] = new_weight
            else:
                row_second[neighbor] = weight
                adjacency[neighbor][second_last] = weight
        for neighbor in adjacency[last]:
            del adjacency[neighbor][last]
        adjacency[last] = {}
        alive[last] = 0
        remaining -= 1
    return best_weight, {to_orig[i] for i in best_side}


def csr_k_edge_connected_components(
    csr: CSRGraph, k: int, nodes: Optional[Sequence[int]] = None
) -> list[list[int]]:
    """Return the maximal k-edge-connected components of the subview.

    The recursion works on ``alive`` masks over the shared CSR arrays —
    degree-prune, split into connected pieces, test k-connectivity with an
    unweighted cut, otherwise split along a weighted minimum cut — and
    mirrors the dict path's piece ordering, so both backends return the
    same components in the same order.
    """
    if k < 1:
        raise GraphError(f"k must be positive, got {k}")
    n = csr.number_of_nodes()
    adj = csr.adjacency_lists()

    if nodes is None:
        subset = None
        uniform = all(weight == 1.0 for weight in csr.weights)
    else:
        subset = bytearray(n)
        for i in nodes:
            subset[i] = 1
        indptr = csr.indptr
        indices = csr.indices
        csr_weights = csr.weights
        uniform = all(
            csr_weights[pos] == 1.0
            for i in nodes
            for pos in range(indptr[i], indptr[i + 1])
            if subset[indices[pos]]
        )

    # initial pieces: connected components of the subview, in index order
    seen = bytearray(n)
    stack: list[list[int]] = []
    for root in range(n):
        if seen[root] or (subset is not None and not subset[root]):
            continue
        component = [root]
        seen[root] = 1
        head = 0
        while head < len(component):
            node = component[head]
            head += 1
            for neighbor in adj[node]:
                if not seen[neighbor] and (subset is None or subset[neighbor]):
                    seen[neighbor] = 1
                    component.append(neighbor)
        stack.append(sorted(component))

    # shared scratch, reset per piece so each level costs O(|piece|)
    alive = bytearray(n)
    degree = [0] * n
    visited = bytearray(n)
    results: list[list[int]] = []
    while stack:
        piece = stack.pop()
        if len(piece) < 2:
            continue
        for i in piece:
            alive[i] = 1
        for i in piece:
            degree[i] = sum(1 for j in adj[i] if alive[j])
        # quick reject: prune nodes of degree < k first (cheap and sound)
        changed = True
        while changed:
            low = [i for i in piece if alive[i] and degree[i] < k]
            changed = bool(low)
            for i in low:
                alive[i] = 0
                for j in adj[i]:
                    if alive[j]:
                        degree[j] -= 1
        survivors = [i for i in piece if alive[i]]
        if len(survivors) < 2:
            for i in piece:
                alive[i] = 0
                degree[i] = 0
            continue
        pieces: list[list[int]] = []
        for root in survivors:
            if visited[root]:
                continue
            component = [root]
            visited[root] = 1
            head = 0
            while head < len(component):
                node = component[head]
                head += 1
                for neighbor in adj[node]:
                    if alive[neighbor] and not visited[neighbor]:
                        visited[neighbor] = 1
                        component.append(neighbor)
            pieces.append(sorted(component))
        for i in piece:
            alive[i] = 0
            degree[i] = 0
        for i in survivors:
            visited[i] = 0
        if len(pieces) > 1:
            stack.extend(pieces)
            continue
        # unweighted connectivity test: edge multiplicity 1 regardless of
        # weight; on a uniform host its cut doubles as the splitting cut
        cut_weight, side = csr_stoer_wagner(csr, nodes=survivors, unit_weights=True)
        if cut_weight >= k:
            results.append(survivors)
            continue
        if not uniform:
            # weighted split: the unit-weight cut above need not be minimal
            # under the real weights
            _, side = csr_stoer_wagner(csr, nodes=survivors)
        stack.append([i for i in survivors if i in side])
        stack.append([i for i in survivors if i not in side])
    return results
