"""Core undirected weighted graph data structure.

The whole reproduction is built on this small, dependency-free graph class.
It stores an undirected (optionally weighted) simple graph as a
dictionary-of-dictionaries adjacency structure::

    adjacency = {node: {neighbor: weight, ...}, ...}

Nodes may be any hashable object.  Edge weights default to ``1.0`` which
makes the unweighted definitions in the paper a special case of the weighted
ones (Definition 2 of the paper).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

Node = Hashable
Edge = tuple[Node, Node]


class GraphError(Exception):
    """Raised for invalid graph operations (missing nodes, bad edges...)."""


class Graph:
    """An undirected, optionally weighted, simple graph.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` or ``(u, v, weight)`` tuples used to
        initialise the graph.
    nodes:
        Optional iterable of isolated nodes to add up front.

    Examples
    --------
    >>> g = Graph([(1, 2), (2, 3, 2.5)])
    >>> g.number_of_nodes(), g.number_of_edges()
    (3, 2)
    >>> g.degree(2)
    2
    >>> g.weighted_degree(2)
    3.5
    """

    __slots__ = ("_adj", "_num_edges", "_total_weight")

    def __init__(
        self,
        edges: Optional[Iterable[tuple]] = None,
        nodes: Optional[Iterable[Node]] = None,
    ) -> None:
        self._adj: dict[Node, dict[Node, float]] = {}
        self._num_edges: int = 0
        self._total_weight: float = 0.0
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for edge in edges:
                if len(edge) == 2:
                    self.add_edge(edge[0], edge[1])
                elif len(edge) == 3:
                    self.add_edge(edge[0], edge[1], float(edge[2]))
                else:
                    raise GraphError(f"edge tuples must have 2 or 3 items, got {edge!r}")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (no-op if it already exists)."""
        if node not in self._adj:
            self._adj[node] = {}

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add the undirected edge ``(u, v)`` with the given weight.

        Self-loops are rejected (the paper's model is a simple graph).
        Adding an existing edge overwrites its weight.
        """
        if u == v:
            raise GraphError(f"self-loops are not supported (node {u!r})")
        if weight <= 0:
            raise GraphError(f"edge weights must be positive, got {weight}")
        self.add_node(u)
        self.add_node(v)
        if v in self._adj[u]:
            old = self._adj[u][v]
            self._total_weight += weight - old
        else:
            self._num_edges += 1
            self._total_weight += weight
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def add_edges_from(self, edges: Iterable[tuple]) -> None:
        """Add every edge in ``edges`` (2- or 3-tuples)."""
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(edge[0], edge[1])
            else:
                self.add_edge(edge[0], edge[1], float(edge[2]))

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``(u, v)``; raises :class:`GraphError` if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph")
        weight = self._adj[u].pop(v)
        self._adj[v].pop(u)
        self._num_edges -= 1
        self._total_weight -= weight

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._adj:
            raise GraphError(f"node {node!r} is not in the graph")
        for neighbor in list(self._adj[node]):
            self.remove_edge(node, neighbor)
        del self._adj[node]

    def remove_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Remove every node in ``nodes`` (and their incident edges)."""
        for node in nodes:
            self.remove_node(node)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        """Return ``True`` if ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists."""
        return u in self._adj and v in self._adj[u]

    def nodes(self) -> list[Node]:
        """Return the node list (insertion order)."""
        return list(self._adj)

    def iter_nodes(self) -> Iterator[Node]:
        """Iterate over nodes without materialising a list."""
        return iter(self._adj)

    def edges(self) -> list[Edge]:
        """Return each undirected edge exactly once."""
        seen: set[Node] = set()
        result: list[Edge] = []
        for u, neighbors in self._adj.items():
            for v in neighbors:
                if v not in seen:
                    result.append((u, v))
            seen.add(u)
        return result

    def iter_edges(self) -> Iterator[tuple[Node, Node, float]]:
        """Iterate over ``(u, v, weight)`` with each edge reported once."""
        seen: set[Node] = set()
        for u, neighbors in self._adj.items():
            for v, w in neighbors.items():
                if v not in seen:
                    yield (u, v, w)
            seen.add(u)

    def neighbors(self, node: Node) -> list[Node]:
        """Return the neighbours of ``node``."""
        if node not in self._adj:
            raise GraphError(f"node {node!r} is not in the graph")
        return list(self._adj[node])

    def adjacency(self, node: Node) -> Mapping[Node, float]:
        """Return the neighbour→weight mapping of ``node`` (read-only view)."""
        if node not in self._adj:
            raise GraphError(f"node {node!r} is not in the graph")
        return self._adj[node]

    def degree(self, node: Node) -> int:
        """Return the number of neighbours of ``node``."""
        if node not in self._adj:
            raise GraphError(f"node {node!r} is not in the graph")
        return len(self._adj[node])

    def weighted_degree(self, node: Node) -> float:
        """Return the sum of incident edge weights of ``node``.

        The paper calls this the *node weight* (Definition 2).
        """
        if node not in self._adj:
            raise GraphError(f"node {node!r} is not in the graph")
        return sum(self._adj[node].values())

    def edge_weight(self, u: Node, v: Node) -> float:
        """Return the weight of edge ``(u, v)``."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph")
        return self._adj[u][v]

    def number_of_nodes(self) -> int:
        """Return ``|V|``."""
        return len(self._adj)

    def number_of_edges(self) -> int:
        """Return ``|E|``."""
        return self._num_edges

    def total_edge_weight(self) -> float:
        """Return the sum of all edge weights (``w_G`` in Definition 2)."""
        return self._total_weight

    def degree_map(self) -> dict[Node, int]:
        """Return ``{node: degree}`` for all nodes."""
        return {node: len(nbrs) for node, nbrs in self._adj.items()}

    def is_empty(self) -> bool:
        """Return ``True`` when the graph has no nodes."""
        return not self._adj

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the induced subgraph ``G[nodes]`` as a new :class:`Graph`."""
        keep = set(nodes)
        missing = keep - self._adj.keys()
        if missing:
            raise GraphError(f"nodes not in graph: {sorted(map(repr, missing))[:5]}")
        sub = Graph()
        for node in keep:
            sub.add_node(node)
        for node in keep:
            for neighbor, weight in self._adj[node].items():
                if neighbor in keep and not sub.has_edge(node, neighbor):
                    sub.add_edge(node, neighbor, weight)
        return sub

    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        clone = Graph()
        clone._adj = {node: dict(nbrs) for node, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        clone._total_weight = self._total_weight
        return clone

    # ------------------------------------------------------------------
    # CSR fast path
    # ------------------------------------------------------------------
    def freeze(self):
        """Return an immutable snapshot backed by the CSR fast path.

        The returned :class:`~repro.graph.csr.FrozenGraph` behaves like this
        graph for every read operation, rejects mutation, and carries a
        lazily built :class:`~repro.graph.csr.CSRGraph`.  The peeling
        algorithms (``nca`` / ``fpa``) detect frozen inputs and run their
        array-backed kernels instead of the dict ones — build the snapshot
        once and reuse it across queries to amortise the conversion.
        """
        from .csr import FrozenGraph

        return FrozenGraph.from_graph(self)

    def to_csr(self):
        """Return a :class:`~repro.graph.csr.CSRGraph` snapshot of this graph."""
        from .csr import CSRGraph

        return CSRGraph.from_graph(self)

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(|V|={self.number_of_nodes()}, |E|={self.number_of_edges()})"
