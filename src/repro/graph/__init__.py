"""Graph substrate: data structure, traversal, decompositions and generators."""

from .articulation import articulation_points, biconnected_components, non_articulation_nodes
from .components import (
    connected_component_containing,
    connected_components,
    is_connected,
    largest_component,
    nodes_in_same_component,
)
from .connectivity import (
    k_edge_connected_components,
    k_edge_connected_subgraphs,
    stoer_wagner_min_cut,
)
from .coreness import core_numbers, degeneracy_ordering, k_core_subgraph, max_core_number
from .csr import (
    CSRGraph,
    FrozenGraph,
    SharedCache,
    csr_articulation_points,
    csr_connected_component,
    csr_connected_components,
    csr_core_numbers,
    csr_multi_source_bfs,
    csr_shortest_path,
    freeze,
)
from .csr_cut import csr_k_edge_connected_components, csr_stoer_wagner
from .csr_truss import (
    CSREdgeIndex,
    csr_edge_index,
    csr_edge_support,
    csr_k_truss_edges,
    csr_truss_numbers,
)
from .generators import (
    LFRResult,
    barabasi_albert,
    erdos_renyi,
    lfr_benchmark,
    planted_partition,
    powerlaw_sequence,
    ring_of_cliques,
    stochastic_block_model,
)
from .graph import Edge, Graph, GraphError, Node
from .shm import (
    AttachedFrozenGraph,
    SharedSnapshot,
    SnapshotDescriptor,
    attach_frozen,
    live_segment_names,
    share_frozen,
    shared_memory_available,
)
from .index import (
    INDEX_ALGORITHMS,
    INDEX_COMPAT_VERSIONS,
    INDEX_DIR_ENV,
    INDEX_FORMAT_VERSION,
    INDEX_MODES,
    CommunityIndex,
    attach_index,
    build_index,
    dataset_digest,
    default_index_dir,
    index_path,
    load_index,
    save_index,
)
from .index_delta import repair_index
from .io import (
    from_networkx,
    parse_edge_list,
    read_communities,
    read_edge_list,
    to_networkx,
    write_communities,
    write_edge_list,
)
from .steiner import connector_subgraph, query_connector, steiner_tree_nodes
from .traversal import (
    bfs_distances,
    bfs_order,
    diameter,
    dijkstra,
    distance_layers,
    eccentricity,
    multi_source_bfs,
    multi_source_dijkstra,
    shortest_path,
)
from .trussness import (
    edge_support,
    k_truss_subgraph,
    max_truss_number,
    node_truss_numbers,
    truss_numbers,
)

__all__ = [
    # graph
    "Graph",
    "GraphError",
    "Node",
    "Edge",
    # csr fast path
    "CSRGraph",
    "FrozenGraph",
    "SharedCache",
    "freeze",
    "csr_multi_source_bfs",
    "csr_connected_component",
    "csr_connected_components",
    "csr_shortest_path",
    "csr_articulation_points",
    "csr_core_numbers",
    "CSREdgeIndex",
    "csr_edge_index",
    "csr_edge_support",
    "csr_truss_numbers",
    "csr_k_truss_edges",
    "csr_stoer_wagner",
    "csr_k_edge_connected_components",
    # zero-copy shared snapshots
    "AttachedFrozenGraph",
    "SharedSnapshot",
    "SnapshotDescriptor",
    "share_frozen",
    "attach_frozen",
    "shared_memory_available",
    "live_segment_names",
    # community hierarchy index
    "CommunityIndex",
    "build_index",
    "save_index",
    "load_index",
    "attach_index",
    "repair_index",
    "dataset_digest",
    "default_index_dir",
    "index_path",
    "INDEX_FORMAT_VERSION",
    "INDEX_COMPAT_VERSIONS",
    "INDEX_MODES",
    "INDEX_ALGORITHMS",
    "INDEX_DIR_ENV",
    # components
    "connected_components",
    "connected_component_containing",
    "is_connected",
    "nodes_in_same_component",
    "largest_component",
    # articulation
    "articulation_points",
    "non_articulation_nodes",
    "biconnected_components",
    # traversal
    "bfs_distances",
    "bfs_order",
    "multi_source_bfs",
    "dijkstra",
    "multi_source_dijkstra",
    "shortest_path",
    "eccentricity",
    "diameter",
    "distance_layers",
    # coreness / trussness / connectivity
    "core_numbers",
    "k_core_subgraph",
    "max_core_number",
    "degeneracy_ordering",
    "edge_support",
    "truss_numbers",
    "k_truss_subgraph",
    "max_truss_number",
    "node_truss_numbers",
    "stoer_wagner_min_cut",
    "k_edge_connected_components",
    "k_edge_connected_subgraphs",
    # steiner
    "query_connector",
    "steiner_tree_nodes",
    "connector_subgraph",
    # generators
    "erdos_renyi",
    "barabasi_albert",
    "ring_of_cliques",
    "planted_partition",
    "stochastic_block_model",
    "powerlaw_sequence",
    "lfr_benchmark",
    "LFRResult",
    # io
    "read_edge_list",
    "write_edge_list",
    "read_communities",
    "write_communities",
    "parse_edge_list",
    "to_networkx",
    "from_networkx",
]
