"""Precomputed community-hierarchy index: community search as window scans.

The ``kc`` / ``kt`` / ``hightruss`` baselines all answer "the connected
k-core/k-truss community containing the query nodes".  Those communities
form two *laminar* families — every connected component of the k-core is
contained in exactly one component of the (k-1)-core, and likewise for
k-truss node components — so the whole hierarchy can be linearised the way
an XPath pre/post-order index linearises a document tree: order the nodes
so that **every community of every level is one contiguous window** of a
single permutation, and record the windows as flat ``(start, end)`` arrays
grouped by level.  A community-containing-v query then becomes

1. ``pos[v]`` — one array lookup,
2. ``bisect`` over the level's window starts — O(log #communities),
3. a window scan to materialise the member set — O(answer size),

with no peeling, no BFS and no dict adjacency at query time.

:func:`build_index` derives everything offline from the existing CSR/vec
kernels (``csr_core_numbers``, ``csr_truss_numbers``); :func:`save_index` /
:func:`load_index` give the index a versioned on-disk format keyed by a
content digest of the dataset (stale indexes are rejected, see
:meth:`CommunityIndex.bind`); :meth:`CommunityIndex.share` packs the flat
arrays into ONE shared-memory segment via the same region layout the PR 6
snapshots use, so every worker-process replica on a host maps one copy.

Parity discipline: :meth:`CommunityIndex.search` replicates the baseline
code paths *exactly* — same validation order, same failure reasons, same
``CommunityResult`` fields — so an index-served answer is bit-identical to
the executed path (the serving benches assert this under
``--parity-only --index require``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import time
from array import array
from bisect import bisect_right
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any, Optional

from .csr import CSRGraph, FrozenGraph, csr_connected_components, csr_core_numbers, freeze
from .csr_truss import csr_edge_index, csr_truss_numbers
from .graph import Graph, GraphError, Node

__all__ = [
    "CommunityIndex",
    "build_index",
    "save_index",
    "load_index",
    "attach_index",
    "dataset_digest",
    "default_index_dir",
    "index_path",
    "INDEX_FORMAT_VERSION",
    "INDEX_COMPAT_VERSIONS",
    "INDEX_MODES",
    "INDEX_ALGORITHMS",
    "INDEX_DIR_ENV",
    "INDEX_SEGMENT_TAG",
]

#: bump when the on-disk layout changes; unknown versions are rejected with
#: a "rebuild" error instead of being misread.
INDEX_FORMAT_VERSION = 2

#: older on-disk versions this build still reads.  v1 files lack the edge
#: hierarchy (``edge_*`` / ``kecc_label`` regions), so ``huang2015`` and
#: ``kecc`` fall through to the executed path while kc/kt/hightruss keep
#: their fast path — the serving stats surface the reason.
INDEX_COMPAT_VERSIONS = (1, INDEX_FORMAT_VERSION)

#: the algorithms an index can serve (everything else takes the executed
#: path).  ``huang2015`` and ``kecc`` need the v2 edge hierarchy.
INDEX_ALGORITHMS = ("kc", "kt", "hightruss", "huang2015", "kecc")

#: serving-side index policy: ``auto`` uses an index when a fresh one exists,
#: ``require`` refuses to build a shard without one, ``off`` never loads one.
INDEX_MODES = ("auto", "require", "off")

#: environment variable naming the directory index files live in.
INDEX_DIR_ENV = "REPRO_INDEX_DIR"

#: default index directory (relative to the working directory).
DEFAULT_INDEX_DIRNAME = ".repro-index"

#: segment-name tag (after ``SEGMENT_PREFIX``) marking index segments, so
#: leak scans that glob the shared prefix cover them while tests can still
#: count snapshot and index segments separately.
INDEX_SEGMENT_TAG = "idx_"

_MAGIC = b"REPROIDX"

#: every flat region of the index uses one typecode (signed long: node
#: indices, permutation positions, window bounds, core/truss levels).
_FIELD_TYPECODE = "l"

_FIELDS_V1 = (
    "node_core",
    "node_truss",
    "core_order",
    "core_pos",
    "core_ptr",
    "core_start",
    "core_end",
    "truss_order",
    "truss_pos",
    "truss_ptr",
    "truss_start",
    "truss_end",
)

#: v2 edge-hierarchy regions: the canonical per-edge-id endpoint pairs and
#: truss numbers (what the incremental repair diffs against, and what seeds
#: ``huang2015``), plus the flat per-core-level kecc class labels
#: (``core_kmax * nodes`` longs, level k at offset ``(k-1)*nodes``; -1 = not
#: in the k-core or a partition singleton, -2 = candidate above the cap).
_FIELDS_EDGE = ("edge_eu", "edge_ev", "edge_truss", "kecc_label")

_FIELDS = _FIELDS_V1 + _FIELDS_EDGE


def _fields_for_version(version: int) -> tuple[str, ...]:
    return _FIELDS_V1 if version < 2 else _FIELDS


def default_index_dir() -> Path:
    """The directory index files live in (``$REPRO_INDEX_DIR`` or a default)."""
    env = os.environ.get(INDEX_DIR_ENV)
    return Path(env) if env else Path(DEFAULT_INDEX_DIRNAME)


def index_path(dataset: str, index_dir: Optional[os.PathLike | str] = None) -> Path:
    """The canonical on-disk location of ``dataset``'s index file."""
    base = Path(index_dir) if index_dir is not None else default_index_dir()
    return base / f"{dataset}.idx"


def _array_bytes(values) -> bytes:
    return values.tobytes()


def dataset_digest(frozen: FrozenGraph) -> str:
    """Content digest of a snapshot: exact CSR bytes plus node identities.

    Any change to the node set, the edge set, weights, or even insertion
    order (which the kernels' tie-breaks observe) changes the digest, so a
    digest match guarantees the index's stored answers are the answers this
    snapshot's kernels would compute.
    """
    csr = frozen.csr
    h = hashlib.sha256()
    h.update(b"repro-dataset-digest-v1\x00")
    h.update(struct.pack(">qq", len(csr.node_list), csr.num_edges))
    h.update(_array_bytes(csr.indptr))
    h.update(_array_bytes(csr.indices))
    h.update(_array_bytes(csr.weights))
    for node in csr.node_list:
        h.update(repr(node).encode("utf-8", "backslashreplace"))
        h.update(b"\x00")
    return h.hexdigest()


# ----------------------------------------------------------------------
# offline build
# ----------------------------------------------------------------------
def _truss_level_components(csr: CSRGraph, edge_id, truss, inc_max, k: int):
    """Connected components of the k-truss, as node-index lists.

    A node belongs to the k-truss iff it keeps at least one incident edge
    with truss number >= k (``inc_max``), and two members are connected
    iff a path of such edges joins them — plain alive-node BFS would be
    wrong here, because two k-truss components may touch through an edge
    that itself did not survive the peel.  First-seen node order, matching
    ``connected_components`` on the filtered subgraph.
    """
    indptr, indices = csr.indptr, csr.indices
    n = len(inc_max)
    seen = bytearray(n)
    components = []
    for start in range(n):
        if seen[start] or inc_max[start] < k:
            continue
        seen[start] = 1
        component = [start]
        head = 0
        while head < len(component):
            i = component[head]
            head += 1
            for pos in range(indptr[i], indptr[i + 1]):
                if truss[edge_id[pos]] >= k:
                    j = indices[pos]
                    if not seen[j]:
                        seen[j] = 1
                        component.append(j)
        components.append(component)
    return components


def _laminar_order(n: int, levels) -> tuple[array, array]:
    """Permutation making every component of every level one contiguous run.

    Each node gets the tuple of its component labels per level (coarsest
    first, ``-1`` where it left the hierarchy); sorting by that tuple
    groups every component — laminarity means all members share their full
    label prefix and nothing outside the component does.
    """
    labels = []
    for components in levels:
        level_label = array(_FIELD_TYPECODE, bytes(0))
        level_label.extend([-1] * n)
        for comp_id, component in enumerate(components):
            for i in component:
                level_label[i] = comp_id
        labels.append(level_label)
    order = array(
        _FIELD_TYPECODE,
        sorted(range(n), key=lambda i: tuple(label[i] for label in labels)),
    )
    pos = array(_FIELD_TYPECODE, [0] * n)
    for p, i in enumerate(order):
        pos[i] = p
    return order, pos


def _level_windows(pos, levels) -> tuple[array, array, array]:
    """Flatten per-level component windows, sorted by start within a level."""
    ptr = array(_FIELD_TYPECODE, [0])
    starts = array(_FIELD_TYPECODE)
    ends = array(_FIELD_TYPECODE)
    for components in levels:
        windows = []
        for component in components:
            lo = min(pos[i] for i in component)
            hi = max(pos[i] for i in component) + 1
            if hi - lo != len(component):  # pragma: no cover - build invariant
                raise GraphError(
                    "community hierarchy is not laminar; index build aborted"
                )
            windows.append((lo, hi))
        windows.sort()
        for lo, hi in windows:
            starts.append(lo)
            ends.append(hi)
        ptr.append(len(starts))
    return ptr, starts, ends


def _inc_max_truss(csr: CSRGraph, edge_id, truss) -> array:
    """Max incident surviving truss per node; 1 = "not even in the 2-truss".

    Isolated nodes are dropped by every k-truss but still belong to the
    plain connected-component level the hightruss fallback uses.
    """
    indptr = csr.indptr
    n = len(csr.node_list)
    inc_max = array(_FIELD_TYPECODE, [1] * n)
    for i in range(n):
        best = 1
        for pos in range(indptr[i], indptr[i + 1]):
            t = truss[edge_id[pos]]
            if t > best:
                best = t
        inc_max[i] = best
    return inc_max


def _kecc_labels(
    frozen: FrozenGraph, core_levels, cap: int
) -> tuple[array, list[int]]:
    """Flat per-core-level kecc class labels (see ``_FIELDS_EDGE``).

    Level ``k`` (1..core_kmax) occupies ``[(k-1)*n, k*n)``.  Each level-k
    core component up to ``cap`` nodes is partitioned into its
    k-edge-connected components (through the memoised baseline partition, so
    a later executed ``kecc`` query reuses the entry); labels are numbered
    canonically — candidates in first-seen (min-member-index) order, classes
    within a candidate by min member index — which makes the numbering a
    pure function of the graph content, the property the incremental repair
    relies on to reuse labels bit-identically.
    """
    from ..baselines.kecc import _kecc_partition

    csr = frozen.csr
    node_list = csr.node_list
    index_of = csr.index_of
    n = len(node_list)
    labels = array(_FIELD_TYPECODE, bytes(0))
    counts: list[int] = []
    for level in core_levels[1:]:
        level_labels = array(_FIELD_TYPECODE, [-1] * n)
        next_label = 0
        for component in level:
            if len(component) > cap:
                for i in component:
                    level_labels[i] = -2
                continue
            candidate = {node_list[i] for i in component}
            classes = [
                sorted(index_of[node] for node in cls)
                for cls in _kecc_partition(frozen, candidate, len(counts) + 1)
            ]
            classes.sort(key=lambda members: members[0])
            for members in classes:
                for i in members:
                    level_labels[i] = next_label
                next_label += 1
        labels.extend(level_labels)
        counts.append(next_label)
    return labels, counts


def _assemble_index(
    frozen: FrozenGraph,
    core,
    edge_index,
    truss,
    *,
    dataset: str = "?",
    started: Optional[float] = None,
) -> "CommunityIndex":
    """Linearise precomputed decompositions into a :class:`CommunityIndex`.

    ``core`` / ``edge_index`` / ``truss`` are the kernel outputs for
    ``frozen`` — :func:`build_index` derives them from scratch, the epoch
    manager hands in the incrementally maintained ones, and the repair path
    in :mod:`repro.graph.index_delta` goes through the same code so a
    repaired index is bit-identical to a rebuilt one by construction.
    """
    if started is None:
        started = time.perf_counter()
    from ..baselines.kecc import KECC_APPROXIMATE_ABOVE

    csr = frozen.csr
    node_list = csr.node_list
    n = len(node_list)
    edge_id = edge_index.edge_id

    inc_max = _inc_max_truss(csr, edge_id, truss)
    node_truss = array(_FIELD_TYPECODE, (b if b >= 2 else 2 for b in inc_max))
    node_core = array(_FIELD_TYPECODE, core)

    core_kmax = max(core, default=0)
    truss_kmax = max(inc_max, default=1)

    core_levels = []
    for k in range(core_kmax + 1):
        alive = None if k == 0 else bytearray(1 if c >= k else 0 for c in core)
        core_levels.append(csr_connected_components(csr, alive=alive))

    # truss level 0 is the plain connected components (isolated nodes
    # included) — the hightruss fallback's "whole component at level 2";
    # level index k-1 holds the k-truss components for k = 2..kmax.
    truss_levels = [csr_connected_components(csr)]
    for k in range(2, truss_kmax + 1):
        truss_levels.append(_truss_level_components(csr, edge_id, truss, inc_max, k))

    kecc_label, kecc_counts = _kecc_labels(frozen, core_levels, KECC_APPROXIMATE_ABOVE)
    return _finish_index(
        frozen,
        core_levels,
        truss_levels,
        fields={
            "node_core": node_core,
            "node_truss": node_truss,
            "edge_eu": array(_FIELD_TYPECODE, edge_index.eu),
            "edge_ev": array(_FIELD_TYPECODE, edge_index.ev),
            "edge_truss": array(_FIELD_TYPECODE, truss),
            "kecc_label": kecc_label,
        },
        kecc_counts=kecc_counts,
        dataset=dataset,
        started=started,
    )


def _finish_index(
    frozen: FrozenGraph,
    core_levels,
    truss_levels,
    *,
    fields: dict[str, Any],
    kecc_counts: list[int],
    dataset: str,
    started: float,
) -> "CommunityIndex":
    """Shared tail of build and repair: linearise, window, stamp the meta."""
    from ..baselines.kecc import KECC_APPROXIMATE_ABOVE

    csr = frozen.csr
    n = len(csr.node_list)
    core_order, core_pos = _laminar_order(n, core_levels)
    core_ptr, core_start, core_end = _level_windows(core_pos, core_levels)
    truss_order, truss_pos = _laminar_order(n, truss_levels)
    truss_ptr, truss_start, truss_end = _level_windows(truss_pos, truss_levels)

    meta: dict[str, Any] = {
        "format_version": INDEX_FORMAT_VERSION,
        "digest": dataset_digest(frozen),
        "dataset": dataset,
        "nodes": n,
        "edges": csr.num_edges,
        "core_kmax": len(core_levels) - 1,
        "truss_kmax": len(truss_levels) if len(truss_levels) > 1 else 1,
        "core_counts": [len(level) for level in core_levels],
        "truss_counts": [len(level) for level in truss_levels],
        "kecc_cap": KECC_APPROXIMATE_ABOVE,
        "kecc_counts": list(kecc_counts),
        "build_seconds": time.perf_counter() - started,
    }
    fields = dict(fields)
    fields.update(
        {
            "core_order": core_order,
            "core_pos": core_pos,
            "core_ptr": core_ptr,
            "core_start": core_start,
            "core_end": core_end,
            "truss_order": truss_order,
            "truss_pos": truss_pos,
            "truss_ptr": truss_ptr,
            "truss_start": truss_start,
            "truss_end": truss_end,
        }
    )
    index = CommunityIndex(meta, list(csr.node_list), fields)
    index._index_of = csr.index_of
    return index


def build_index(graph: Graph, *, dataset: str = "?") -> "CommunityIndex":
    """Derive the full community-hierarchy index of ``graph`` offline.

    Runs one core decomposition, one truss decomposition (both through the
    CSR kernels, vectorised when the numpy tier is enabled), one component
    sweep per hierarchy level and one kecc partition per small-enough core
    component, then linearises both node families.
    """
    started = time.perf_counter()
    frozen = freeze(graph)
    csr = frozen.csr
    core = csr_core_numbers(csr)
    edge_index = csr_edge_index(csr)
    truss = csr_truss_numbers(csr, edge_index)
    return _assemble_index(
        frozen, core, edge_index, truss, dataset=dataset, started=started
    )


def _rebuild_index(meta, node_list, fields) -> "CommunityIndex":
    """Unpickle target for a non-attached index (plain arrays travel)."""
    return CommunityIndex(meta, node_list, fields)


class CommunityIndex:
    """The loaded (or attached) window index of one dataset.

    ``fields`` holds the flat arrays — plain ``array('l')`` when built or
    loaded from disk, read-only memoryviews into a shared segment when
    attached.  The query surface (:meth:`serves` / :meth:`search`) is the
    same either way.
    """

    __slots__ = ("meta", "node_list", "_fields", "_index_of", "_shm", "_descriptor", "_detached")

    def __init__(
        self,
        meta: dict[str, Any],
        node_list: list[Node],
        fields: Mapping[str, Any],
        *,
        shm=None,
        descriptor=None,
    ) -> None:
        self.meta = meta
        self.node_list = node_list
        self._fields = dict(fields)
        self._index_of: Optional[dict[Node, int]] = None
        self._shm = shm
        self._descriptor = descriptor
        self._detached = False

    # -- identity ------------------------------------------------------
    @property
    def digest(self) -> str:
        return self.meta["digest"]

    @property
    def dataset(self) -> str:
        return self.meta["dataset"]

    @property
    def attached(self) -> bool:
        """True when the arrays are views into a shared segment."""
        return self._shm is not None and not self._detached

    @property
    def index_of(self) -> dict[Node, int]:
        if self._index_of is None:
            self._index_of = {node: i for i, node in enumerate(self.node_list)}
        return self._index_of

    @property
    def format_version(self) -> int:
        return self.meta.get("format_version", 1)

    @property
    def field_names(self) -> tuple[str, ...]:
        """The regions this index's format version carries."""
        return _fields_for_version(self.format_version)

    def served_algorithms(self) -> tuple[str, ...]:
        """The algorithms this index serves at their default parameters."""
        return tuple(name for name in INDEX_ALGORITHMS if self.serves(name, {}))

    def bind(
        self, frozen: FrozenGraph, *, epoch: Optional[int] = None
    ) -> "CommunityIndex":
        """Verify the digest against ``frozen`` and adopt its node mapping.

        Raises :class:`GraphError` when the dataset content has changed
        since the index was built — a stale index must never answer.  Pass
        ``epoch`` on epochal datasets so the error names the snapshot the
        index fell behind (the same hint on every surface, in-process or
        wire).
        """
        actual = dataset_digest(frozen)
        if actual != self.digest:
            suffix = f" (current epoch {epoch})" if epoch is not None else ""
            error = GraphError(
                f"index for dataset {self.dataset!r} is stale: it was built for "
                f"content digest {self.digest[:12]} but the dataset now has "
                f"{actual[:12]}; rebuild it with "
                f"'repro index build {self.dataset}'{suffix}"
            )
            # machine-readable cause: the serving tier's auto-index mode
            # reports this compact reason instead of the full message when
            # an evolving dataset outgrows its index (repro.dynamic)
            error.reason = "stale"
            raise error
        self._index_of = frozen.csr.index_of
        return self

    def describe(self) -> dict[str, Any]:
        """Inspection summary: versions, digest, sizes, per-k community counts."""
        meta = self.meta
        itemsize = array(_FIELD_TYPECODE).itemsize
        region_bytes = {name: len(values) * itemsize for name, values in self._fields.items()}
        truss_counts: dict[str, int] = {"cc": meta["truss_counts"][0]}
        for level, count in enumerate(meta["truss_counts"][1:], start=2):
            truss_counts[str(level)] = count
        return {
            "format_version": meta["format_version"],
            "digest": meta["digest"],
            "dataset": meta["dataset"],
            "nodes": meta["nodes"],
            "edges": meta["edges"],
            "core_kmax": meta["core_kmax"],
            "truss_kmax": meta["truss_kmax"],
            "core_communities": {str(k): c for k, c in enumerate(meta["core_counts"])},
            "truss_communities": truss_counts,
            # v2 edge hierarchy (None/{} on a v1 file: those regions are absent)
            "kecc_cap": meta.get("kecc_cap"),
            "kecc_communities": {
                str(k): c for k, c in enumerate(meta.get("kecc_counts", ()), start=1)
            },
            "serves": list(self.served_algorithms()),
            "region_bytes": region_bytes,
            "total_bytes": sum(region_bytes.values()),
            "build_seconds": meta.get("build_seconds", 0.0),
        }

    # -- zero-copy sharing --------------------------------------------
    def share(self):
        """Pack the flat arrays into one shared segment (owner-side handle).

        Same region layout and lifecycle as the CSR snapshots: the caller
        ships ``handle.descriptor`` to workers, workers call
        :func:`attach_index`, and the owner eventually ``unlink()``s.
        """
        from .shm import share_regions

        fields = {
            name: self._as_array(name) for name in self.field_names
        }
        payload = pickle.dumps(
            (self.meta, self.node_list), protocol=pickle.HIGHEST_PROTOCOL
        )
        return share_regions(fields, payload, tag=INDEX_SEGMENT_TAG)

    def _as_array(self, name: str) -> array:
        values = self._fields[name]
        if isinstance(values, array):
            return values
        return array(_FIELD_TYPECODE, values)

    def detach(self) -> None:
        """Release shared views and drop this process's mapping (idempotent)."""
        if self._shm is None or self._detached:
            return
        self._detached = True
        for values in self._fields.values():
            if isinstance(values, memoryview):
                values.release()
        self._fields = {}
        try:
            self._shm.close()
        except BufferError:  # a caller still holds a view; exit will reap it
            pass

    def __del__(self):
        try:
            self.detach()
        except Exception:  # noqa: BLE001 - never raise from a finalizer
            pass

    def __reduce__(self):
        if self.attached:
            return (attach_index, (self._descriptor,))
        fields = {name: self._as_array(name) for name in self.field_names}
        return (_rebuild_index, (self.meta, self.node_list, fields))

    def __repr__(self) -> str:
        kind = "attached" if self.attached else "local"
        return (
            f"CommunityIndex({self.dataset!r}, |V|={self.meta['nodes']}, "
            f"core_kmax={self.meta['core_kmax']}, truss_kmax={self.meta['truss_kmax']}, {kind})"
        )

    # -- query surface -------------------------------------------------
    def serves(self, algorithm: str, params: Mapping[str, Any]) -> bool:
        """Can this index answer ``algorithm`` with ``params`` bit-identically?

        Conservative by design: anything but a plain-int ``k`` (or no
        params at all) falls back to the executed path, which also owns
        producing the errors for genuinely malformed parameters.
        ``huang2015`` and ``kecc`` additionally need the v2 edge-hierarchy
        regions, so a v1 file keeps serving kc/kt/hightruss while those two
        fall through.
        """
        if algorithm in ("kc", "kt"):
            if not params:
                return True
            if set(params) != {"k"}:
                return False
            k = params["k"]
            return isinstance(k, int) and not isinstance(k, bool)
        if algorithm == "hightruss":
            return not params
        if algorithm == "huang2015":
            return not params and self.format_version >= 2
        if algorithm == "kecc":
            if self.format_version < 2:
                return False
            from ..baselines.kecc import KECC_APPROXIMATE_ABOVE

            # the stored partitions bake in the approximation crossover;
            # serve only when it matches the executed default
            if self.meta.get("kecc_cap") != KECC_APPROXIMATE_ABOVE:
                return False
            if not params:
                return True
            if set(params) != {"k"}:
                return False
            k = params["k"]
            # k < 1 stays executed: k_edge_connected_components owns that error
            return isinstance(k, int) and not isinstance(k, bool) and k >= 1
        return False

    def search(
        self,
        algorithm: str,
        query_nodes: Sequence[Node],
        *,
        graph: Optional[Graph] = None,
        **params,
    ):
        """Answer one community-containing-v query from the windows.

        ``graph`` is the live (frozen) snapshot the index is bound to; only
        ``huang2015`` needs it — its greedy shrink phase genuinely inspects
        the graph, the index contributes the phase-1 seed.
        """
        if algorithm == "kc":
            return self._core_search(query_nodes, **params)
        if algorithm == "kt":
            return self._truss_search(query_nodes, **params)
        if algorithm == "hightruss":
            return self._highest_truss(query_nodes, **params)
        if algorithm == "huang2015":
            return self._closest_truss(query_nodes, graph, **params)
        if algorithm == "kecc":
            return self._kecc_search(query_nodes, **params)
        raise GraphError(f"index cannot serve algorithm {algorithm!r}")

    def _validate(self, query_nodes: Sequence[Node]) -> frozenset:
        queries = frozenset(query_nodes)
        if not queries:
            raise GraphError("community search needs at least one query node")
        index_of = self.index_of
        for node in queries:
            if node not in index_of:
                raise GraphError(f"query node {node!r} is not in the graph")
        return queries

    def _window(self, family: str, level: int, p: int):
        """The ``(start, end)`` window containing position ``p``, or ``None``."""
        ptr = self._fields[family + "_ptr"]
        starts = self._fields[family + "_start"]
        lo, hi = ptr[level], ptr[level + 1]
        i = bisect_right(starts, p, lo, hi) - 1
        if i < lo:
            return None
        end = self._fields[family + "_end"][i]
        if end <= p:
            return None
        return starts[i], end

    def _scan(self, family: str, window: tuple[int, int]) -> frozenset:
        order = self._fields[family + "_order"]
        node_list = self.node_list
        return frozenset(node_list[order[i]] for i in range(window[0], window[1]))

    def _core_search(self, query_nodes: Sequence[Node], k: int = 3):
        from ..core.result import CommunityResult

        started = time.perf_counter()
        queries = self._validate(query_nodes)
        if k < 0:  # same validation (and message) as k_core_subgraph
            raise GraphError(f"k must be non-negative, got {k}")
        index_of = self.index_of
        pos = self._fields["core_pos"]
        if k <= self.meta["core_kmax"]:
            windows = {node: self._window("core", k, pos[index_of[node]]) for node in queries}
        else:
            windows = {node: None for node in queries}
        missing = [node for node in queries if windows[node] is None]
        if missing:
            return CommunityResult.empty(
                queries, "kc", reason=f"query nodes {missing!r} are not in the {k}-core"
            )
        first = windows[next(iter(queries))]
        if any(window != first for window in windows.values()):
            return CommunityResult.empty(
                queries, "kc", reason="query nodes lie in different components of the k-core"
            )
        nodes = self._scan("core", first)
        elapsed = time.perf_counter() - started
        return CommunityResult(
            nodes=nodes,
            query_nodes=queries,
            algorithm="kc",
            score=float(k),
            objective_name="min_degree",
            elapsed_seconds=elapsed,
            extra={"k": k},
        )

    def _truss_search(self, query_nodes: Sequence[Node], k: int = 4):
        from ..core.result import CommunityResult

        started = time.perf_counter()
        queries = self._validate(query_nodes)
        if k < 2:  # same validation (and message) as k_truss_subgraph
            raise GraphError(f"k must be at least 2 for a k-truss, got {k}")
        index_of = self.index_of
        pos = self._fields["truss_pos"]
        if 2 <= k <= self.meta["truss_kmax"]:
            level = k - 1
            windows = {
                node: self._window("truss", level, pos[index_of[node]]) for node in queries
            }
        else:
            windows = {node: None for node in queries}
        missing = [node for node in queries if windows[node] is None]
        if missing:
            return CommunityResult.empty(
                queries, "kt", reason=f"query nodes {missing!r} are not in the {k}-truss"
            )
        first = windows[next(iter(queries))]
        if any(window != first for window in windows.values()):
            return CommunityResult.empty(
                queries, "kt", reason="query nodes lie in different components of the k-truss"
            )
        nodes = self._scan("truss", first)
        elapsed = time.perf_counter() - started
        return CommunityResult(
            nodes=nodes,
            query_nodes=queries,
            algorithm="kt",
            score=float(k),
            objective_name="truss_level",
            elapsed_seconds=elapsed,
            extra={"k": k},
        )

    def _agreed_window(self, family: str, level: int, positions):
        """The window all ``positions`` share at ``level``, or ``None``."""
        first = None
        for p in positions:
            window = self._window(family, level, p)
            if window is None or (first is not None and window != first):
                return None
            first = window
        return first

    def _highest_truss(self, query_nodes: Sequence[Node]):
        from ..core.result import CommunityResult

        started = time.perf_counter()
        queries = self._validate(query_nodes)
        index_of = self.index_of
        node_truss = self._fields["node_truss"]
        pos = self._fields["truss_pos"]
        positions = [pos[index_of[node]] for node in queries]
        upper = min(node_truss[index_of[node]] for node in queries)
        for k in range(upper, 2, -1):
            first = self._agreed_window("truss", k - 1, positions)
            if first is None:
                continue
            elapsed = time.perf_counter() - started
            return CommunityResult(
                nodes=self._scan("truss", first),
                query_nodes=queries,
                algorithm="hightruss",
                score=float(k),
                objective_name="truss_level",
                elapsed_seconds=elapsed,
                extra={"k": k},
            )
        # level 0: the whole connected component, no triangle constraint
        first = self._agreed_window("truss", 0, positions)
        if first is not None:
            elapsed = time.perf_counter() - started
            return CommunityResult(
                nodes=self._scan("truss", first),
                query_nodes=queries,
                algorithm="hightruss",
                score=2.0,
                objective_name="truss_level",
                elapsed_seconds=elapsed,
                extra={"k": 2},
            )
        return CommunityResult.empty(queries, "hightruss", reason="queries are disconnected")

    def _closest_truss(self, query_nodes: Sequence[Node], graph: Optional[Graph]):
        """``huang2015`` with the phase-1 seed read off the truss windows.

        Phase 1 of the executed baseline walks ``ktruss_structure`` down
        from the trussness upper bound — exactly the per-level truss node
        components these windows store.  Phase 2 (the greedy shrink) runs
        the *same* baseline helper on the live graph, so the answer is
        bit-identical to the executed path by construction.
        """
        from ..baselines.closest_truss import _greedy_shrink
        from ..core.result import CommunityResult

        started = time.perf_counter()
        queries = self._validate(query_nodes)
        if graph is None:
            raise GraphError(
                "index search for 'huang2015' needs the live graph "
                "for its greedy phase"
            )
        index_of = self.index_of
        node_truss = self._fields["node_truss"]
        pos = self._fields["truss_pos"]
        positions = [pos[index_of[node]] for node in queries]
        upper = min(node_truss[index_of[node]] for node in queries)
        base = None
        for k in range(upper, 2, -1):
            window = self._agreed_window("truss", k - 1, positions)
            if window is not None:
                base = (k, window)
                break
        if base is None:
            # fall back to the plain connected component (truss level 2)
            window = self._agreed_window("truss", 0, positions)
            if window is not None:
                base = (2, window)
        if base is None:
            return CommunityResult.empty(
                queries, "huang2015", reason="no connected truss contains all query nodes"
            )
        k, window = base
        community = set(self._scan("truss", window))
        best_nodes, best_distance, deletions = _greedy_shrink(
            graph, queries, k, community, None
        )
        elapsed = time.perf_counter() - started
        return CommunityResult(
            nodes=frozenset(best_nodes),
            query_nodes=queries,
            algorithm="huang2015",
            score=float(k),
            objective_name="truss_level",
            elapsed_seconds=elapsed,
            extra={"k": k, "query_distance": best_distance, "deletions": deletions},
        )

    def _kecc_search(self, query_nodes: Sequence[Node], k: Optional[int] = None):
        """``kecc`` from the core windows plus the stored per-level labels."""
        from ..baselines.kecc import KECC_DEFAULT_K
        from ..core.result import CommunityResult

        started = time.perf_counter()
        queries = self._validate(query_nodes)
        if k is None:
            k = KECC_DEFAULT_K
        index_of = self.index_of
        pos = self._fields["core_pos"]
        # the degree-<k pruned components ARE the level-k core components
        if 1 <= k <= self.meta["core_kmax"]:
            windows = [self._window("core", k, pos[index_of[node]]) for node in queries]
        else:
            windows = [None]
        if any(window is None for window in windows):
            return CommunityResult.empty(
                queries, "kecc", reason=f"query nodes do not survive degree-{k} pruning"
            )
        first = windows[0]
        if any(window != first for window in windows):
            return CommunityResult.empty(
                queries, "kecc", reason="query nodes lie in different pruned components"
            )
        lo, hi = first
        if hi - lo > self.meta["kecc_cap"]:
            elapsed = time.perf_counter() - started
            return CommunityResult(
                nodes=self._scan("core", first),
                query_nodes=queries,
                algorithm="kecc",
                score=float(k),
                objective_name="edge_connectivity",
                elapsed_seconds=elapsed,
                extra={"k": k, "approximate": True},
            )
        labels = self._fields["kecc_label"]
        base = (k - 1) * self.meta["nodes"]
        query_labels = {labels[base + index_of[node]] for node in queries}
        label = next(iter(query_labels))
        if len(query_labels) == 1 and label >= 0:
            order = self._fields["core_order"]
            node_list = self.node_list
            nodes = frozenset(
                node_list[order[p]]
                for p in range(lo, hi)
                if labels[base + order[p]] == label
            )
            elapsed = time.perf_counter() - started
            return CommunityResult(
                nodes=nodes,
                query_nodes=queries,
                algorithm="kecc",
                score=float(k),
                objective_name="edge_connectivity",
                elapsed_seconds=elapsed,
                extra={"k": k, "approximate": False},
            )
        return CommunityResult.empty(
            queries, "kecc", reason=f"no {k}-edge-connected component contains all query nodes"
        )


# ----------------------------------------------------------------------
# on-disk format
# ----------------------------------------------------------------------
def save_index(index: CommunityIndex, path: os.PathLike | str) -> Path:
    """Write ``index`` to ``path`` in the versioned container format.

    Layout: magic, 8-byte big-endian header length, pickled header dict
    (format version, digest, region table), then the 8-byte-aligned flat
    regions and the pickled ``(meta, node_list)`` tail — the same blob
    layout :func:`share_regions` uses, so loading is one read + casts.
    The write goes through a temp file and ``os.replace`` so a crashed
    build never leaves a truncated index behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    fields = {name: index._as_array(name) for name in index.field_names}
    payload = pickle.dumps((index.meta, index.node_list), protocol=pickle.HIGHEST_PROTOCOL)

    from .shm import _pad  # single source of truth for region alignment

    regions: dict[str, tuple[str, int, int]] = {}
    chunks: list[tuple[int, bytes]] = []
    offset = 0
    for name, values in fields.items():
        blob = values.tobytes()
        regions[name] = (values.typecode, offset, len(values))
        chunks.append((offset, blob))
        offset = _pad(offset + len(blob))
    payload_offset = offset
    chunks.append((offset, payload))
    blob_length = offset + len(payload)

    header = {
        "format_version": index.meta["format_version"],
        "digest": index.meta["digest"],
        "dataset": index.meta["dataset"],
        "regions": regions,
        "payload_offset": payload_offset,
        "payload_length": len(payload),
        "blob_length": blob_length,
    }
    header_bytes = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)

    blob = bytearray(blob_length)
    for start, chunk in chunks:
        blob[start : start + len(chunk)] = chunk

    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack(">Q", len(header_bytes)))
        handle.write(header_bytes)
        handle.write(bytes(blob))
    os.replace(tmp, path)
    return path


def load_index(
    path: os.PathLike | str,
    frozen: Optional[FrozenGraph] = None,
    *,
    epoch: Optional[int] = None,
) -> CommunityIndex:
    """Load an index file; verify it against ``frozen`` when given.

    Raises :class:`FileNotFoundError` when there is no index at ``path``
    (callers in ``auto`` mode treat that as "serve executed"), and
    :class:`GraphError` for corrupt files, unsupported format versions and
    stale digests — production surfaces turn those into structured errors,
    never tracebacks.  ``epoch`` rides into :meth:`CommunityIndex.bind` so
    a stale-digest error on an epochal dataset names the current epoch.
    """
    path = Path(path)
    data = path.read_bytes()  # FileNotFoundError propagates deliberately

    def corrupt(detail: str) -> GraphError:
        return GraphError(
            f"index file {str(path)!r} is corrupt ({detail}); "
            f"rebuild it with 'repro index build'"
        )

    if len(data) < len(_MAGIC) + 8:
        raise corrupt("truncated before header")
    if data[: len(_MAGIC)] != _MAGIC:
        raise corrupt("bad magic; not a repro index file")
    (header_length,) = struct.unpack_from(">Q", data, len(_MAGIC))
    header_start = len(_MAGIC) + 8
    if len(data) < header_start + header_length:
        raise corrupt("truncated header")
    try:
        header = pickle.loads(data[header_start : header_start + header_length])
        if not isinstance(header, dict):
            raise ValueError("header is not a dict")
        version = header["format_version"]
        regions = header["regions"]
        payload_offset = header["payload_offset"]
        payload_length = header["payload_length"]
        blob_length = header["blob_length"]
    except GraphError:
        raise
    except Exception as exc:  # noqa: BLE001 - any parse failure is corruption
        raise corrupt(f"unreadable header: {exc}") from None
    if version not in INDEX_COMPAT_VERSIONS:
        supported = ", ".join(str(v) for v in INDEX_COMPAT_VERSIONS)
        raise GraphError(
            f"index file {str(path)!r} has format version {version!r} but this "
            f"build reads versions {supported}; rebuild it with "
            f"'repro index build'"
        )
    blob_start = header_start + header_length
    if len(data) < blob_start + blob_length:
        raise corrupt("truncated data")
    try:
        fields: dict[str, array] = {}
        for name, (typecode, offset, count) in regions.items():
            values = array(typecode)
            nbytes = count * values.itemsize
            values.frombytes(data[blob_start + offset : blob_start + offset + nbytes])
            if len(values) != count:
                raise ValueError(f"region {name} truncated")
            fields[name] = values
        meta, node_list = pickle.loads(
            data[blob_start + payload_offset : blob_start + payload_offset + payload_length]
        )
        for name in _fields_for_version(version):
            if name not in fields:
                raise ValueError(f"region {name} missing")
    except Exception as exc:  # noqa: BLE001
        raise corrupt(f"unreadable regions: {exc}") from None

    index = CommunityIndex(meta, node_list, fields)
    if frozen is not None:
        index.bind(frozen, epoch=epoch)
    return index


def attach_index(descriptor) -> CommunityIndex:
    """Map a shared index segment read-only (zero-copy) by descriptor.

    Raises :class:`GraphError` when the segment no longer exists (the
    owner unlinked it or crashed); workers treat that like a failed
    snapshot attach.
    """
    from .shm import attach_regions

    shm, views, payload = attach_regions(descriptor)
    try:
        meta, node_list = pickle.loads(payload)
    except BaseException:
        for view in views.values():
            view.release()
        shm.close()
        raise
    return CommunityIndex(meta, node_list, views, shm=shm, descriptor=descriptor)
