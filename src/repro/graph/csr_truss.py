"""Array-backed truss kernels for the CSR fast path.

The dict-backed truss decomposition (:mod:`repro.graph.trussness`) pays a
Python hash lookup — and, before PR 2, two ``repr()`` calls — per edge touch,
which made the ``kt`` / ``hightruss`` / ``huang2015`` baselines the dominant
cost of batched sweeps.  This module is the CSR counterpart:

* :class:`CSREdgeIndex` — a per-snapshot numbering of the undirected edges
  (one id per edge, in the exact order :meth:`Graph.iter_edges` yields them)
  with endpoint arrays, a position→edge-id map and per-node neighbour→edge-id
  dicts for O(1) triangle lookups;
* :func:`csr_edge_support` — triangle counting via merge-based neighbour
  intersection over sorted ``indices`` (each triangle found once at its
  lowest-ranked edge, then credited to all three edges);
* :func:`csr_truss_numbers` — bucket-queue truss peeling that removes the
  minimum-support edge first, breaking ties in the same order as the dict
  path's lazy heap (buckets are FIFO in decrement order, which is exactly
  the heap's ``(support, counter)`` order), so both backends peel the same
  edge sequence;
* :func:`csr_k_truss_edges` — the ``k``-truss as a kept-edge mask, derived
  from the truss numbers (an edge is in the ``k``-truss iff its truss number
  is at least ``k``).

Every kernel accepts an optional ``alive`` node mask so the ``within=...``
variants of the truss API can run on induced subviews without materialising
a mutable copy.
"""

from __future__ import annotations

from array import array
from typing import Optional

from .csr import CSRGraph

__all__ = [
    "CSREdgeIndex",
    "csr_edge_index",
    "csr_edge_support",
    "csr_truss_numbers",
    "csr_k_truss_edges",
]


class CSREdgeIndex:
    """Edge numbering of a :class:`CSRGraph` (built once, reused by kernels).

    Edge ids follow :meth:`Graph.iter_edges` order — each undirected edge is
    numbered at the adjacency row of whichever endpoint appears first in the
    node order — so dict-keyed and id-indexed edge results line up without
    any sorting.
    """

    __slots__ = ("num_edges", "eu", "ev", "edge_id", "edge_of", "incident", "_vec_cache")

    def __init__(self, csr: CSRGraph) -> None:
        indptr = csr.indptr
        indices = csr.indices
        n = csr.number_of_nodes()
        eu = array("l")
        ev = array("l")
        edge_id = array("l", [0] * len(indices))
        # neighbour → edge id, one dict per node (both orientations)
        edge_of: list[dict[int, int]] = [{} for _ in range(n)]
        # (edge id, neighbour) pairs per node, in adjacency order — the hot
        # peel loop unpacks one tuple per edge touch instead of indexing
        # three arrays
        incident: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        next_id = 0
        for i in range(n):
            row_edge_of = edge_of[i]
            row_incident = incident[i]
            for pos in range(indptr[i], indptr[i + 1]):
                j = indices[pos]
                if i < j:
                    eu.append(i)
                    ev.append(j)
                    row_edge_of[j] = next_id
                    edge_of[j][i] = next_id
                    edge_id[pos] = next_id
                    row_incident.append((next_id, j))
                    next_id += 1
                else:
                    eid = edge_of[i][j]
                    edge_id[pos] = eid
                    row_incident.append((eid, j))
        self.num_edges = next_id
        self.eu = eu
        self.ev = ev
        self.edge_id = edge_id
        self.edge_of = edge_of
        self.incident = incident
        self._vec_cache = None  # numpy edge tables (vec_kernels)


def csr_edge_index(csr: CSRGraph) -> CSREdgeIndex:
    """Build the edge numbering of ``csr`` (callers should cache the result)."""
    return CSREdgeIndex(csr)


def _alive_degrees(
    csr: CSRGraph, alive: Optional[bytearray]
) -> list[int]:
    """Per-node degree restricted to the alive subgraph (-1 for dead nodes)."""
    n = csr.number_of_nodes()
    if alive is None:
        indptr = csr.indptr
        return [indptr[i + 1] - indptr[i] for i in range(n)]
    adj = csr.adjacency_lists()
    return [
        sum(1 for j in adj[i] if alive[j]) if alive[i] else -1 for i in range(n)
    ]


def csr_edge_support(
    csr: CSRGraph,
    index: Optional[CSREdgeIndex] = None,
    alive: Optional[bytearray] = None,
) -> list[int]:
    """Return per-edge triangle counts, indexed by edge id.

    Edges with a dead endpoint get support ``-1``.  Triangles are listed by
    merge-intersecting the *sorted, higher-ranked* neighbour lists of each
    edge's endpoints (rank = (degree, index), the standard orientation that
    makes the sweep near-linear on sparse graphs); each triangle found this
    way is credited to all three of its edges.

    Support values are order-free triangle counts, so when the optional
    numpy tier is enabled the count comes from the vectorised kernel —
    the returned list is identical either way.
    """
    if index is None:
        index = csr_edge_index(csr)
    from . import vec_kernels

    if vec_kernels.vec_enabled():
        return vec_kernels.vec_edge_support(csr, index, alive)
    n = csr.number_of_nodes()
    m = index.num_edges
    adj = csr.adjacency_lists()
    degree = _alive_degrees(csr, alive)
    # rank nodes by (degree, index); orient every edge low → high rank
    by_rank = sorted(range(n), key=lambda i: (degree[i], i))
    rank = [0] * n
    for order, i in enumerate(by_rank):
        rank[i] = order
    # forward adjacency: each node's higher-ranked alive neighbours, sorted by
    # rank — built in one sweep over nodes in rank order (each node appends
    # itself to its lower-ranked neighbours, so every row comes out sorted)
    forward: list[list[int]] = [[] for _ in range(n)]
    forward_ranks: list[list[int]] = [[] for _ in range(n)]
    for order, w in enumerate(by_rank):
        if degree[w] < 0:
            continue
        for j in adj[w]:
            if rank[j] < order and degree[j] >= 0:
                forward[j].append(w)
                forward_ranks[j].append(order)
    support = [0] * m
    eu = index.eu
    ev = index.ev
    edge_of = index.edge_of
    for e in range(m):
        u = eu[e]
        v = ev[e]
        if degree[u] < 0 or degree[v] < 0:
            support[e] = -1
            continue
        if rank[u] > rank[v]:
            u, v = v, u
        nodes_a = forward[u]
        ranks_a = forward_ranks[u]
        ranks_b = forward_ranks[v]
        # merge-based intersection: both lists are sorted by rank
        ia = ib = 0
        len_a = len(ranks_a)
        len_b = len(ranks_b)
        edge_of_u = edge_of[u]
        edge_of_v = edge_of[v]
        count = 0
        while ia < len_a and ib < len_b:
            ra = ranks_a[ia]
            rb = ranks_b[ib]
            if ra < rb:
                ia += 1
            elif rb < ra:
                ib += 1
            else:
                # triangle (u, v, w): credit all three edges
                w = nodes_a[ia]
                count += 1
                support[edge_of_u[w]] += 1
                support[edge_of_v[w]] += 1
                ia += 1
                ib += 1
        support[e] += count
    return support


def csr_truss_numbers(
    csr: CSRGraph,
    index: Optional[CSREdgeIndex] = None,
    alive: Optional[bytearray] = None,
    support: Optional[list[int]] = None,
) -> list[int]:
    """Return the truss number of every alive edge (``-1`` for dead edges).

    Bucket-queue peeling: edges live in FIFO buckets keyed by current
    support, entries are appended when an edge's support drops, and stale
    entries are skipped lazily — the pop order is therefore exactly the dict
    path's ``(support, push counter)`` heap order, including tie-breaks.
    Triangle updates mirror the dict path too: the lower-degree endpoint's
    surviving adjacency is scanned in CSR (= insertion) order and, for each
    common neighbour ``w``, the ``(u, w)`` edge is decremented before
    ``(v, w)``.

    Truss numbers are order-independent, so when the optional numpy tier
    is enabled the values come from the level-synchronous vectorised peel
    — the returned list is identical either way.

    ``support`` optionally seeds the peel with already-known per-edge-id
    triangle counts (the dynamic tier maintains them incrementally across
    epochs), skipping the triangle-counting pass — the dominant cost.  The
    seed must equal what :func:`csr_edge_support` would return; the peel is
    a pure function of the supports, so the result is identical.
    """
    if index is None:
        index = csr_edge_index(csr)
    if support is None:
        from . import vec_kernels

        if vec_kernels.vec_enabled():
            return vec_kernels.vec_truss_numbers(csr, index, alive)
    m = index.num_edges
    truss = [-1] * m
    if m == 0:
        return truss
    # the peel mutates its support list, so never the caller's seed
    support = list(support) if support is not None else csr_edge_support(csr, index, alive)
    degree = _alive_degrees(csr, alive)
    eu = index.eu
    ev = index.ev
    edge_of = index.edge_of
    # shallow row copy: lazy compaction below replaces rows rather than
    # mutating them, so the index's shared lists stay pristine
    incident = list(index.incident)

    removed = bytearray(m)
    remaining = 0
    max_support = 0
    for e in range(m):
        sup = support[e]
        if sup < 0:
            removed[e] = 1
        else:
            remaining += 1
            if sup > max_support:
                max_support = sup
    buckets: list[list[int]] = [[] for _ in range(max_support + 1)]
    for e in range(m):
        if not removed[e]:
            buckets[support[e]].append(e)
    heads = [0] * (max_support + 1)

    k = 2
    cursor = 0
    while remaining:
        # pop the minimum-support edge (FIFO within a bucket, skip stale entries)
        bucket = buckets[cursor]
        head = heads[cursor]
        try:
            edge = bucket[head]
        except IndexError:
            cursor += 1
            continue
        heads[cursor] = head + 1
        if removed[edge] or support[edge] != cursor:
            continue
        if cursor + 2 > k:
            k = cursor + 2
        truss[edge] = k
        removed[edge] = 1
        remaining -= 1
        u = eu[edge]
        v = ev[edge]
        if degree[u] > degree[v]:
            u, v = v, u
        degree[u] -= 1
        degree[v] -= 1
        # surviving common neighbours, in u's adjacency order; the (u, w)
        # edge's support drops before (v, w)'s, matching the dict path
        edge_of_v = edge_of[v]
        row = incident[u]
        dead = 0
        for uw, w in row:
            if removed[uw]:
                dead += 1
                continue
            vw = edge_of_v.get(w, -1)
            if vw < 0 or removed[vw]:
                continue
            new_support = support[uw] - 1
            support[uw] = new_support
            buckets[new_support].append(uw)
            if new_support < cursor:
                cursor = new_support
            new_support = support[vw] - 1
            support[vw] = new_support
            buckets[new_support].append(vw)
            if new_support < cursor:
                cursor = new_support
        if dead * 2 >= len(row):
            # drop dead entries (order-preserving, so peel order is unchanged)
            incident[u] = [pair for pair in row if not removed[pair[0]]]
    return truss


def csr_k_truss_edges(
    csr: CSRGraph,
    k: int,
    index: Optional[CSREdgeIndex] = None,
    alive: Optional[bytearray] = None,
    truss: Optional[list[int]] = None,
) -> bytearray:
    """Return a per-edge-id mask of the edges in the ``k``-truss.

    An edge belongs to the maximal ``k``-truss iff its truss number is at
    least ``k``; pass a precomputed ``truss`` list (e.g. the memoised full
    decomposition of a frozen graph) to make this a plain O(|E|) filter.
    """
    if index is None:
        index = csr_edge_index(csr)
    if truss is None:
        truss = csr_truss_numbers(csr, index, alive)
    return bytearray(1 if value >= k else 0 for value in truss)
