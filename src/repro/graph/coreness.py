"""k-core decomposition.

The k-core based community-search baselines of the paper (``kc`` and
``highcore``) and the query-set generation procedure both rely on the core
decomposition.  The decomposition below is the linear-time bucket peeling of
Batagelj & Zaveršnik.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from .graph import Graph, GraphError, Node

__all__ = ["core_numbers", "k_core_subgraph", "max_core_number", "degeneracy_ordering"]


def core_numbers(graph: Graph) -> dict[Node, int]:
    """Return the core number (coreness) of every node.

    The core number of ``v`` is the largest ``k`` such that ``v`` belongs to
    a subgraph whose minimum degree is at least ``k``.  The implementation is
    the classic minimum-degree peel with a lazy-deletion heap, which runs in
    ``O(|E| log |V|)``.
    """
    import heapq

    degrees = graph.degree_map()
    if not degrees:
        return {}
    current = dict(degrees)
    counter = 0
    heap = []
    for node, degree in degrees.items():
        heap.append((degree, counter, node))
        counter += 1
    heapq.heapify(heap)
    removed: set[Node] = set()
    core: dict[Node, int] = {}
    k = 0
    while heap:
        degree, _, node = heapq.heappop(heap)
        if node in removed or current[node] != degree:
            continue
        k = max(k, degree)
        core[node] = k
        removed.add(node)
        for neighbor in graph.adjacency(node):
            if neighbor not in removed:
                current[neighbor] -= 1
                heapq.heappush(heap, (current[neighbor], counter, neighbor))
                counter += 1
    return core


def degeneracy_ordering(graph: Graph) -> list[Node]:
    """Return a degeneracy ordering (smallest-degree-first peel order)."""
    import heapq

    degrees = graph.degree_map()
    order: list[Node] = []
    removed: set[Node] = set()
    counter = 0
    heap = []
    for node, degree in degrees.items():
        heap.append((degree, counter, node))
        counter += 1
    heapq.heapify(heap)
    current = dict(degrees)
    while heap:
        degree, _, node = heapq.heappop(heap)
        if node in removed or current[node] != degree:
            continue
        removed.add(node)
        order.append(node)
        for neighbor in graph.adjacency(node):
            if neighbor not in removed:
                current[neighbor] -= 1
                heapq.heappush(heap, (current[neighbor], counter, neighbor))
                counter += 1
    return order


def k_core_subgraph(graph: Graph, k: int, within: Optional[Iterable[Node]] = None) -> Graph:
    """Return the maximal subgraph whose minimum degree is at least ``k``.

    Parameters
    ----------
    graph:
        Input graph.
    k:
        Minimum-degree threshold; must be non-negative.
    within:
        Optional node subset: the k-core is computed on the induced
        subgraph ``graph[within]``.
    """
    if k < 0:
        raise GraphError(f"k must be non-negative, got {k}")
    working = graph.subgraph(within) if within is not None else graph.copy()
    changed = True
    while changed:
        low = [node for node in working.iter_nodes() if working.degree(node) < k]
        changed = bool(low)
        working.remove_nodes_from(low)
    return working


def max_core_number(graph: Graph) -> int:
    """Return the degeneracy of the graph (largest core number)."""
    core = core_numbers(graph)
    return max(core.values()) if core else 0
