"""repro — a reproduction of *DMCS: Density Modularity based Community Search* (SIGMOD 2022).

The package is organised as:

* :mod:`repro.graph` — the graph substrate (data structure, traversal,
  decompositions, generators, IO);
* :mod:`repro.modularity` — community goodness functions, including the
  paper's density modularity;
* :mod:`repro.core` — the DMCS algorithms (NCA, FPA and their variants);
* :mod:`repro.baselines` — the community-search / detection baselines the
  paper compares against;
* :mod:`repro.metrics` — NMI, ARI, F-score, centralities;
* :mod:`repro.datasets` — built-in and surrogate datasets;
* :mod:`repro.experiments` — the benchmark harness reproducing the paper's
  tables and figures;
* :mod:`repro.serving` — the sharded async query-serving subsystem
  (``repro serve``) built on frozen snapshots.

Quickstart
----------
>>> from repro import fpa, datasets
>>> karate = datasets.load_karate()
>>> result = fpa(karate.graph, query_nodes=[0])
>>> 0 in result.nodes
True
"""

from . import baselines, core, datasets, experiments, graph, metrics, modularity, serving
from .core import CommunityResult, fpa, fpa_search, nca, nca_search
from .graph import Graph, GraphError
from .modularity import classic_modularity, density_modularity

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphError",
    "CommunityResult",
    "fpa",
    "fpa_search",
    "nca",
    "nca_search",
    "classic_modularity",
    "density_modularity",
    "graph",
    "modularity",
    "core",
    "baselines",
    "metrics",
    "datasets",
    "experiments",
    "serving",
    "__version__",
]
