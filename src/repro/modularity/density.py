"""Density modularity: the paper's new community-goodness function.

Definition 2 (weighted):

    DM(G, C) = 1/|C| * (w_C - d_C^2 / (4 w_G))

where ``w_C`` is the sum of internal edge weights, ``d_C`` the sum of node
weights (weighted degrees) and ``w_G`` the total edge weight of the graph.

For an unweighted graph this reduces to

    DM(G, C) = 1/(2|C|) * (2 l_C - d_C^2 / (2|E|)).

This module also provides the peeling-time helpers of Section 5.3:

* :func:`updated_density_modularity` (Definition 5) — DM after removing one
  node;
* :func:`density_modularity_gain` (Definition 6) — Λ, the rank-equivalent
  shortcut used by NCA;
* :func:`density_ratio` (Definition 7) — Θ = d_v / k_{v,S}, the *stable*
  objective used by FPA.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graph import Graph, GraphError, Node
from .classic import (
    internal_edge_count,
    internal_edge_weight,
    total_degree,
    total_weighted_degree,
)

__all__ = [
    "density_modularity",
    "updated_density_modularity",
    "density_modularity_gain",
    "density_ratio",
    "edges_to_subgraph",
    "graph_density",
    "CommunityStatistics",
]


class CommunityStatistics:
    """Incrementally maintained statistics of a community under node removal.

    The peeling algorithms repeatedly evaluate DM on shrinking subgraphs.
    Recomputing ``l_C`` and ``d_C`` from scratch at every step would cost
    ``O(|E|)`` per removal; this helper maintains them in
    ``O(deg(removed node))`` instead.

    Attributes
    ----------
    size: current number of nodes in the community.
    internal_edges: current number (or total weight) of internal edges.
    degree_sum: sum of *original-graph* degrees (or node weights) of members.
    """

    __slots__ = ("graph", "members", "size", "internal_edges", "degree_sum", "weighted")

    def __init__(self, graph: Graph, members: Iterable[Node], weighted: bool = False) -> None:
        self.graph = graph
        self.members = set(members)
        if not self.members:
            raise GraphError("community must contain at least one node")
        self.weighted = weighted
        self.size = len(self.members)
        if weighted:
            self.internal_edges = internal_edge_weight(graph, self.members)
            self.degree_sum = total_weighted_degree(graph, self.members)
        else:
            self.internal_edges = float(internal_edge_count(graph, self.members))
            self.degree_sum = float(total_degree(graph, self.members))

    def remove(self, node: Node) -> None:
        """Remove ``node`` from the community, updating statistics in place."""
        if node not in self.members:
            raise GraphError(f"node {node!r} is not in the community")
        self.members.discard(node)
        self.size -= 1
        if self.weighted:
            lost = sum(
                weight
                for neighbor, weight in self.graph.adjacency(node).items()
                if neighbor in self.members
            )
            self.internal_edges -= lost
            self.degree_sum -= self.graph.weighted_degree(node)
        else:
            lost = sum(1 for neighbor in self.graph.adjacency(node) if neighbor in self.members)
            self.internal_edges -= lost
            self.degree_sum -= self.graph.degree(node)

    def density_modularity(self) -> float:
        """Return DM of the current community.

        The unweighted branch performs the exact float-operation sequence of
        :func:`repro.core.objectives.objective_from_scalars` so dict and CSR
        peels stay bit-identical.
        """
        if self.size == 0:
            raise GraphError("community is empty")
        if self.weighted:
            w_g = self.graph.total_edge_weight()
            d_c = self.degree_sum
            return (self.internal_edges - (d_c * d_c) / (4.0 * w_g)) / self.size
        num_edges = self.graph.number_of_edges()
        d_c = self.degree_sum
        numerator = 2.0 * self.internal_edges - (d_c * d_c) / (2.0 * num_edges)
        return numerator / (2.0 * self.size)


def density_modularity(graph: Graph, community: Iterable[Node], weighted: bool = False) -> float:
    """Return the density modularity ``DM(G, C)`` (Definition 2).

    Parameters
    ----------
    graph:
        The host graph ``G`` (degrees and totals are taken here).
    community:
        The node set ``C``; must be non-empty and contained in ``graph``.
    weighted:
        Use edge weights / node weights instead of counts / degrees.
    """
    members = set(community)
    if not members:
        raise GraphError("community must contain at least one node")
    if weighted:
        w_g = graph.total_edge_weight()
        if w_g == 0:
            raise GraphError("graph has no edges; density modularity is undefined")
        w_c = internal_edge_weight(graph, members)
        d_c = total_weighted_degree(graph, members)
        return (w_c - (d_c * d_c) / (4.0 * w_g)) / len(members)
    num_edges = graph.number_of_edges()
    if num_edges == 0:
        raise GraphError("graph has no edges; density modularity is undefined")
    l_c = internal_edge_count(graph, members)
    d_c = total_degree(graph, members)
    return (2.0 * l_c - (d_c * d_c) / (2.0 * num_edges)) / (2.0 * len(members))


def edges_to_subgraph(graph: Graph, node: Node, members: Iterable[Node]) -> int:
    """Return ``k_{v,S}``: the number of edges from ``node`` into ``members``."""
    member_set = set(members)
    return sum(1 for neighbor in graph.adjacency(node) if neighbor in member_set)


def updated_density_modularity(graph: Graph, community: Iterable[Node], node: Node) -> float:
    """Return DM of ``community \\ {node}`` (Definition 5).

    Written exactly as the paper's formula:

        (l_S - k_{v,S}) / (|S| - 1) - (d_S - d_v)^2 / (4 |E| (|S| - 1))
    """
    members = set(community)
    if node not in members:
        raise GraphError(f"node {node!r} is not in the community")
    if len(members) < 2:
        raise GraphError("cannot remove a node from a singleton community")
    num_edges = graph.number_of_edges()
    l_s = internal_edge_count(graph, members)
    d_s = total_degree(graph, members)
    k_v = edges_to_subgraph(graph, node, members - {node})
    d_v = graph.degree(node)
    remaining = len(members) - 1
    return (l_s - k_v) / remaining - ((d_s - d_v) ** 2) / (4.0 * num_edges * remaining)


def density_modularity_gain(graph: Graph, community: Iterable[Node], node: Node) -> float:
    """Return the density modularity gain ``Λ`` of removing ``node`` (Definition 6).

        Λ_S^v = -4 |E| k_{v,S} + 2 d_S d_v - d_v^2

    Larger Λ means removing ``node`` keeps a larger density modularity
    (the fixed terms dropped from Definition 5 do not affect the ranking of
    candidate nodes within one iteration).
    """
    members = set(community)
    if node not in members:
        raise GraphError(f"node {node!r} is not in the community")
    num_edges = graph.number_of_edges()
    k_v = edges_to_subgraph(graph, node, members - {node})
    d_v = graph.degree(node)
    d_s = total_degree(graph, members)
    return -4.0 * num_edges * k_v + 2.0 * d_s * d_v - float(d_v) ** 2


def density_ratio(graph: Graph, community: Iterable[Node], node: Node) -> float:
    """Return the density ratio ``Θ = d_v / k_{v,S}`` (Definition 7).

    ``d_v`` is the degree of ``node`` in the *original* graph and ``k_{v,S}``
    the number of its edges into the current community.  Nodes with no edge
    into the community get ``Θ = +inf`` (they are the best candidates to
    remove, being completely peripheral).
    """
    members = set(community)
    if node not in members:
        raise GraphError(f"node {node!r} is not in the community")
    k_v = edges_to_subgraph(graph, node, members - {node})
    d_v = graph.degree(node)
    if k_v == 0:
        return float("inf")
    return d_v / k_v


def graph_density(graph: Graph, community: Iterable[Node] | None = None) -> float:
    """Return the classic graph density ``|E[C]| / |C|`` (Khuller & Saha).

    With ``community=None`` the density of the whole graph is returned.
    """
    if community is None:
        n = graph.number_of_nodes()
        if n == 0:
            raise GraphError("graph has no nodes; density is undefined")
        return graph.number_of_edges() / n
    members = set(community)
    if not members:
        raise GraphError("community must contain at least one node")
    return internal_edge_count(graph, members) / len(members)
