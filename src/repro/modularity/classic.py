"""Classic (Newman–Girvan) modularity of a single community and of a partition.

Definition 1 of the paper: for a community ``C`` of graph ``G = (V, E)``,

    CM(G, C) = 1 / (2|E|) * (2 l_C - d_C^2 / (2|E|))

where ``l_C`` is the number of internal edges of ``G[C]`` and ``d_C`` is the
sum of the degrees (taken in ``G``) of the nodes in ``C``.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graph import Graph, GraphError, Node

__all__ = [
    "internal_edge_count",
    "internal_edge_weight",
    "total_degree",
    "total_weighted_degree",
    "classic_modularity",
    "partition_modularity",
]


def internal_edge_count(graph: Graph, community: Iterable[Node]) -> int:
    """Return ``l_C``, the number of edges with both endpoints in ``community``."""
    members = set(community)
    count = 0
    for node in members:
        if not graph.has_node(node):
            raise GraphError(f"node {node!r} is not in the graph")
        for neighbor in graph.adjacency(node):
            if neighbor in members:
                count += 1
    return count // 2


def internal_edge_weight(graph: Graph, community: Iterable[Node]) -> float:
    """Return ``w_C``, the total weight of edges internal to ``community``."""
    members = set(community)
    weight = 0.0
    for node in members:
        if not graph.has_node(node):
            raise GraphError(f"node {node!r} is not in the graph")
        for neighbor, w in graph.adjacency(node).items():
            if neighbor in members:
                weight += w
    return weight / 2.0


def total_degree(graph: Graph, community: Iterable[Node]) -> int:
    """Return ``d_C``, the sum over ``community`` of degrees taken in ``graph``."""
    return sum(graph.degree(node) for node in set(community))


def total_weighted_degree(graph: Graph, community: Iterable[Node]) -> float:
    """Return the sum of weighted degrees (node weights) of ``community``."""
    return sum(graph.weighted_degree(node) for node in set(community))


def classic_modularity(graph: Graph, community: Iterable[Node], weighted: bool = False) -> float:
    """Return the classic modularity ``CM(G, C)`` of a single community.

    With ``weighted=True`` edge weights replace edge counts and node weights
    replace degrees, mirroring the weighted form of Definition 2.
    """
    members = set(community)
    if not members:
        raise GraphError("community must contain at least one node")
    if weighted:
        total = graph.total_edge_weight()
        if total == 0:
            raise GraphError("graph has no edges; classic modularity is undefined")
        w_c = internal_edge_weight(graph, members)
        d_c = total_weighted_degree(graph, members)
        return (1.0 / (2.0 * total)) * (2.0 * w_c - (d_c * d_c) / (2.0 * total))
    num_edges = graph.number_of_edges()
    if num_edges == 0:
        raise GraphError("graph has no edges; classic modularity is undefined")
    l_c = internal_edge_count(graph, members)
    d_c = total_degree(graph, members)
    return (1.0 / (2.0 * num_edges)) * (2.0 * l_c - (d_c * d_c) / (2.0 * num_edges))


def partition_modularity(
    graph: Graph, communities: Iterable[Iterable[Node]], weighted: bool = False
) -> float:
    """Return the modularity of a disjoint partition (sum over communities).

    This is the objective maximised by the community *detection* baselines
    (CNM, GN, Louvain).  The communities must be disjoint; overlapping input
    raises :class:`GraphError`.
    """
    seen: set[Node] = set()
    total = 0.0
    for community in communities:
        members = set(community)
        if members & seen:
            raise GraphError("partition_modularity requires disjoint communities")
        seen |= members
        total += classic_modularity(graph, members, weighted=weighted)
    return total
