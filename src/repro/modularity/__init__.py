"""Community goodness functions: classic, density and generalized modularity."""

from .classic import (
    classic_modularity,
    internal_edge_count,
    internal_edge_weight,
    partition_modularity,
    total_degree,
    total_weighted_degree,
)
from .density import (
    CommunityStatistics,
    density_modularity,
    density_modularity_gain,
    density_ratio,
    edges_to_subgraph,
    graph_density,
    updated_density_modularity,
)
from .generalized import (
    generalized_modularity_density,
    partition_generalized_modularity_density,
)

__all__ = [
    "classic_modularity",
    "partition_modularity",
    "internal_edge_count",
    "internal_edge_weight",
    "total_degree",
    "total_weighted_degree",
    "density_modularity",
    "updated_density_modularity",
    "density_modularity_gain",
    "density_ratio",
    "edges_to_subgraph",
    "graph_density",
    "CommunityStatistics",
    "generalized_modularity_density",
    "partition_generalized_modularity_density",
]
