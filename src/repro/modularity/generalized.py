"""Generalized modularity density (Guo, Singh & Bassler, 2020).

Figure 12 of the paper compares FPA's subgraph-selection objective against
the *generalized modularity density* ``Q_g``.  For a community ``C`` with
resolution parameter ``chi`` the per-community contribution is

    Q_g(C) = (2 l_C - d_C^2 / (2|E|)) / (2 |E|) * (2 l_C / (|C| (|C| - 1)))^chi

i.e. the classic modularity term scaled by the internal link density raised
to ``chi``.  ``chi = 0`` recovers classic modularity; larger ``chi``
penalises sparse communities, which mitigates the resolution limit.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graph import Graph, GraphError, Node
from .classic import internal_edge_count, total_degree

__all__ = ["generalized_modularity_density", "partition_generalized_modularity_density"]


def generalized_modularity_density(
    graph: Graph, community: Iterable[Node], chi: float = 1.0
) -> float:
    """Return the generalized modularity density of a single community.

    Parameters
    ----------
    graph:
        Host graph.
    community:
        Node set of the community (non-empty).
    chi:
        Resolution exponent; ``0`` gives classic modularity, ``1`` is the
        default used in the paper's Figure 12 comparison.
    """
    members = set(community)
    if not members:
        raise GraphError("community must contain at least one node")
    num_edges = graph.number_of_edges()
    if num_edges == 0:
        raise GraphError("graph has no edges; generalized modularity density is undefined")
    l_c = internal_edge_count(graph, members)
    d_c = total_degree(graph, members)
    size = len(members)
    base = (2.0 * l_c - (d_c * d_c) / (2.0 * num_edges)) / (2.0 * num_edges)
    if size == 1:
        internal_density = 0.0
    else:
        internal_density = 2.0 * l_c / (size * (size - 1))
    if chi == 0:
        return base
    return base * (internal_density**chi)


def partition_generalized_modularity_density(
    graph: Graph, communities: Iterable[Iterable[Node]], chi: float = 1.0
) -> float:
    """Return the sum of per-community generalized modularity densities."""
    seen: set[Node] = set()
    total = 0.0
    for community in communities:
        members = set(community)
        if members & seen:
            raise GraphError("communities must be disjoint")
        seen |= members
        total += generalized_modularity_density(graph, members, chi=chi)
    return total
