"""Module entry point so that ``python -m repro`` runs the CLI."""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
