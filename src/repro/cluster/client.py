"""The cluster-aware client: routing tables, direct dispatch, failover.

:class:`ClusterClient` is what a multi-host deployment's callers use in
place of a single :class:`~repro.serving.pool.ServingClientPool`.  It
fetches the coordinator's versioned routing table **once**, keeps one
keep-alive pool per node it has talked to, and sends every query straight
to a node that owns the dataset — the coordinator is never on the data
path.  Three situations send it back to the coordinator:

* a ``not_owner`` response — the table went stale (the coordinator moved
  the dataset); refetch and resend;
* a connection failure — the node died; the address is quarantined
  locally (the coordinator may not have noticed yet), the table is
  refetched, and the query fails over to another listed replica;
* a dataset with no (reachable) replicas — poll the table until the
  coordinator's failover publishes a new version, bounded by
  ``failover_timeout``;
* an **epoch regression** — a node that previously answered a dataset at
  epoch ``N`` answers the same dataset at an older epoch (an evolving
  dataset failed over onto a lagging snapshot, see ``repro.dynamic``);
  treated exactly like ``not_owner``: refetch and retry.

Routing is **cache-affine**: each distinct request hashes to a stable
replica in the dataset's owner list, so a repeated query always lands on
the node whose LRU cache (and in-flight coalescing window) already knows
it, while distinct requests still spread across the replica set.  When
the preferred replica is quarantined the hash simply re-lands among the
survivors.  Shed (``overloaded``) responses are retried underneath by
each node's :class:`ServingClientPool` with jittered backoff, exactly as
in the single-host story.

Typical use::

    with ClusterClient("127.0.0.1", 7530) as cluster:
        response = cluster.query("karate", "kt", [0, 33])
        print(response["nodes"], cluster.counters())
"""

from __future__ import annotations

import threading
import time
import zlib
from typing import Any, Optional

from ..serving.client import ServingClient
from ..serving.pool import ServingClientPool
from .node import parse_address

__all__ = ["ClusterClient", "ClusterError"]


class ClusterError(RuntimeError):
    """Raised when a query cannot be routed within the failover budget."""


class ClusterClient:
    """Route queries through the coordinator's table to the owning nodes.

    ``pool_size`` / ``max_retries`` / ``jitter_seed`` configure each
    per-node :class:`ServingClientPool`; ``failover_timeout`` bounds how
    long one :meth:`query` may spend refetching tables and hopping
    replicas before giving up.
    """

    def __init__(
        self,
        coordinator_host: str,
        coordinator_port: int,
        *,
        pool_size: int = 4,
        timeout: float = 60.0,
        max_retries: int = 10,
        jitter_seed: Optional[int] = None,
        failover_timeout: float = 30.0,
        refresh_interval: float = 0.05,
    ) -> None:
        self.coordinator_host = coordinator_host
        self.coordinator_port = coordinator_port
        self.pool_size = pool_size
        self.timeout = timeout
        self.max_retries = max_retries
        self.jitter_seed = jitter_seed
        self.failover_timeout = failover_timeout
        self.refresh_interval = refresh_interval
        self.table_version = -1
        self._table: dict[str, list[str]] = {}
        self._pools: dict[str, ServingClientPool] = {}
        self._quarantined: set[str] = set()
        self._lock = threading.Lock()
        # one keep-alive connection for all coordinator traffic (rebuilt on
        # failure); its own lock because ServingClient is single-threaded
        self._coordinator: Optional[ServingClient] = None
        self._coordinator_lock = threading.Lock()
        self._closed = False
        # highest epoch each (dataset, address) pair has answered with —
        # a later answer from the SAME address carrying a lower epoch means
        # we were routed to a snapshot that went backwards (a failed-over
        # replica lagging behind the one we saw); treated like not_owner
        self._epochs: dict[tuple[str, str], int] = {}
        # counters
        self.table_fetches = 0
        self.failovers = 0
        self.not_owner_refreshes = 0
        self.epoch_regressions = 0
        self.refresh_table()

    # ------------------------------------------------------------------
    # coordinator I/O (one keep-alive connection, rebuilt on failure)
    # ------------------------------------------------------------------
    def _coordinator_request(self, payload: dict[str, Any]) -> dict[str, Any]:
        with self._coordinator_lock:
            if self._coordinator is None:
                self._coordinator = ServingClient(
                    self.coordinator_host, self.coordinator_port, timeout=self.timeout
                )
            try:
                return self._coordinator.request(payload)
            except (ConnectionError, OSError):
                # the connection (and its reconnect-once repair) failed:
                # drop it so the next call dials fresh, and surface the
                # error to the caller's retry logic
                self._coordinator.close()
                self._coordinator = None
                raise

    # ------------------------------------------------------------------
    # the routing table
    # ------------------------------------------------------------------
    def refresh_table(self) -> int:
        """Fetch the coordinator's table; returns the (new) version.

        A version change clears the local quarantine — the new table
        already reflects whatever deaths the quarantine was papering over
        — and drops pools for addresses no longer referenced anywhere.
        """
        response = self._coordinator_request({"op": "route_table"})
        if not response.get("ok"):
            raise ClusterError(f"coordinator refused route_table: {response.get('error')}")
        stale_pools: list[ServingClientPool] = []
        with self._lock:
            self.table_fetches += 1
            version = response["version"]
            if version != self.table_version:
                self.table_version = version
                self._table = {
                    name: list(addresses) for name, addresses in response["table"].items()
                }
                self._quarantined.clear()
                referenced = {
                    address for addresses in self._table.values() for address in addresses
                }
                for address in list(self._pools):
                    if address not in referenced:
                        stale_pools.append(self._pools.pop(address))
        for pool in stale_pools:
            pool.close()
        return self.table_version

    def owners(self, dataset: str) -> list[str]:
        """The dataset's replica addresses, minus quarantined ones."""
        with self._lock:
            return [
                address
                for address in self._table.get(dataset, ())
                if address not in self._quarantined
            ]

    def _quarantine(self, address: str) -> None:
        """Stop routing to ``address`` until the table version changes."""
        with self._lock:
            self._quarantined.add(address)
            pool = self._pools.pop(address, None)
        if pool is not None:
            pool.close()

    def _unquarantine(self, dataset: str) -> None:
        """Allow re-probing the dataset's quarantined replicas.

        Used when quarantining has emptied a dataset's owner list but the
        table version has not moved: the failures may have been transient
        (the nodes still heartbeat fine), and without a version change the
        quarantine would otherwise be permanent — one bad network moment
        must not black-hole a healthy replica set forever.
        """
        with self._lock:
            self._quarantined.difference_update(self._table.get(dataset, ()))

    def _pool(self, address: str) -> ServingClientPool:
        with self._lock:
            if self._closed:
                raise ClusterError("cluster client is closed")
            pool = self._pools.get(address)
            if pool is None:
                host, port = parse_address(address)
                pool = ServingClientPool(
                    host,
                    port,
                    size=self.pool_size,
                    timeout=self.timeout,
                    max_retries=self.max_retries,
                    jitter_seed=self.jitter_seed,
                )
                self._pools[address] = pool
        return pool

    def _route(self, dataset: str, algorithm: str, nodes) -> Optional[str]:
        """Cache-affine replica choice: hash the request identity onto the
        live owner list.  A repeat of the same query reaches the same
        replica (whose result cache and coalescing window already hold
        it); distinct queries spread over the set; a quarantined replica
        drops out of the candidate list and the hash re-lands on a
        survivor."""
        candidates = self.owners(dataset)
        if not candidates:
            return None
        digest = zlib.crc32(f"{dataset}|{algorithm}|{list(nodes)!r}".encode())
        return candidates[digest % len(candidates)]

    # ------------------------------------------------------------------
    # the data path
    # ------------------------------------------------------------------
    def query(self, dataset: str, algorithm: str, nodes, **params) -> dict[str, Any]:
        """Run one community search against the owning node.

        Returns the node's response payload (including structured errors
        like ``bad_query`` — only *routing* failures are retried here).
        Raises :class:`ClusterError` when no owner can be reached within
        ``failover_timeout``.
        """
        deadline = time.monotonic() + self.failover_timeout
        last_failure = "no replicas listed"
        stale = False
        refreshed_for_absence = False
        while True:
            with self._lock:
                configured = dataset in self._table
            if not configured:
                # the coordinator's table always lists every dataset it is
                # configured to serve (even with an empty replica list), so
                # an absent key cannot appear later — fail fast after one
                # confirming refresh instead of polling out the timeout
                if refreshed_for_absence:
                    raise ClusterError(
                        f"dataset {dataset!r} is not served by this cluster "
                        f"(routing table v{self.table_version})"
                    )
                refreshed_for_absence = True
                self.refresh_table()
                continue
            address = self._route(dataset, algorithm, nodes)
            if address is None:
                last_failure = f"no live replicas for {dataset!r} in table v{self.table_version}"
            else:
                pool = self._pool(address)
                try:
                    response = pool.query(dataset, algorithm, nodes, **params)
                except (ConnectionError, OSError) as exc:
                    # the node died (or its port did): quarantine and fail
                    # over; the refetch below picks up the coordinator's
                    # repair as soon as it is published
                    with self._lock:
                        self.failovers += 1
                    self._quarantine(address)
                    last_failure = f"{address}: {type(exc).__name__}: {exc}"
                    stale = False
                else:
                    error = response.get("error")
                    if error and error.get("code") == "not_owner":
                        # stale table: the coordinator moved the dataset
                        with self._lock:
                            self.not_owner_refreshes += 1
                        last_failure = f"{address}: not_owner"
                        stale = True
                    elif self._epoch_regressed(dataset, address, response):
                        # an epochal snapshot went backwards on this address:
                        # treat it like stale routing — refetch and retry.
                        # The recorded epoch is rebased to the lower value
                        # first, so a genuinely lagging replica is accepted
                        # on the retry rather than black-holing the query.
                        last_failure = (
                            f"{address}: epoch regressed below "
                            f"{response.get('epoch')}"
                        )
                        stale = True
                    else:
                        return response
            if time.monotonic() > deadline:
                raise ClusterError(
                    f"could not route {dataset!r} query within "
                    f"{self.failover_timeout:.1f}s; last failure: {last_failure}"
                )
            previous_version = self.table_version
            try:
                self.refresh_table()
            except (ConnectionError, OSError) as exc:
                last_failure = f"coordinator: {type(exc).__name__}: {exc}"
            if self.table_version == previous_version:
                # the coordinator has not noticed the failure yet.  After a
                # connection failure the quarantine lets us retry the other
                # replicas immediately; after not_owner (or with no owners
                # at all) the cluster needs a moment — the new owner learns
                # its assignment on its next heartbeat — so poll gently.
                if not self.owners(dataset):
                    time.sleep(self.refresh_interval)
                    # transient failures may have quarantined every replica
                    # of a table the coordinator still stands behind: allow
                    # re-probing rather than black-holing the dataset
                    self._unquarantine(dataset)
                elif stale:
                    time.sleep(self.refresh_interval)

    def _epoch_regressed(self, dataset: str, address: str, response: dict[str, Any]) -> bool:
        """Record the response's epoch; True when this address went backwards.

        Only successful epoch-stamped responses participate (static
        snapshots never carry ``epoch``).  The check is per address: two
        replicas at different epochs are merely skewed, not regressed.
        """
        epoch = response.get("epoch")
        if not response.get("ok") or not isinstance(epoch, int) or isinstance(epoch, bool):
            return False
        key = (dataset, address)
        with self._lock:
            known = self._epochs.get(key)
            if known is not None and epoch < known:
                self.epoch_regressions += 1
                self._epochs[key] = epoch  # rebase: the retry must terminate
                return True
            self._epochs[key] = epoch
        return False

    # ------------------------------------------------------------------
    # convenience + introspection
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        """Liveness check against the coordinator."""
        return self._coordinator_request({"op": "ping"})

    def coordinator_stats(self) -> dict[str, Any]:
        """The coordinator's membership/placement snapshot."""
        return self._coordinator_request({"op": "stats"})

    def health(self) -> dict[str, Any]:
        """The coordinator's per-dataset health aggregation (see repro.obs).

        Each entry carries the live replica count, summed query/error/shed
        counters, the cluster-wide qps, merged-histogram p50/p99 latency,
        the shed rate, and (for epochal snapshots) the max epoch and lag.
        """
        stats = self.coordinator_stats()
        if not stats.get("ok"):
            raise ClusterError(f"coordinator refused stats: {stats.get('error')}")
        health = stats.get("health")
        return dict(health) if isinstance(health, dict) else {}

    def node_stats(self, address: str) -> dict[str, Any]:
        """One node's serving stats (per-shard counters + ``node`` block)."""
        return self._pool(address).stats()

    def counters(self) -> dict[str, int]:
        """Client-side routing counters plus the per-node pool counters."""
        with self._lock:
            pools = dict(self._pools)
        return {
            "table_version": self.table_version,
            "table_fetches": self.table_fetches,
            "failovers": self.failovers,
            "not_owner_refreshes": self.not_owner_refreshes,
            "epoch_regressions": self.epoch_regressions,
            "pools": {address: pool.counters() for address, pool in sorted(pools.items())},
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every per-node pool and the coordinator connection."""
        with self._lock:
            self._closed = True
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.close()
        with self._coordinator_lock:
            if self._coordinator is not None:
                self._coordinator.close()
                self._coordinator = None

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
