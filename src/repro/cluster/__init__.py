"""Multi-host serving tier: coordinator, membership, routing, failover.

``repro.cluster`` scales the serving subsystem past one machine.  A
**coordinator** process (``repro coordinator``) owns the control plane:
node processes started with ``repro serve --join <coord-addr>`` register
and heartbeat, the coordinator spreads each dataset's replica set across
the live nodes (the same routing policies PR 4 used for replicas, now
selecting hosts), detects dead nodes on missed heartbeats, promotes
surviving replicas, and publishes a **versioned routing table**.  Clients
(:class:`ClusterClient`) fetch the table once and send queries **directly
to the owning nodes** — the coordinator never touches the data path — and
recover from staleness (``not_owner`` → refetch) and node loss
(connection failure → quarantine + fail over to another replica).

Layers:

* :mod:`~repro.cluster.coordinator` — membership + placement + the
  versioned table, behind the same line-delimited JSON transport as the
  query protocol (``register`` / ``heartbeat`` / ``route_table`` ops);
* :mod:`~repro.cluster.node` — the :class:`NodeAgent` a serving process
  runs to join, heartbeat and apply ownership changes to its engine;
* :mod:`~repro.cluster.client` — the :class:`ClusterClient` wrapping one
  keep-alive :class:`~repro.serving.pool.ServingClientPool` per node.
"""

from .client import ClusterClient, ClusterError
from .coordinator import (
    Coordinator,
    CoordinatorServer,
    CoordinatorThread,
    run_coordinator,
)
from .node import NodeAgent, parse_address

__all__ = [
    "Coordinator",
    "CoordinatorServer",
    "CoordinatorThread",
    "run_coordinator",
    "NodeAgent",
    "parse_address",
    "ClusterClient",
    "ClusterError",
]
