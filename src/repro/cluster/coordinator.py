"""The cluster coordinator: membership, placement over hosts, routing table.

The coordinator is the control plane of the multi-host serving tier — and
*only* the control plane: no query ever flows through it.  Node processes
(``repro serve --join <coord-addr>``) register and heartbeat; the
coordinator assigns each dataset's replica set across the live nodes
(reusing the serving layer's routing policies, now selecting **hosts**
instead of replicas), detects dead nodes on missed heartbeats, promotes
surviving replicas and refills the set (failover + rebalance), and
publishes the result as a **versioned routing table** that clients fetch
once and then follow to the owning nodes directly.

Wire operations (line-delimited JSON, same transport idiom as the query
protocol):

* ``{"op": "register", "address": "host:port"}`` → ``node_id``, the
  heartbeat cadence, the current table ``version`` and this node's
  ``owned`` datasets.  Re-registering the same address (a restarted node)
  keeps its ``node_id`` and assignments.
* ``{"op": "heartbeat", "node_id": ...}`` → ``version`` + ``owned`` (the
  node agent applies ``owned`` to its engine whenever ``version`` moved).
* ``{"op": "deregister", "node_id": ...}`` — clean leave; assignments move
  immediately instead of waiting out the heartbeat timeout.
* ``{"op": "route_table"}`` → ``{"version": V, "table": {dataset:
  [address, ...]}}`` — replica addresses in preference order (the first is
  the primary; on failover the first survivor is the promoted primary).
* ``ping`` / ``stats`` / ``shutdown`` as in the query protocol.

State lives on the coordinator's event loop only (handlers and the sweep
task), so :class:`Coordinator` needs no locks; it is transport-free and
driven directly by the unit tests with a fake clock.
"""

from __future__ import annotations

import asyncio
import functools
import threading
import time
from typing import Any, Callable, Optional

from ..datasets import list_datasets
from ..obs.metrics import Histogram
from ..serving.placement import ROUTING_POLICIES, LeastLoadedPolicy
from ..serving.protocol import ProtocolError, decode_line, encode, error_payload
from .node import parse_address

__all__ = [
    "Coordinator",
    "CoordinatorServer",
    "CoordinatorThread",
    "run_coordinator",
]


class _HostSlot:
    """A live node viewed through the routing-policy interface.

    The serving layer's policies pick among objects exposing ``load`` and
    ``index``; here ``load`` is the number of dataset replicas already
    assigned to the node, so ``least-loaded`` spreads datasets evenly over
    hosts and ``round-robin`` rotates through them — the same two policies
    PR 4 introduced for replicas, reused one layer up.
    """

    __slots__ = ("node_id", "index", "load")

    def __init__(self, node_id: str, index: int, load: int) -> None:
        self.node_id = node_id
        self.index = index
        self.load = load


class NodeInfo:
    """One registered node: identity, liveness and assignment bookkeeping."""

    __slots__ = (
        "node_id",
        "address",
        "index",
        "last_heartbeat",
        "alive",
        "heartbeats",
        "epochs",
        "summary",
        "rates",
        "_prev_totals",
        "_prev_time",
    )

    def __init__(self, node_id: str, address: str, index: int, now: float) -> None:
        self.node_id = node_id
        self.address = address
        self.index = index
        self.last_heartbeat = now
        self.alive = True
        self.heartbeats = 0
        # dataset → snapshot epoch, as last reported on a heartbeat (empty
        # for nodes serving static snapshots; see repro.dynamic)
        self.epochs: dict[str, int] = {}
        # dataset → metric summary ({queries, errors, shed, latency: wire
        # histogram}), as last piggybacked on a heartbeat (see repro.obs)
        self.summary: dict[str, Any] = {}
        # dataset → queries/second, derived from the counter delta between
        # the two most recent summary-carrying heartbeats
        self.rates: dict[str, float] = {}
        self._prev_totals: dict[str, int] = {}
        self._prev_time: Optional[float] = None

    def describe(self) -> dict[str, Any]:
        info: dict[str, Any] = {
            "node_id": self.node_id,
            "address": self.address,
            "alive": self.alive,
            "heartbeats": self.heartbeats,
        }
        if self.epochs:
            info["epochs"] = dict(sorted(self.epochs.items()))
        return info


class Coordinator:
    """Membership + dataset placement + the versioned routing table.

    ``datasets`` is the cluster-served set; each gets ``replication``
    replicas spread across distinct live nodes (fewer while the cluster is
    degraded).  ``clock`` is injectable so the failure-detection tests can
    advance time without sleeping.
    """

    def __init__(
        self,
        datasets,
        *,
        replication: int = 1,
        heartbeat_interval: float = 2.0,
        heartbeat_timeout: Optional[float] = None,
        routing: str = LeastLoadedPolicy.name,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        names = list(dict.fromkeys(datasets))
        if not names:
            raise ValueError("a coordinator needs at least one dataset to place")
        known = set(list_datasets())
        for name in names:
            if name not in known:
                raise KeyError(
                    f"unknown dataset {name!r}; available: {', '.join(sorted(known))}"
                )
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if heartbeat_interval <= 0:
            raise ValueError(f"heartbeat_interval must be > 0, got {heartbeat_interval}")
        if heartbeat_timeout is None:
            heartbeat_timeout = 3.0 * heartbeat_interval
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                f"heartbeat_timeout ({heartbeat_timeout}) must exceed the "
                f"interval ({heartbeat_interval})"
            )
        if routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {routing!r}; choose from "
                f"{', '.join(sorted(ROUTING_POLICIES))}"
            )
        self.datasets = names
        self.replication = replication
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.routing = routing
        self._policy = ROUTING_POLICIES[routing]()
        self._clock = clock
        self._nodes: dict[str, NodeInfo] = {}
        self._by_address: dict[str, str] = {}
        self._assignments: dict[str, list[str]] = {name: [] for name in names}
        self._version = 0
        self._next_index = 0
        # counters
        self.registrations = 0
        self.deregistrations = 0
        self.failovers = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The routing-table version; bumps on every placement change."""
        return self._version

    def live_nodes(self) -> list[NodeInfo]:
        """Live nodes in registration order."""
        return sorted(
            (node for node in self._nodes.values() if node.alive),
            key=lambda node: node.index,
        )

    def register(self, address: str, now: Optional[float] = None) -> dict[str, Any]:
        """Join (or rejoin) the cluster; returns the registration payload."""
        if not isinstance(address, str):
            raise ProtocolError(
                "bad_request", f"register needs an 'address' like host:port, got {address!r}"
            )
        try:
            # full validation: a once-accepted malformed address would be
            # published in the routing table and crash every client that
            # tries to open a pool to it
            parse_address(address)
        except ValueError as exc:
            raise ProtocolError("bad_request", str(exc)) from None
        now = self._clock() if now is None else now
        node_id = self._by_address.get(address)
        if node_id is None:
            node_id = f"n{self._next_index}"
            self._nodes[node_id] = NodeInfo(node_id, address, self._next_index, now)
            self._by_address[address] = node_id
            self._next_index += 1
        else:
            # a restarted node keeps its identity and its assignments
            node = self._nodes[node_id]
            node.last_heartbeat = now
            node.alive = True
        self.registrations += 1
        self._rebalance()
        return {
            "node_id": node_id,
            "version": self._version,
            "owned": self.owned_by(node_id),
            "heartbeat_interval_ms": int(self.heartbeat_interval * 1000),
            "heartbeat_timeout_ms": int(self.heartbeat_timeout * 1000),
        }

    def heartbeat(
        self,
        node_id: str,
        now: Optional[float] = None,
        epochs: Optional[dict[str, int]] = None,
        summary: Optional[dict[str, Any]] = None,
    ) -> dict[str, Any]:
        """Record a node heartbeat; returns the current version + ownership.

        ``epochs`` is the node's per-dataset snapshot epoch map (nodes on
        epochal snapshots piggyback it on every heartbeat); the coordinator
        records it per node and publishes the per-dataset maximum in the
        routing table so clients can detect replicas lagging behind.

        ``summary`` is the node's per-dataset metric summary (cumulative
        ``queries``/``errors``/``shed`` counters plus a wire-form latency
        histogram, see :meth:`ServingEngine.health_summary`).  The
        coordinator stores the latest one per node, derives a
        queries-per-second rate from the counter delta between consecutive
        heartbeats, and aggregates across live replicas in :meth:`health`.
        """
        node = self._nodes.get(node_id)
        if node is None:
            raise ProtocolError(
                "bad_request", f"unknown node {node_id!r}; register first"
            )
        now = self._clock() if now is None else now
        node.last_heartbeat = now
        node.heartbeats += 1
        if epochs is not None:
            if not isinstance(epochs, dict) or not all(
                isinstance(name, str)
                and isinstance(epoch, int)
                and not isinstance(epoch, bool)
                and epoch >= 0
                for name, epoch in epochs.items()
            ):
                raise ProtocolError(
                    "bad_request",
                    "'epochs' must map dataset names to non-negative integers",
                )
            node.epochs = dict(epochs)
        if summary is not None:
            if not isinstance(summary, dict) or not all(
                isinstance(name, str) and isinstance(entry, dict)
                for name, entry in summary.items()
            ):
                raise ProtocolError(
                    "bad_request",
                    "'summary' must map dataset names to metric objects",
                )
            elapsed = (
                now - node._prev_time if node._prev_time is not None else 0.0
            )
            totals: dict[str, int] = {}
            rates: dict[str, float] = {}
            for name, entry in summary.items():
                queries = entry.get("queries")
                if not isinstance(queries, int) or isinstance(queries, bool):
                    continue
                totals[name] = queries
                previous = node._prev_totals.get(name)
                # counters are cumulative, so a smaller value means the node
                # restarted — skip the rate for one interval rather than
                # reporting a negative qps
                if previous is not None and elapsed > 0.0 and queries >= previous:
                    rates[name] = (queries - previous) / elapsed
            node.summary = dict(summary)
            node.rates = rates
            node._prev_totals = totals
            node._prev_time = now
        if not node.alive:
            # declared dead but still beating (e.g. a long GC pause): rejoin
            node.alive = True
            self._rebalance()
        return {"version": self._version, "owned": self.owned_by(node_id)}

    def deregister(self, node_id: str) -> dict[str, Any]:
        """Clean leave: assignments move now, not after the timeout."""
        node = self._nodes.get(node_id)
        if node is not None and node.alive:
            node.alive = False
            self.deregistrations += 1
            self._rebalance()
        return {"version": self._version}

    def sweep(self, now: Optional[float] = None) -> list[str]:
        """Declare nodes dead after ``heartbeat_timeout`` of silence.

        Returns the node ids declared dead by *this* sweep; placement is
        rebalanced (and the table version bumped) when there are any.
        """
        now = self._clock() if now is None else now
        dead = [
            node.node_id
            for node in self._nodes.values()
            if node.alive and now - node.last_heartbeat > self.heartbeat_timeout
        ]
        for node_id in dead:
            self._nodes[node_id].alive = False
        if dead:
            self.failovers += len(dead)
            self._rebalance()
        return dead

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _rebalance(self) -> None:
        """Repair every replica set against the current live membership.

        Dead nodes are pruned (surviving replicas keep their order, so the
        first survivor is the promoted primary), under-replicated sets are
        refilled by the routing policy over host slots, and a gentle
        balance pass moves replicas from the most- to the least-assigned
        node until the spread is at most one — so a node joining an
        already-covered cluster picks up its share without a full reshuffle
        (an even cluster sees zero churn).  The table version bumps exactly
        when something changed.
        """
        live = self.live_nodes()
        loads = {
            node.node_id: sum(
                node.node_id in assigned for assigned in self._assignments.values()
            )
            for node in live
        }
        changed = False
        for name in self.datasets:
            assigned = self._assignments[name]
            survivors = [
                node_id for node_id in assigned if self._nodes[node_id].alive
            ]
            if survivors != assigned:
                changed = True
            want = min(self.replication, len(live))
            while len(survivors) < want:
                candidates = [
                    _HostSlot(node.node_id, node.index, loads[node.node_id])
                    for node in live
                    if node.node_id not in survivors
                ]
                if not candidates:
                    break
                slot = self._policy.select(candidates)
                survivors.append(slot.node_id)
                loads[slot.node_id] += 1
                changed = True
            self._assignments[name] = survivors
        while len(live) > 1:
            most = max(live, key=lambda node: (loads[node.node_id], -node.index))
            least = min(live, key=lambda node: (loads[node.node_id], node.index))
            if loads[most.node_id] - loads[least.node_id] <= 1:
                break
            for name in self.datasets:
                assigned = self._assignments[name]
                if most.node_id in assigned and least.node_id not in assigned:
                    # in-place swap keeps the replica's preference-order slot
                    assigned[assigned.index(most.node_id)] = least.node_id
                    loads[most.node_id] -= 1
                    loads[least.node_id] += 1
                    changed = True
                    break
            else:
                break  # every movable dataset already spans both nodes
        if changed:
            self._version += 1

    def owned_by(self, node_id: str) -> list[str]:
        """The datasets whose replica set includes ``node_id`` (sorted)."""
        return sorted(
            name for name, assigned in self._assignments.items() if node_id in assigned
        )

    def dataset_epochs(self) -> dict[str, int]:
        """Highest snapshot epoch reported per dataset by its live replicas.

        Empty for datasets whose replicas serve static snapshots (they
        never report epochs).  A replica reporting less than this maximum
        is lagging — clients treat answers from it like stale routing.
        """
        epochs: dict[str, int] = {}
        for name, assigned in self._assignments.items():
            reported = [
                self._nodes[node_id].epochs[name]
                for node_id in assigned
                if self._nodes[node_id].alive and name in self._nodes[node_id].epochs
            ]
            if reported:
                epochs[name] = max(reported)
        return dict(sorted(epochs.items()))

    def health(self) -> dict[str, Any]:
        """Per-dataset health aggregated across the live replicas.

        For each dataset with at least one live, summary-reporting replica:
        summed ``queries``/``errors``/``shed`` counters, the qps sum of the
        per-node heartbeat-delta rates, ``p50_ms``/``p99_ms`` read from the
        **merged** wire-form latency histograms (bucket counts add, so the
        percentile is over the cluster-wide distribution — no raw samples
        are shipped or re-sorted), the shed rate, and — for epochal
        snapshots — the maximum epoch plus the live replicas' lag behind it.
        """
        health: dict[str, Any] = {}
        for name, assigned in sorted(self._assignments.items()):
            merged: Optional[Histogram] = None
            queries = errors = shed = reporting = 0
            qps = 0.0
            epochs: list[int] = []
            for node_id in assigned:
                node = self._nodes[node_id]
                if not node.alive:
                    continue
                if name in node.epochs:
                    epochs.append(node.epochs[name])
                entry = node.summary.get(name)
                if not isinstance(entry, dict):
                    continue
                reporting += 1

                def _count(field: str, entry=entry) -> int:
                    value = entry.get(field)
                    if isinstance(value, int) and not isinstance(value, bool):
                        return value
                    return 0

                queries += _count("queries")
                errors += _count("errors")
                shed += _count("shed")
                qps += node.rates.get(name, 0.0)
                wire = entry.get("latency")
                if isinstance(wire, dict):
                    try:
                        hist = Histogram.from_wire(wire)
                    except (KeyError, TypeError, ValueError):
                        continue  # malformed latency block; keep the counters
                    if merged is None:
                        merged = hist
                    else:
                        merged.merge(hist)
            if reporting == 0:
                continue
            block: dict[str, Any] = {
                "nodes": reporting,
                "queries": queries,
                "errors": errors,
                "shed": shed,
                "qps": round(qps, 3),
                "shed_rate": round(shed / queries, 6) if queries else 0.0,
                "p50_ms": round(merged.percentile(0.50), 3) if merged else 0.0,
                "p99_ms": round(merged.percentile(0.99), 3) if merged else 0.0,
            }
            if epochs:
                block["epoch"] = max(epochs)
                block["epoch_lag"] = max(epochs) - min(epochs)
            health[name] = block
        return health

    def route_table(self) -> dict[str, Any]:
        """The published table: dataset → replica addresses, plus version.

        ``epochs`` carries the per-dataset maximum snapshot epoch the live
        replicas have reported (absent entries = static snapshots).
        """
        return {
            "version": self._version,
            "table": {
                name: [self._nodes[node_id].address for node_id in assigned]
                for name, assigned in sorted(self._assignments.items())
            },
            "epochs": self.dataset_epochs(),
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """JSON-safe membership/placement snapshot for the ``stats`` op."""
        nodes = sorted(self._nodes.values(), key=lambda node: node.index)
        return {
            "version": self._version,
            "datasets": list(self.datasets),
            "replication": self.replication,
            "routing": self.routing,
            "heartbeat_interval_ms": int(self.heartbeat_interval * 1000),
            "heartbeat_timeout_ms": int(self.heartbeat_timeout * 1000),
            "nodes": [node.describe() for node in nodes],
            "live_nodes": sum(node.alive for node in nodes),
            "assignments": {
                name: list(assigned) for name, assigned in sorted(self._assignments.items())
            },
            "epochs": self.dataset_epochs(),
            "health": self.health(),
            "registrations": self.registrations,
            "deregistrations": self.deregistrations,
            "failovers": self.failovers,
        }


# ----------------------------------------------------------------------------
# the asyncio front end (same line-delimited JSON transport as the servers)
# ----------------------------------------------------------------------------


class CoordinatorServer:
    """Serve a :class:`Coordinator` over line-delimited JSON on TCP.

    Control-plane traffic is tiny (registrations, heartbeats, table
    fetches), so every operation is handled inline on the event loop; a
    background task sweeps for missed heartbeats every quarter timeout.
    """

    def __init__(
        self, coordinator: Coordinator, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.coordinator = coordinator
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self._server: Optional[asyncio.AbstractServer] = None
        self._sweeper: Optional[asyncio.Task] = None
        self._shutdown = asyncio.Event()
        self._connections: set[asyncio.StreamWriter] = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._sweeper = asyncio.create_task(self._sweep_loop(), name="coordinator-sweep")

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    async def close(self) -> None:
        """Stop the listener, the sweeper and any lingering connections."""
        self._shutdown.set()
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
            self._server = None

    async def _sweep_loop(self) -> None:
        interval = max(0.05, self.coordinator.heartbeat_timeout / 4.0)
        while True:
            await asyncio.sleep(interval)
            self.coordinator.sweep()

    def _dispatch(self, payload: dict[str, Any]) -> dict[str, Any]:
        op = payload.get("op")
        coordinator = self.coordinator
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "register":
            return {"ok": True, "op": "register", **coordinator.register(payload.get("address"))}
        if op == "heartbeat":
            return {
                "ok": True,
                "op": "heartbeat",
                **coordinator.heartbeat(
                    payload.get("node_id"),
                    epochs=payload.get("epochs"),
                    summary=payload.get("summary"),
                ),
            }
        if op == "deregister":
            return {
                "ok": True,
                "op": "deregister",
                **coordinator.deregister(payload.get("node_id")),
            }
        if op == "route_table":
            return {"ok": True, "op": "route_table", **coordinator.route_table()}
        if op == "stats":
            return {"ok": True, "op": "stats", **coordinator.stats()}
        raise ProtocolError("bad_request", f"unknown coordinator operation {op!r}")

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                request_id = None
                try:
                    payload = decode_line(line)
                    request_id = payload.get("id")
                    if payload.get("op") == "shutdown":
                        response: dict[str, Any] = {"ok": True, "op": "shutdown"}
                        if request_id is not None:
                            response["id"] = request_id
                        writer.write(encode(response))
                        await writer.drain()
                        self._shutdown.set()
                        break
                    response = self._dispatch(payload)
                    if request_id is not None:
                        response["id"] = request_id
                except ProtocolError as exc:
                    response = error_payload(exc, request_id)
                except Exception as exc:  # noqa: BLE001 - the coordinator must stay up
                    response = error_payload(
                        ProtocolError("internal_error", f"{type(exc).__name__}: {exc}"),
                        request_id,
                    )
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # a node died mid-request; the sweeper will notice
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


def run_coordinator(
    coordinator: Coordinator,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    announce: Callable[[str], None] = functools.partial(print, flush=True),
) -> int:
    """Run the coordinator until shutdown is requested; returns an exit code.

    ``announce`` receives ``coordinating on HOST:PORT`` once the socket is
    bound (the CLI prints it; the cluster bench parses it for the port).
    """

    async def _main() -> None:
        server = CoordinatorServer(coordinator, host, port)
        try:
            await server.start()
            announce(f"coordinating on {server.host}:{server.port}")
            await server.wait_shutdown()
        finally:
            await server.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        return 0
    return 0


class CoordinatorThread:
    """Run a coordinator in a daemon thread: the in-process test harness.

    Usage::

        with CoordinatorThread(datasets=["karate"], replication=2) as coord:
            agent = NodeAgent(coord.host, coord.port, advertise=...)
    """

    def __init__(
        self, *, host: str = "127.0.0.1", startup_timeout: float = 30.0, **coordinator_kwargs
    ) -> None:
        self.host = host
        self.port: Optional[int] = None
        self.coordinator = Coordinator(**coordinator_kwargs)
        self._startup_timeout = startup_timeout
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-coordinator", daemon=True
        )

    def _run(self) -> None:
        def _note_port(message: str) -> None:
            self.port = int(message.rsplit(":", 1)[1])
            self._ready.set()

        try:
            run_coordinator(self.coordinator, self.host, 0, announce=_note_port)
        except BaseException as exc:  # noqa: BLE001 - re-raised on join
            self._error = exc
            self._ready.set()

    def __enter__(self) -> "CoordinatorThread":
        self._thread.start()
        if not self._ready.wait(self._startup_timeout):
            raise TimeoutError("coordinator thread did not start in time")
        if self._error is not None:
            raise RuntimeError("coordinator thread failed to start") from self._error
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self, timeout: float = 30.0) -> None:
        """Request shutdown over the wire and join the coordinator thread."""
        if self._thread.is_alive() and self.port is not None:
            from ..serving.client import ServingClient

            try:
                with ServingClient(self.host, self.port) as client:
                    client.shutdown()
            except OSError:
                pass  # already shutting down
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("coordinator thread did not shut down in time")
        if self._error is not None:
            raise RuntimeError("coordinator thread crashed") from self._error
