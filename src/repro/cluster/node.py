"""The node agent: a serving process's membership loop.

:class:`NodeAgent` is the piece that turns a plain ``repro serve`` process
into a cluster node.  It runs a daemon thread that

* **registers** with the coordinator (retrying with backoff until the
  coordinator is reachable — a node that starts first keeps serving
  ``not_owner`` until it joins),
* **heartbeats** on the cadence the coordinator advertised, and
* applies every ownership change to the engine
  (:meth:`~repro.serving.engine.ServingEngine.set_owned_datasets`) the
  moment a register/heartbeat response carries a new table version — so a
  failed-over dataset starts being served within one heartbeat of the
  coordinator's decision, and a reassigned-away dataset starts answering
  ``not_owner`` just as fast.

The agent also installs itself as the engine's ``node`` stats block, which
is what makes per-node membership state (node id, owned datasets, table
version, heartbeat counters) visible through the ordinary ``stats`` wire
op on the *node's* query port.

The agent deliberately talks to the coordinator over the same blocking
:class:`~repro.serving.client.ServingClient` the data path uses — one
wire idiom everywhere.
"""

from __future__ import annotations

import logging
import threading
from typing import Any, Callable, Optional

from ..obs.log import log_event
from ..serving.client import ServingClient

__all__ = ["NodeAgent", "parse_address"]


def parse_address(text: str) -> tuple[str, int]:
    """Parse ``host:port`` into a tuple, with a flag-shaped error."""
    host, separator, raw_port = str(text).rpartition(":")
    if not separator or not host:
        raise ValueError(f"expected an address like host:port, got {text!r}")
    try:
        port = int(raw_port)
    except ValueError:
        raise ValueError(f"invalid port in address {text!r}") from None
    if not 0 < port < 65536:
        raise ValueError(f"port out of range in address {text!r}")
    return host, port


class NodeAgent:
    """Register with a coordinator and keep the node's membership fresh.

    ``advertise`` is the address *clients* should use to reach this node's
    query port (it keys the node's identity on the coordinator, so a
    restarted node re-registering the same address gets its assignments
    back).  Ownership changes are applied to ``engine`` when given, and to
    the optional ``on_owned`` callback (tests use the callback alone).
    """

    def __init__(
        self,
        coordinator_host: str,
        coordinator_port: int,
        advertise: str,
        *,
        engine=None,
        on_owned: Optional[Callable[[list[str]], None]] = None,
        register_backoff: float = 0.5,
        request_timeout: float = 10.0,
    ) -> None:
        parse_address(advertise)  # validate early, with the flag-shaped error
        self.coordinator_host = coordinator_host
        self.coordinator_port = coordinator_port
        self.advertise = advertise
        self.engine = engine
        self._on_owned = on_owned
        self._register_backoff = register_backoff
        self._request_timeout = request_timeout
        self.node_id: Optional[str] = None
        self.table_version: Optional[int] = None
        self.owned: list[str] = []
        self.heartbeat_interval = 1.0  # replaced by the coordinator's cadence
        # counters
        self.heartbeats_sent = 0
        self.heartbeat_failures = 0
        self.registrations = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, name="repro-node-agent", daemon=True)
        self._client: Optional[ServingClient] = None
        if engine is not None:
            # gate from the very first request: before registration completes
            # the node owns nothing and answers not_owner, never stale data
            engine.set_owned_datasets(())
            engine.node_stats_provider = self.info

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the membership thread (registration happens inside it)."""
        self._thread.start()

    def stop(self, *, deregister: bool = True, timeout: float = 10.0) -> None:
        """Stop heartbeating; with ``deregister`` the leave is clean (the
        coordinator moves this node's assignments immediately instead of
        waiting out the heartbeat timeout), and the node stops claiming
        ownership — a client holding a stale table gets ``not_owner`` (and
        refetches) rather than answers from a node that already left."""
        self._stop.set()
        self._thread.join(timeout)
        if self._thread.is_alive():
            # the agent thread is still blocked inside a coordinator
            # round-trip on this connection; touching (or closing) the
            # client under it would interleave two requests on one socket.
            # Leave the connection alone — the coordinator's heartbeat
            # timeout handles the departure, and the daemon thread dies
            # with the process.
            return
        if deregister and self.node_id is not None:
            try:
                self._request({"op": "deregister", "node_id": self.node_id})
            except OSError:
                pass  # coordinator already gone; timeout-based failover applies
            self.owned = []
            if self.engine is not None:
                self.engine.set_owned_datasets(())
        self._close_client()

    def __enter__(self) -> "NodeAgent":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # the membership loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            if self.node_id is None:
                if not self._register_once():
                    self._stop.wait(self._register_backoff)
                    continue
            self._stop.wait(self.heartbeat_interval)
            if self._stop.is_set():
                break
            self._heartbeat_once()

    def _register_once(self) -> bool:
        try:
            response = self._request({"op": "register", "address": self.advertise})
        except OSError as exc:
            self.heartbeat_failures += 1
            log_event(
                "register_failed",
                level=logging.WARNING,
                coordinator=f"{self.coordinator_host}:{self.coordinator_port}",
                advertise=self.advertise,
                error=f"{type(exc).__name__}: {exc}",
                failures=self.heartbeat_failures,
            )
            self._close_client()
            return False
        if not response.get("ok"):
            self.heartbeat_failures += 1
            log_event(
                "register_refused",
                level=logging.WARNING,
                coordinator=f"{self.coordinator_host}:{self.coordinator_port}",
                advertise=self.advertise,
                error=str(response.get("error")),
                failures=self.heartbeat_failures,
            )
            return False
        self.node_id = response["node_id"]
        self.registrations += 1
        self.heartbeat_interval = response.get("heartbeat_interval_ms", 1000) / 1000.0
        self._apply(response)
        return True

    def _heartbeat_once(self) -> None:
        payload: dict[str, Any] = {"op": "heartbeat", "node_id": self.node_id}
        epochs = self._dataset_epochs()
        if epochs:
            # piggyback the per-dataset snapshot epochs so the coordinator
            # can publish the cluster-wide maximum (see repro.dynamic);
            # static snapshots report nothing and cost nothing on the wire
            payload["epochs"] = epochs
        summary = self._health_summary()
        if summary:
            # piggyback the engine's per-dataset metric summary (cumulative
            # counters + a wire-form latency histogram) so the coordinator
            # can aggregate cluster-wide qps/p99/shed-rate without a second
            # scrape channel; engine-less agents report nothing
            payload["summary"] = summary
        try:
            response = self._request(payload)
        except OSError as exc:
            self.heartbeat_failures += 1
            log_event(
                "heartbeat_failed",
                level=logging.WARNING,
                node_id=self.node_id,
                coordinator=f"{self.coordinator_host}:{self.coordinator_port}",
                error=f"{type(exc).__name__}: {exc}",
                failures=self.heartbeat_failures,
            )
            self._close_client()
            return
        if not response.get("ok"):
            # the coordinator restarted and forgot us: register again.  Its
            # version counter restarted too, so the cached one is meaningless
            self.heartbeat_failures += 1
            log_event(
                "heartbeat_refused",
                level=logging.WARNING,
                node_id=self.node_id,
                coordinator=f"{self.coordinator_host}:{self.coordinator_port}",
                error=str(response.get("error")),
                failures=self.heartbeat_failures,
            )
            self.node_id = None
            self.table_version = None
            return
        self.heartbeats_sent += 1
        self._apply(response)

    def _apply(self, response: dict[str, Any]) -> None:
        """Apply a register/heartbeat response's ownership to the engine.

        The version check is an optimisation, not the source of truth: the
        owned list is compared too, so a restarted coordinator whose fresh
        version counter happens to collide with the cached one cannot make
        the node keep serving a stale assignment.
        """
        version = response.get("version")
        owned = response.get("owned")
        if owned is None or (version == self.table_version and list(owned) == self.owned):
            return
        previously_owned = set(self.owned)
        self.table_version = version
        self.owned = list(owned)
        if self.engine is not None:
            self.engine.set_owned_datasets(owned)
            # warm only the newly *gained* shards (dataset load, freeze,
            # community-index load — mutation-serving owners republish the
            # repaired index file with every epoch, so the failover target
            # picks up the current one) so a rerouted query is answered
            # from the index instead of re-deriving decompositions on the
            # request path; shards this node already serves are warm and
            # must not be rebuilt on every table change
            gained = [name for name in owned if name not in previously_owned]
            if gained:
                preload = getattr(self.engine, "request_preload", None)
                if preload is not None:
                    preload(gained)
        if self._on_owned is not None:
            self._on_owned(list(owned))

    # ------------------------------------------------------------------
    # coordinator I/O (one keep-alive connection, rebuilt on failure)
    # ------------------------------------------------------------------
    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        if self._client is None:
            self._client = ServingClient(
                self.coordinator_host, self.coordinator_port, timeout=self._request_timeout
            )
        return self._client.request(payload)

    def _close_client(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    # ------------------------------------------------------------------
    # introspection (the engine's "node" stats block)
    # ------------------------------------------------------------------
    def _dataset_epochs(self) -> dict[str, int]:
        """The engine's per-dataset epochs ({} when static or engine-less)."""
        provider = getattr(self.engine, "dataset_epochs", None)
        if provider is None:
            return {}
        try:
            return dict(provider())
        except Exception:  # noqa: BLE001 - heartbeats must not die on stats
            return {}

    def _health_summary(self) -> dict[str, Any]:
        """The engine's per-dataset metric summary ({} when engine-less)."""
        provider = getattr(self.engine, "health_summary", None)
        if provider is None:
            return {}
        try:
            return dict(provider())
        except Exception:  # noqa: BLE001 - heartbeats must not die on stats
            return {}

    def info(self) -> dict[str, Any]:
        info: dict[str, Any] = {
            "node_id": self.node_id,
            "advertise": self.advertise,
            "coordinator": f"{self.coordinator_host}:{self.coordinator_port}",
            "table_version": self.table_version,
            "owned": list(self.owned),
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeat_failures": self.heartbeat_failures,
            "registrations": self.registrations,
        }
        epochs = self._dataset_epochs()
        if epochs:
            info["epochs"] = epochs
        return info
