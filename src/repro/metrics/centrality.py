"""Centrality measures used by the paper's case study (Section 6.3.2).

The case study ranks the query author by betweenness centrality (Brandes,
2001) and eigenvector centrality inside the communities returned by FPA,
3-truss and 3-core.
"""

from __future__ import annotations

from collections import deque

from ..graph import Graph, GraphError, Node

__all__ = ["betweenness_centrality", "eigenvector_centrality", "degree_centrality"]


def betweenness_centrality(graph: Graph, normalized: bool = True) -> dict[Node, float]:
    """Return the (unweighted) betweenness centrality of every node.

    Implements Brandes' single-source accumulation algorithm; runs in
    ``O(|V| |E|)`` for unweighted graphs.
    """
    centrality: dict[Node, float] = {node: 0.0 for node in graph.iter_nodes()}
    nodes = graph.nodes()
    for source in nodes:
        # single-source shortest path counting
        stack: list[Node] = []
        predecessors: dict[Node, list[Node]] = {node: [] for node in nodes}
        sigma: dict[Node, float] = {node: 0.0 for node in nodes}
        sigma[source] = 1.0
        distance: dict[Node, int] = {source: 0}
        queue: deque[Node] = deque([source])
        while queue:
            node = queue.popleft()
            stack.append(node)
            for neighbor in graph.adjacency(node):
                if neighbor not in distance:
                    distance[neighbor] = distance[node] + 1
                    queue.append(neighbor)
                if distance[neighbor] == distance[node] + 1:
                    sigma[neighbor] += sigma[node]
                    predecessors[neighbor].append(node)
        # accumulation
        delta: dict[Node, float] = {node: 0.0 for node in nodes}
        while stack:
            node = stack.pop()
            for predecessor in predecessors[node]:
                delta[predecessor] += (sigma[predecessor] / sigma[node]) * (1.0 + delta[node])
            if node != source:
                centrality[node] += delta[node]
    # each undirected pair counted twice
    scale = 0.5
    n = len(nodes)
    if normalized and n > 2:
        scale = 1.0 / ((n - 1) * (n - 2))
    return {node: value * scale for node, value in centrality.items()}


def eigenvector_centrality(
    graph: Graph, max_iterations: int = 200, tolerance: float = 1.0e-8
) -> dict[Node, float]:
    """Return the eigenvector centrality via power iteration.

    Raises :class:`GraphError` when the iteration fails to converge within
    ``max_iterations`` (e.g. for bipartite-like structures with period-2
    oscillation the caller should increase the budget or accept the result of
    degree centrality instead).
    """
    nodes = graph.nodes()
    if not nodes:
        return {}
    if graph.number_of_edges() == 0:
        # no edges: centrality carries no information, report zeros
        return {node: 0.0 for node in nodes}
    value = {node: 1.0 / len(nodes) for node in nodes}
    for _ in range(max_iterations):
        previous = value
        # iterate with (A + I) instead of A: same eigenvectors, but the shift
        # guarantees convergence on bipartite graphs (e.g. stars) where plain
        # power iteration oscillates between the two sides
        value = dict(previous)
        for node in nodes:
            for neighbor, weight in graph.adjacency(node).items():
                value[neighbor] += previous[node] * weight
        norm = sum(v * v for v in value.values()) ** 0.5
        if norm == 0.0:
            # graph with no edges: centrality is uniform
            return {node: 0.0 for node in nodes}
        value = {node: v / norm for node, v in value.items()}
        drift = sum(abs(value[node] - previous[node]) for node in nodes)
        if drift < len(nodes) * tolerance:
            return value
    raise GraphError(f"eigenvector centrality did not converge in {max_iterations} iterations")


def degree_centrality(graph: Graph) -> dict[Node, float]:
    """Return degree centrality ``deg(v) / (|V| - 1)``."""
    n = graph.number_of_nodes()
    if n <= 1:
        return {node: 0.0 for node in graph.iter_nodes()}
    return {node: graph.degree(node) / (n - 1) for node in graph.iter_nodes()}
