"""Binary-classification view of community search accuracy.

Section 6.1 ("Evaluation Metric"): the paper converts community search into
a binary classification problem — the ground-truth community containing the
query nodes provides positive labels, everything else negative — and then
computes NMI, ARI and Fscore between the predicted membership indicator and
the true one.  This module builds those indicator vectors and the confusion
counts shared by all three metrics.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import NamedTuple

from ..graph import Node

__all__ = ["ConfusionCounts", "membership_labels", "confusion_counts"]


class ConfusionCounts(NamedTuple):
    """Confusion-matrix counts for a predicted community vs a true community."""

    true_positive: int
    false_positive: int
    false_negative: int
    true_negative: int

    @property
    def total(self) -> int:
        return self.true_positive + self.false_positive + self.false_negative + self.true_negative


def membership_labels(universe: Iterable[Node], community: Iterable[Node]) -> dict[Node, int]:
    """Return ``{node: 1 if node in community else 0}`` over ``universe``."""
    members = set(community)
    return {node: 1 if node in members else 0 for node in universe}


def confusion_counts(
    universe: Iterable[Node],
    predicted: Iterable[Node],
    truth: Iterable[Node],
) -> ConfusionCounts:
    """Return confusion counts of ``predicted`` against ``truth`` over ``universe``."""
    universe_set = set(universe)
    predicted_set = set(predicted) & universe_set
    truth_set = set(truth) & universe_set
    tp = len(predicted_set & truth_set)
    fp = len(predicted_set - truth_set)
    fn = len(truth_set - predicted_set)
    tn = len(universe_set) - tp - fp - fn
    return ConfusionCounts(tp, fp, fn, tn)
