"""Normalized Mutual Information between two labelings (Danon et al., 2005)."""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence

from ..graph import Node
from .binary import membership_labels

__all__ = ["normalized_mutual_information", "community_nmi"]


def normalized_mutual_information(labels_a: Sequence, labels_b: Sequence) -> float:
    """Return the NMI of two label sequences of equal length.

    Uses the arithmetic-mean normalisation
    ``NMI = 2 I(A; B) / (H(A) + H(B))``; two identical labelings score 1.0,
    independent labelings score 0.0.  When both labelings have zero entropy
    (all items in one cluster) the NMI is defined as 1.0 if they agree and
    0.0 otherwise, matching scikit-learn's convention.
    """
    if len(labels_a) != len(labels_b):
        raise ValueError(
            f"label sequences must have equal length, got {len(labels_a)} and {len(labels_b)}"
        )
    n = len(labels_a)
    if n == 0:
        raise ValueError("label sequences must not be empty")

    count_a = Counter(labels_a)
    count_b = Counter(labels_b)
    joint = Counter(zip(labels_a, labels_b))

    entropy_a = _entropy(count_a.values(), n)
    entropy_b = _entropy(count_b.values(), n)
    if entropy_a == 0.0 and entropy_b == 0.0:
        return 1.0
    if entropy_a == 0.0 or entropy_b == 0.0:
        return 0.0

    mutual_information = 0.0
    for (a, b), n_ab in joint.items():
        p_ab = n_ab / n
        p_a = count_a[a] / n
        p_b = count_b[b] / n
        mutual_information += p_ab * math.log(p_ab / (p_a * p_b))
    return max(0.0, 2.0 * mutual_information / (entropy_a + entropy_b))


def community_nmi(
    universe: Iterable[Node], predicted: Iterable[Node], truth: Iterable[Node]
) -> float:
    """Return the NMI of the binary community-membership labelings.

    This is the paper's evaluation protocol: nodes inside the predicted
    community form one class and the rest of the graph the other, likewise
    for the ground-truth community, and the NMI of the two binary labelings
    is reported.
    """
    universe_list = list(universe)
    predicted_labels = membership_labels(universe_list, predicted)
    truth_labels = membership_labels(universe_list, truth)
    ordered_a = [predicted_labels[node] for node in universe_list]
    ordered_b = [truth_labels[node] for node in universe_list]
    return normalized_mutual_information(ordered_a, ordered_b)


def _entropy(counts: Iterable[int], n: int) -> float:
    """Shannon entropy (nats) of a histogram given the total count ``n``."""
    entropy = 0.0
    for count in counts:
        if count > 0:
            p = count / n
            entropy -= p * math.log(p)
    return entropy
