"""Clustering coefficients and triangle counts.

Section 6.3 explains NCA's uneven accuracy across small real graphs by the
difference in average local clustering coefficient between the two
ground-truth communities; these helpers reproduce that analysis.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from ..graph import Graph, GraphError, Node

__all__ = [
    "local_clustering_coefficient",
    "average_clustering",
    "triangle_count",
    "global_clustering_coefficient",
]


def local_clustering_coefficient(graph: Graph, node: Node) -> float:
    """Return the local clustering coefficient of ``node``.

    Nodes with degree < 2 have coefficient 0 by convention.
    """
    if not graph.has_node(node):
        raise GraphError(f"node {node!r} is not in the graph")
    neighbors = graph.neighbors(node)
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    neighbor_set = set(neighbors)
    for i, u in enumerate(neighbors):
        adjacency = graph.adjacency(u)
        for v in neighbors[i + 1 :]:
            if v in adjacency:
                links += 1
    del neighbor_set
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: Graph, nodes: Optional[Iterable[Node]] = None) -> float:
    """Return the mean local clustering coefficient over ``nodes`` (default all)."""
    node_list = list(nodes) if nodes is not None else graph.nodes()
    if not node_list:
        raise GraphError("average_clustering needs at least one node")
    return sum(local_clustering_coefficient(graph, node) for node in node_list) / len(node_list)


def triangle_count(graph: Graph, node: Optional[Node] = None) -> int:
    """Return the number of triangles through ``node`` (or in the whole graph)."""
    if node is not None:
        if not graph.has_node(node):
            raise GraphError(f"node {node!r} is not in the graph")
        neighbors = graph.neighbors(node)
        count = 0
        for i, u in enumerate(neighbors):
            adjacency = graph.adjacency(u)
            for v in neighbors[i + 1 :]:
                if v in adjacency:
                    count += 1
        return count
    total = sum(triangle_count(graph, candidate) for candidate in graph.iter_nodes())
    return total // 3


def global_clustering_coefficient(graph: Graph) -> float:
    """Return the transitivity: 3 * triangles / number of connected triples."""
    triangles = triangle_count(graph)
    triples = 0
    for node in graph.iter_nodes():
        degree = graph.degree(node)
        triples += degree * (degree - 1) // 2
    if triples == 0:
        return 0.0
    return 3.0 * triangles / triples
