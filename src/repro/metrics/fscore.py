"""Precision, recall and F-score for community search results."""

from __future__ import annotations

from collections.abc import Iterable

from ..graph import Node
from .binary import confusion_counts

__all__ = ["precision", "recall", "fscore", "community_fscore"]


def precision(predicted: Iterable[Node], truth: Iterable[Node]) -> float:
    """Return ``|predicted ∩ truth| / |predicted|`` (0.0 for an empty prediction)."""
    predicted_set = set(predicted)
    if not predicted_set:
        return 0.0
    return len(predicted_set & set(truth)) / len(predicted_set)


def recall(predicted: Iterable[Node], truth: Iterable[Node]) -> float:
    """Return ``|predicted ∩ truth| / |truth|`` (0.0 for an empty truth set)."""
    truth_set = set(truth)
    if not truth_set:
        return 0.0
    return len(set(predicted) & truth_set) / len(truth_set)


def fscore(predicted: Iterable[Node], truth: Iterable[Node], beta: float = 1.0) -> float:
    """Return the F_beta score of ``predicted`` against ``truth``.

    The paper reports F1 (``beta = 1``) and notes that, being insensitive to
    true negatives, it tends to be over-optimistic for community search —
    which is why Figures 15–19 drop it in favour of NMI/ARI.
    """
    p = precision(predicted, truth)
    r = recall(predicted, truth)
    if p == 0.0 and r == 0.0:
        return 0.0
    beta_sq = beta * beta
    return (1.0 + beta_sq) * p * r / (beta_sq * p + r)


def community_fscore(
    universe: Iterable[Node], predicted: Iterable[Node], truth: Iterable[Node], beta: float = 1.0
) -> float:
    """Return the F-score restricted to nodes of ``universe``.

    Equivalent to :func:`fscore` after intersecting both sets with the
    universe; the confusion-count path is kept for symmetry with NMI/ARI.
    """
    counts = confusion_counts(universe, predicted, truth)
    if counts.true_positive == 0:
        return 0.0
    p = counts.true_positive / (counts.true_positive + counts.false_positive)
    r = counts.true_positive / (counts.true_positive + counts.false_negative)
    beta_sq = beta * beta
    return (1.0 + beta_sq) * p * r / (beta_sq * p + r)
