"""Evaluation metrics: NMI, ARI, F-score, centralities and clustering."""

from .ari import adjusted_rand_index, community_ari
from .binary import ConfusionCounts, confusion_counts, membership_labels
from .centrality import betweenness_centrality, degree_centrality, eigenvector_centrality
from .clustering import (
    average_clustering,
    global_clustering_coefficient,
    local_clustering_coefficient,
    triangle_count,
)
from .fscore import community_fscore, fscore, precision, recall
from .nmi import community_nmi, normalized_mutual_information

__all__ = [
    "normalized_mutual_information",
    "community_nmi",
    "adjusted_rand_index",
    "community_ari",
    "fscore",
    "community_fscore",
    "precision",
    "recall",
    "ConfusionCounts",
    "confusion_counts",
    "membership_labels",
    "betweenness_centrality",
    "eigenvector_centrality",
    "degree_centrality",
    "local_clustering_coefficient",
    "average_clustering",
    "triangle_count",
    "global_clustering_coefficient",
]
