"""Adjusted Rand Index (Hubert & Arabie, 1985)."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

from ..graph import Node
from .binary import membership_labels

__all__ = ["adjusted_rand_index", "community_ari"]


def _comb2(x: int) -> int:
    """Return ``x choose 2``."""
    return x * (x - 1) // 2


def adjusted_rand_index(labels_a: Sequence, labels_b: Sequence) -> float:
    """Return the ARI of two label sequences of equal length.

    1.0 for identical partitions, about 0.0 for random agreement and
    negative for worse-than-random.  When both partitions are trivial
    (single cluster each or all singletons each) the index is 1.0 if they
    agree exactly, matching the usual convention.
    """
    if len(labels_a) != len(labels_b):
        raise ValueError(
            f"label sequences must have equal length, got {len(labels_a)} and {len(labels_b)}"
        )
    n = len(labels_a)
    if n == 0:
        raise ValueError("label sequences must not be empty")

    count_a = Counter(labels_a)
    count_b = Counter(labels_b)
    joint = Counter(zip(labels_a, labels_b))

    sum_joint = sum(_comb2(c) for c in joint.values())
    sum_a = sum(_comb2(c) for c in count_a.values())
    sum_b = sum(_comb2(c) for c in count_b.values())
    total_pairs = _comb2(n)
    if total_pairs == 0:
        return 1.0
    expected = sum_a * sum_b / total_pairs
    max_index = (sum_a + sum_b) / 2.0
    if max_index == expected:
        # both partitions trivially identical in pair structure
        return 1.0 if labels_match(labels_a, labels_b) else 0.0
    return (sum_joint - expected) / (max_index - expected)


def labels_match(labels_a: Sequence, labels_b: Sequence) -> bool:
    """Return ``True`` when the two labelings induce identical partitions."""
    mapping: dict = {}
    reverse: dict = {}
    for a, b in zip(labels_a, labels_b):
        if mapping.setdefault(a, b) != b:
            return False
        if reverse.setdefault(b, a) != a:
            return False
    return True


def community_ari(
    universe: Iterable[Node], predicted: Iterable[Node], truth: Iterable[Node]
) -> float:
    """Return the ARI of the binary community-membership labelings."""
    universe_list = list(universe)
    predicted_labels = membership_labels(universe_list, predicted)
    truth_labels = membership_labels(universe_list, truth)
    ordered_a = [predicted_labels[node] for node in universe_list]
    ordered_b = [truth_labels[node] for node in universe_list]
    return adjusted_rand_index(ordered_a, ordered_b)
