"""Luo–Wang–Promislow local-modularity greedy search (the ``icwi2008`` baseline).

Luo et al. define the *local modularity* of a subgraph ``S`` as

    M(S) = (number of internal edges of S) / (number of boundary edges of S)

and grow a community around a seed with alternating addition and deletion
phases: add the neighbouring node that increases ``M`` the most, then delete
members whose removal increases ``M`` (never deleting query nodes or
disconnecting them), repeating until no change improves the objective.

The paper observes that this baseline is unstable and often returns very
large communities because its objective favours swallowing whole dense
regions; the implementation keeps that behaviour faithfully.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..core.result import CommunityResult
from ..graph import Graph, GraphError, Node, nodes_in_same_component
from ..modularity import density_modularity

__all__ = ["local_modularity", "icwi2008_community"]


def local_modularity(graph: Graph, community: set[Node]) -> float:
    """Return Luo's local modularity ``internal edges / boundary edges``.

    A community with no boundary edges (a whole component) gets ``+inf``
    unless it also has no internal edges, in which case the value is 0.
    """
    internal = 0
    boundary = 0
    for node in community:
        for neighbor in graph.adjacency(node):
            if neighbor in community:
                internal += 1
            else:
                boundary += 1
    internal //= 2
    if boundary == 0:
        return float("inf") if internal > 0 else 0.0
    return internal / boundary


def icwi2008_community(
    graph: Graph, query_nodes: Sequence[Node], max_iterations: int = 10_000
) -> CommunityResult:
    """Grow a community around the query nodes by local-modularity greedy search."""
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")
    if not nodes_in_same_component(graph, queries):
        return CommunityResult.empty(queries, "icwi2008", reason="queries are disconnected")

    community: set[Node] = set(queries)
    current = local_modularity(graph, community)
    iterations = 0
    improved = True
    while improved and iterations < max_iterations:
        improved = False
        iterations += 1
        # addition phase: try the neighbour whose addition increases M the most
        frontier: set[Node] = set()
        for node in community:
            frontier.update(
                neighbor for neighbor in graph.adjacency(node) if neighbor not in community
            )
        best_add, best_add_value = None, current
        for candidate in frontier:
            value = local_modularity(graph, community | {candidate})
            if value > best_add_value:
                best_add, best_add_value = candidate, value
        if best_add is not None:
            community.add(best_add)
            current = best_add_value
            improved = True
        # deletion phase: remove members whose removal increases M
        for candidate in list(community):
            if candidate in queries or len(community) <= 1:
                continue
            without = community - {candidate}
            if not nodes_in_same_component(graph.subgraph(without), queries):
                continue
            value = local_modularity(graph, without)
            if value > current:
                community = without
                current = value
                improved = True

    elapsed = time.perf_counter() - start
    return CommunityResult(
        nodes=frozenset(community),
        query_nodes=queries,
        algorithm="icwi2008",
        score=density_modularity(graph, community) if community else float("-inf"),
        objective_name="density_modularity",
        elapsed_seconds=elapsed,
        extra={"local_modularity": current, "iterations": iterations},
    )
