"""Clique-percolation based community search (the ``clique`` baseline).

Yuan et al. (TKDE 2017) search for the densest clique-percolation community:
the ``k``-clique-percolation community containing the query node for the
largest feasible ``k``.  A ``k``-clique community is the union of all
maximal cliques of size ≥ ``k`` that can be reached from one another through
sequences of cliques sharing ``k - 1`` nodes.

The implementation enumerates maximal cliques with Bron–Kerbosch (with
pivoting) and percolates them by overlap; it is exponential in the worst
case and intended for the small / medium graphs the paper runs this baseline
on (it is the slowest baseline in Figure 16).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Iterator

from ..core.result import CommunityResult
from ..graph import Graph, GraphError, Node

__all__ = ["maximal_cliques", "k_clique_communities", "clique_community"]


def maximal_cliques(graph: Graph) -> Iterator[set[Node]]:
    """Yield every maximal clique via iterative Bron–Kerbosch with pivoting."""
    adjacency = {node: set(graph.adjacency(node)) for node in graph.iter_nodes()}
    if not adjacency:
        return
    stack: list[tuple[set[Node], set[Node], set[Node]]] = [
        (set(), set(adjacency), set())
    ]
    while stack:
        clique, candidates, excluded = stack.pop()
        if not candidates and not excluded:
            if clique:
                yield set(clique)
            continue
        # pivot on the node with the most candidate neighbours
        pivot = max(candidates | excluded, key=lambda node: len(adjacency[node] & candidates))
        for node in list(candidates - adjacency[pivot]):
            stack.append(
                (
                    clique | {node},
                    candidates & adjacency[node],
                    excluded & adjacency[node],
                )
            )
            candidates = candidates - {node}
            excluded = excluded | {node}


def k_clique_communities(graph: Graph, k: int) -> list[set[Node]]:
    """Return the k-clique-percolation communities of ``graph``.

    Two maximal cliques of size ≥ ``k`` belong to the same community when
    they can be linked through a chain of cliques, each consecutive pair
    sharing at least ``k - 1`` nodes.
    """
    if k < 2:
        raise GraphError(f"k must be at least 2, got {k}")
    cliques = [clique for clique in maximal_cliques(graph) if len(clique) >= k]
    if not cliques:
        return []
    # union-find over cliques
    parent = list(range(len(cliques)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: int, y: int) -> None:
        root_x, root_y = find(x), find(y)
        if root_x != root_y:
            parent[root_y] = root_x

    # index cliques by membership to find overlapping pairs without O(n^2) scans
    membership: dict[Node, list[int]] = {}
    for index, clique in enumerate(cliques):
        for node in clique:
            membership.setdefault(node, []).append(index)
    for indices in membership.values():
        for i in range(len(indices)):
            for j in range(i + 1, len(indices)):
                a, b = indices[i], indices[j]
                if find(a) == find(b):
                    continue
                if len(cliques[a] & cliques[b]) >= k - 1:
                    union(a, b)

    groups: dict[int, set[Node]] = {}
    for index, clique in enumerate(cliques):
        groups.setdefault(find(index), set()).update(clique)
    return list(groups.values())


def clique_community(
    graph: Graph, query_nodes: Sequence[Node], k: int | None = None, max_k: int = 12
) -> CommunityResult:
    """Return the clique-percolation community containing the query nodes.

    With ``k=None`` (the default) the largest feasible ``k`` up to ``max_k``
    is used, mirroring the "densest clique percolation" search of the paper's
    ``clique`` baseline; otherwise the fixed ``k`` is used.
    """
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")

    candidate_ks = [k] if k is not None else list(range(max_k, 1, -1))
    for candidate_k in candidate_ks:
        for community in k_clique_communities(graph, candidate_k):
            if queries <= community:
                elapsed = time.perf_counter() - start
                return CommunityResult(
                    nodes=frozenset(community),
                    query_nodes=queries,
                    algorithm="clique",
                    score=float(candidate_k),
                    objective_name="clique_percolation_k",
                    elapsed_seconds=elapsed,
                    extra={"k": candidate_k},
                )
    return CommunityResult.empty(
        queries, "clique", reason="no clique-percolation community contains all query nodes"
    )
