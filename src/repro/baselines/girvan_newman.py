"""Girvan–Newman divisive community detection adapted to community search (``GN``).

The GN algorithm repeatedly removes the edge with the highest betweenness
centrality, producing a hierarchy of components.  Following Section 6.1 of
the paper, among the intermediate components that contain all query nodes we
return the one with the largest density modularity.

GN is by far the most expensive baseline (O(|E|^2 |V|)); the paper reports
it failing to finish on Polblogs within 24 hours, and the experiment harness
mirrors that behaviour with a configurable budget.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Sequence
from typing import Optional

from ..core.result import CommunityResult
from ..graph import Graph, GraphError, Node, connected_component_containing
from ..modularity import density_modularity

__all__ = ["edge_betweenness", "girvan_newman_community"]


def edge_betweenness(graph: Graph) -> dict[tuple[Node, Node], float]:
    """Return the (unweighted) edge betweenness centrality of every edge."""
    betweenness: dict[tuple[Node, Node], float] = {}
    for u, v, _ in graph.iter_edges():
        betweenness[_canonical(u, v)] = 0.0
    nodes = graph.nodes()
    for source in nodes:
        # Brandes' algorithm, accumulation on edges
        stack: list[Node] = []
        predecessors: dict[Node, list[Node]] = {node: [] for node in nodes}
        sigma: dict[Node, float] = {node: 0.0 for node in nodes}
        sigma[source] = 1.0
        distance: dict[Node, int] = {source: 0}
        queue: deque[Node] = deque([source])
        while queue:
            node = queue.popleft()
            stack.append(node)
            for neighbor in graph.adjacency(node):
                if neighbor not in distance:
                    distance[neighbor] = distance[node] + 1
                    queue.append(neighbor)
                if distance[neighbor] == distance[node] + 1:
                    sigma[neighbor] += sigma[node]
                    predecessors[neighbor].append(node)
        delta: dict[Node, float] = {node: 0.0 for node in nodes}
        while stack:
            node = stack.pop()
            for predecessor in predecessors[node]:
                contribution = (sigma[predecessor] / sigma[node]) * (1.0 + delta[node])
                betweenness[_canonical(predecessor, node)] += contribution
                delta[predecessor] += contribution
    # each undirected pair of endpoints contributes twice (both directions)
    return {edge: value / 2.0 for edge, value in betweenness.items()}


def girvan_newman_community(
    graph: Graph,
    query_nodes: Sequence[Node],
    max_edge_removals: Optional[int] = None,
    time_budget_seconds: Optional[float] = None,
) -> CommunityResult:
    """Run divisive GN and return the best intermediate query component.

    Parameters
    ----------
    graph:
        Host graph.
    query_nodes:
        Query nodes that the returned community must contain.
    max_edge_removals:
        Optional cap on the number of removed edges (defaults to all edges).
    time_budget_seconds:
        Optional wall-clock budget after which the search stops and returns
        the best community found so far (mirrors the paper's 24 h timeout).
    """
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")

    working = graph.copy()
    best_nodes: Optional[set[Node]] = None
    best_value = float("-inf")

    def consider_current() -> None:
        nonlocal best_nodes, best_value
        component = connected_component_containing(working, next(iter(queries)))
        if not queries <= component:
            return
        value = density_modularity(graph, component)
        if value > best_value:
            best_value = value
            best_nodes = set(component)

    consider_current()
    removals = 0
    limit = max_edge_removals if max_edge_removals is not None else graph.number_of_edges()
    timed_out = False
    while working.number_of_edges() > 0 and removals < limit:
        if time_budget_seconds is not None and time.perf_counter() - start > time_budget_seconds:
            timed_out = True
            break
        betweenness = edge_betweenness(working)
        edge = max(betweenness, key=betweenness.get)
        working.remove_edge(*edge)
        removals += 1
        consider_current()

    elapsed = time.perf_counter() - start
    if best_nodes is None:
        return CommunityResult.empty(queries, "GN", reason="queries are disconnected")
    return CommunityResult(
        nodes=frozenset(best_nodes),
        query_nodes=queries,
        algorithm="GN",
        score=best_value,
        objective_name="density_modularity",
        elapsed_seconds=elapsed,
        extra={"edge_removals": removals, "timed_out": timed_out},
    )


def _canonical(u: Node, v: Node) -> tuple[Node, Node]:
    """Canonical undirected edge key."""
    return (u, v) if repr(u) <= repr(v) else (v, u)
