"""Closest truss community search (the ``huang2015`` baseline).

Huang et al. (PVLDB 2015) define the *closest truss community* of query
nodes ``Q`` as a connected k-truss containing ``Q`` with the maximum ``k``
and, among those, the minimum query distance (the 2-approximate "basic"
algorithm the paper uses).  The implementation here follows that basic
algorithm:

1. find the largest ``k`` for which a connected ``k``-truss contains ``Q``;
2. starting from that maximal connected ``k``-truss, iteratively delete the
   node farthest from the query nodes (together with any edges/nodes that
   fall below the truss constraint), as long as the queries stay connected;
3. return the intermediate subgraph with the smallest query distance, which
   is a 2-approximation of the optimal closest truss community.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Optional

from ..core.result import CommunityResult
from ..graph import (
    FrozenGraph,
    Graph,
    GraphError,
    Node,
    connected_component_containing,
    csr_multi_source_bfs,
    k_truss_subgraph,
    multi_source_bfs,
    node_truss_numbers,
)
from .ktruss import ktruss_structure

__all__ = ["closest_truss_community"]


def closest_truss_community(
    graph: Graph, query_nodes: Sequence[Node], max_deletions: Optional[int] = None
) -> CommunityResult:
    """Return the (2-approximate) closest truss community of the query nodes."""
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")

    base = _maximal_connected_truss(graph, queries)
    if base is None:
        return CommunityResult.empty(
            queries, "huang2015", reason="no connected truss contains all query nodes"
        )
    k, community = base
    best_nodes, best_distance, deletions = _greedy_shrink(
        graph, queries, k, community, max_deletions
    )

    elapsed = time.perf_counter() - start
    return CommunityResult(
        nodes=frozenset(best_nodes),
        query_nodes=queries,
        algorithm="huang2015",
        score=float(k),
        objective_name="truss_level",
        elapsed_seconds=elapsed,
        extra={"k": k, "query_distance": best_distance, "deletions": deletions},
    )


def _greedy_shrink(
    graph: Graph,
    queries: frozenset[Node],
    k: int,
    community: set[Node],
    max_deletions: Optional[int],
) -> tuple[set[Node], int, int]:
    """Phase 2: greedily delete the farthest node while the queries stay connected.

    Victim selection breaks distance ties canonically (lexicographic on
    ``repr``), never by set iteration order — the community index answers
    ``huang2015`` by seeding this exact function with its window scan, and
    the indexed/executed answers must stay bit-identical.

    Returns ``(best_nodes, best_distance, deletions)``.
    """
    best_nodes = set(community)
    best_distance = _query_distance(graph, best_nodes, queries)
    working = set(community)
    deletions = 0
    limit = max_deletions if max_deletions is not None else len(community)
    while deletions < limit:
        distances = _distances_within(graph, working, queries)
        # candidates: non-query nodes, farthest first (ties by repr)
        candidates = sorted(
            (node for node in working if node not in queries),
            key=lambda node: (-distances.get(node, 0), repr(node)),
        )
        if not candidates or distances.get(candidates[0], 0) == 0:
            break
        victim = candidates[0]
        trial = working - {victim}
        # maintain the k-truss constraint and connectivity of the queries
        truss = k_truss_subgraph(graph, k, within=trial)
        if not all(truss.has_node(node) for node in queries):
            break
        component = connected_component_containing(truss, next(iter(queries)))
        if not queries <= component:
            break
        working = set(component)
        deletions += 1
        distance = _query_distance(graph, working, queries)
        if distance <= best_distance:
            best_distance = distance
            best_nodes = set(working)
    return best_nodes, best_distance, deletions


def _maximal_connected_truss(
    graph: Graph, queries: frozenset[Node]
) -> Optional[tuple[int, set[Node]]]:
    """Return ``(k, nodes)`` of the connected k-truss containing queries with max k.

    Uses the memoised per-``k`` truss component structure, so on a frozen
    snapshot a batch of queries shares one decomposition (and ``kt`` /
    ``hightruss`` queries share the same cache entries).
    """
    trussness = node_truss_numbers(graph)
    upper = min(trussness[node] for node in queries)
    for k in range(upper, 2, -1):
        components, member_of = ktruss_structure(graph, k)
        if not all(node in member_of for node in queries):
            continue
        component = components[member_of[next(iter(queries))]]
        if queries <= component:
            return k, set(component)
    # fall back to the plain connected component (truss level 2)
    component = connected_component_containing(graph, next(iter(queries)))
    if queries <= component:
        return 2, set(component)
    return None


def _distances_within(
    graph: Graph, nodes: set[Node], queries: frozenset[Node]
) -> dict[Node, int]:
    """Min hop distance from any query node inside the subgraph induced on ``nodes``.

    The dict path materialises the induced subgraph and runs the reference
    BFS on it; on a frozen snapshot the same distances come from the CSR
    multi-source BFS restricted by an alive mask — no subgraph is ever
    built, which removes the last dict-bound inner loop of the phase-2
    greedy deletion.  Distances are backend independent (minimum hop counts
    have no tie-breaks), so results stay bit-identical.
    """
    if isinstance(graph, FrozenGraph):
        csr = graph.csr
        index_of = csr.index_of
        alive = bytearray(csr.number_of_nodes())
        for node in nodes:
            alive[index_of[node]] = 1
        dist, order = csr_multi_source_bfs(
            csr, [index_of[query] for query in queries], alive=alive
        )
        node_list = csr.node_list
        return {node_list[index]: dist[index] for index in order}
    subgraph = graph.subgraph(nodes)
    return multi_source_bfs(subgraph, queries)


def _query_distance(graph: Graph, nodes: set[Node], queries: frozenset[Node]) -> int:
    """Return the maximum distance from any member to its closest query node."""
    distances = _distances_within(graph, nodes, queries)
    return max((distances.get(node, 0) for node in nodes), default=0)
