"""Baseline community search / detection algorithms the paper compares against."""

from .clique import clique_community, k_clique_communities, maximal_cliques
from .closest_truss import closest_truss_community
from .cnm import cnm_community, cnm_dendrogram
from .girvan_newman import edge_betweenness, girvan_newman_community
from .kcore import highest_core_community, kcore_community
from .kecc import kecc_community
from .ktruss import highest_truss_community, ktruss_community
from .local_modularity import icwi2008_community, local_modularity
from .louvain import louvain_community, louvain_partition
from .wu2015 import query_biased_density, random_walk_with_restart, wu2015_community

__all__ = [
    "kcore_community",
    "highest_core_community",
    "ktruss_community",
    "highest_truss_community",
    "kecc_community",
    "clique_community",
    "k_clique_communities",
    "maximal_cliques",
    "girvan_newman_community",
    "edge_betweenness",
    "cnm_community",
    "cnm_dendrogram",
    "louvain_community",
    "louvain_partition",
    "icwi2008_community",
    "local_modularity",
    "closest_truss_community",
    "wu2015_community",
    "query_biased_density",
    "random_walk_with_restart",
]
