"""k-edge-connected component community search (the ``kecc`` baseline).

Chang et al. (SIGMOD 2015) return the Steiner maximum-connectivity
component; the paper runs it with a fixed ``k`` (default 3).  The community
is the maximal k-edge-connected subgraph that contains every query node.

The exact decomposition (recursive Stoer–Wagner minimum cuts, see
:func:`repro.graph.k_edge_connected_components`) is cubic-ish in pure Python
and becomes impractical beyond a few hundred nodes, whereas the original
paper relies on a specialised index.  Above ``approximate_above`` nodes this
baseline therefore falls back to a documented *superset* approximation: the
connected component containing the queries after iteratively deleting nodes
of degree < ``k``.  Every true k-edge-connected component is contained in
that set, and —as the paper itself observes— ``kecc`` with small ``k``
returns very large communities either way, which is exactly the behaviour
the accuracy figures exercise.  Set ``approximate_above=None`` to force the
exact decomposition regardless of size.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Optional

from ..core.result import CommunityResult
from ..graph import (
    FrozenGraph,
    Graph,
    GraphError,
    Node,
    k_edge_connected_components,
)
from .kcore import kcore_structure

__all__ = ["kecc_community", "KECC_DEFAULT_K", "KECC_APPROXIMATE_ABOVE"]

#: the paper's default connectivity requirement.
KECC_DEFAULT_K = 3

#: candidate-size crossover to the documented superset approximation; the
#: community index bakes partitions for candidates up to exactly this size,
#: so an index answer and an executed answer cross over at the same point.
KECC_APPROXIMATE_ABOVE = 400


def _kecc_partition(graph: Graph, candidate: set[Node], k: int) -> list[set[Node]]:
    """Return the k-edge-connected components of ``graph[candidate]``.

    The partition only depends on ``(candidate, k)`` — never on the query —
    so on a frozen graph it is computed once per pruned component and shared
    by every query of a batch (this is the cubic part of the baseline).
    """
    if isinstance(graph, FrozenGraph):
        # within= routes the frozen snapshot to the CSR min-cut kernels
        # (recursion on index subviews) instead of a mutable subgraph copy
        return graph.shared_cache().memo(
            ("kecc-partition", k, frozenset(candidate)),
            lambda: k_edge_connected_components(graph, k, within=candidate),
        )
    return k_edge_connected_components(graph, k, within=candidate)


def kecc_community(
    graph: Graph,
    query_nodes: Sequence[Node],
    k: int = KECC_DEFAULT_K,
    approximate_above: Optional[int] = KECC_APPROXIMATE_ABOVE,
) -> CommunityResult:
    """Return the k-edge-connected component containing the query nodes.

    Parameters
    ----------
    graph:
        Host graph.
    query_nodes:
        Query nodes the returned component must contain.
    k:
        Required edge connectivity (the paper's default is 3).
    approximate_above:
        When the degree-pruned candidate component exceeds this many nodes,
        return it directly (a superset of the exact answer) instead of
        running the exact minimum-cut decomposition; ``None`` disables the
        fallback.

    Returns a failed result when no such component exists (the queries sit in
    different components or fall out during peeling).
    """
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")

    # cheap necessary condition: iteratively dropping nodes of degree < k is
    # exactly the k-core; restrict to the component holding the queries
    # (memoised across queries on frozen graphs)
    components, member_of = kcore_structure(graph, k)
    if not all(node in member_of for node in queries):
        return CommunityResult.empty(
            queries, "kecc", reason=f"query nodes do not survive degree-{k} pruning"
        )
    candidate = components[member_of[next(iter(queries))]]
    if not queries <= candidate:
        return CommunityResult.empty(
            queries, "kecc", reason="query nodes lie in different pruned components"
        )

    if approximate_above is not None and len(candidate) > approximate_above:
        elapsed = time.perf_counter() - start
        return CommunityResult(
            nodes=frozenset(candidate),
            query_nodes=queries,
            algorithm="kecc",
            score=float(k),
            objective_name="edge_connectivity",
            elapsed_seconds=elapsed,
            extra={"k": k, "approximate": True},
        )

    for component in _kecc_partition(graph, candidate, k):
        if queries <= component:
            elapsed = time.perf_counter() - start
            return CommunityResult(
                nodes=frozenset(component),
                query_nodes=queries,
                algorithm="kecc",
                score=float(k),
                objective_name="edge_connectivity",
                elapsed_seconds=elapsed,
                extra={"k": k, "approximate": False},
            )
    return CommunityResult.empty(
        queries, "kecc", reason=f"no {k}-edge-connected component contains all query nodes"
    )
