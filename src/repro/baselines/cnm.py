"""Clauset–Newman–Moore agglomerative modularity clustering (``CNM``).

CNM starts from singleton communities and repeatedly merges the pair of
connected communities whose merge increases classic modularity the most,
until a single community remains.  Following Section 6.1, among the
intermediate merged communities that contain all query nodes we return the
one with the largest density modularity.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Optional

from ..core.result import CommunityResult
from ..graph import Graph, GraphError, Node
from ..modularity import density_modularity

__all__ = ["cnm_community", "cnm_dendrogram"]


def cnm_dendrogram(graph: Graph) -> list[tuple[set[Node], set[Node]]]:
    """Run CNM to completion and return the sequence of merges.

    Each entry is ``(community_a, community_b)`` in the order the merges were
    applied; the merged community is ``community_a | community_b``.
    """
    merges: list[tuple[set[Node], set[Node]]] = []
    num_edges = graph.number_of_edges()
    if num_edges == 0:
        return merges
    two_m = 2.0 * num_edges

    # community id -> member set / total degree; e[(a, b)] = fraction of edges between a and b
    members: dict[int, set[Node]] = {}
    degree_fraction: dict[int, float] = {}
    node_community: dict[Node, int] = {}
    for index, node in enumerate(graph.iter_nodes()):
        members[index] = {node}
        degree_fraction[index] = graph.degree(node) / two_m
        node_community[node] = index

    between: dict[tuple[int, int], float] = {}
    for u, v, _ in graph.iter_edges():
        a, b = node_community[u], node_community[v]
        key = (min(a, b), max(a, b))
        between[key] = between.get(key, 0.0) + 1.0 / two_m

    neighbors: dict[int, set[int]] = {index: set() for index in members}
    for a, b in between:
        neighbors[a].add(b)
        neighbors[b].add(a)

    while len(members) > 1:
        # find the merge with maximum ΔQ = 2 (e_ab - a_a a_b)
        best_pair: Optional[tuple[int, int]] = None
        best_delta = float("-inf")
        for (a, b), e_ab in between.items():
            delta = 2.0 * (e_ab - degree_fraction[a] * degree_fraction[b])
            if delta > best_delta:
                best_delta = delta
                best_pair = (a, b)
        if best_pair is None:
            break  # remaining communities are disconnected from each other
        a, b = best_pair
        merges.append((set(members[a]), set(members[b])))
        # merge b into a
        members[a] |= members.pop(b)
        degree_fraction[a] += degree_fraction.pop(b)
        for c in list(neighbors[b]):
            if c == a:
                continue
            key_bc = (min(b, c), max(b, c))
            key_ac = (min(a, c), max(a, c))
            between[key_ac] = between.get(key_ac, 0.0) + between.pop(key_bc, 0.0)
            neighbors[c].discard(b)
            neighbors[c].add(a)
            neighbors[a].add(c)
        between.pop((min(a, b), max(a, b)), None)
        neighbors[a].discard(b)
        neighbors.pop(b, None)
    return merges


def cnm_community(graph: Graph, query_nodes: Sequence[Node]) -> CommunityResult:
    """Return the best intermediate CNM community containing the query nodes."""
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")

    best_nodes: Optional[set[Node]] = None
    best_value = float("-inf")

    def consider(community: set[Node]) -> None:
        nonlocal best_nodes, best_value
        if not queries <= community:
            return
        value = density_modularity(graph, community)
        if value > best_value:
            best_value = value
            best_nodes = set(community)

    if len(queries) == 1:
        consider(set(queries))
    # replay the dendrogram; every merge produces one intermediate community
    for merge_a, merge_b in cnm_dendrogram(graph):
        merged = merge_a | merge_b
        consider(merged)

    elapsed = time.perf_counter() - start
    if best_nodes is None:
        return CommunityResult.empty(
            queries, "CNM", reason="no merged community contained all query nodes"
        )
    return CommunityResult(
        nodes=frozenset(best_nodes),
        query_nodes=queries,
        algorithm="CNM",
        score=best_value,
        objective_name="density_modularity",
        elapsed_seconds=elapsed,
        extra={},
    )
