"""Louvain modularity clustering.

The Louvain method (Blondel et al., 2008) is the strongest classic
modularity optimiser discussed in the paper's related work.  It is included
both as a community-*detection* utility (used by tests as an independent
sanity check of the generators' planted structure) and, through
:func:`louvain_community`, as an additional community-*search* baseline that
returns the detected community containing the query nodes.
"""

from __future__ import annotations

import random
import time
from collections.abc import Sequence

from ..core.result import CommunityResult
from ..graph import Graph, GraphError, Node
from ..modularity import density_modularity

__all__ = ["louvain_partition", "louvain_community"]


def louvain_partition(
    graph: Graph, max_passes: int = 10, seed: int = 0, resolution: float = 1.0
) -> list[set[Node]]:
    """Return a partition of the graph found by the Louvain method.

    Parameters
    ----------
    graph:
        Host graph (edge weights are honoured).
    max_passes:
        Maximum number of level-0 local-move passes per level.
    seed:
        Seed controlling the node visiting order.
    resolution:
        Resolution parameter γ of the modularity objective (1.0 = classic).
    """
    if graph.number_of_edges() == 0:
        return [{node} for node in graph.iter_nodes()]
    rng = random.Random(seed)

    working = graph.copy()
    # each working node is a "super node" standing for a set of original nodes;
    # self_loops[n] holds the total weight of edges internal to the super node
    # (our Graph type is simple, so self-loop mass is carried separately)
    super_members: dict[Node, set[Node]] = {node: {node} for node in graph.iter_nodes()}
    self_loops: dict[Node, float] = {node: 0.0 for node in graph.iter_nodes()}

    while True:
        moved = _one_level(working, self_loops, rng, max_passes, resolution)
        groups = _group_by_community(moved)
        if len(groups) == working.number_of_nodes():
            break  # no merges happened at this level; we have converged
        # dense relabelling: original community label -> 0..k-1
        dense = {label: index for index, label in enumerate(groups)}
        new_super_members: dict[Node, set[Node]] = {}
        new_self_loops: dict[Node, float] = {}
        for label, super_nodes in groups.items():
            merged: set[Node] = set()
            loop_weight = 0.0
            for super_node in super_nodes:
                merged |= super_members[super_node]
                loop_weight += self_loops[super_node]
            new_super_members[dense[label]] = merged
            new_self_loops[dense[label]] = loop_weight
        # build the condensed graph for the next level; intra-community edge
        # weight is folded into the community's self-loop mass
        condensed = Graph(nodes=new_super_members.keys())
        for u, v, weight in working.iter_edges():
            cu, cv = dense[moved[u]], dense[moved[v]]
            if cu == cv:
                new_self_loops[cu] += weight
                continue
            if condensed.has_edge(cu, cv):
                condensed.add_edge(cu, cv, condensed.edge_weight(cu, cv) + weight)
            else:
                condensed.add_edge(cu, cv, weight)
        working = condensed
        super_members = new_super_members
        self_loops = new_self_loops
        if working.number_of_edges() == 0:
            break

    return [set(members) for members in super_members.values()]


def _one_level(
    graph: Graph,
    self_loops: dict[Node, float],
    rng: random.Random,
    max_passes: int,
    resolution: float,
) -> dict[Node, int]:
    """Perform local moves until no node improves modularity; return labels."""
    # a super node's degree includes twice its internal (self-loop) mass
    def degree_of(node: Node) -> float:
        return graph.weighted_degree(node) + 2.0 * self_loops.get(node, 0.0)

    two_m = sum(degree_of(node) for node in graph.iter_nodes())
    if two_m == 0.0:
        return {node: index for index, node in enumerate(graph.iter_nodes())}
    community: dict[Node, int] = {node: index for index, node in enumerate(graph.iter_nodes())}
    community_degree: dict[int, float] = {
        community[node]: degree_of(node) for node in graph.iter_nodes()
    }
    nodes = graph.nodes()

    for _ in range(max_passes):
        improved = False
        rng.shuffle(nodes)
        for node in nodes:
            node_degree = degree_of(node)
            current = community[node]
            # weights from `node` to each neighbouring community
            links: dict[int, float] = {}
            for neighbor, weight in graph.adjacency(node).items():
                links[community[neighbor]] = links.get(community[neighbor], 0.0) + weight
            community_degree[current] -= node_degree
            best_community = current
            best_gain = links.get(current, 0.0) - resolution * community_degree[current] * node_degree / two_m
            for candidate, link_weight in links.items():
                if candidate == current:
                    continue
                gain = link_weight - resolution * community_degree[candidate] * node_degree / two_m
                if gain > best_gain:
                    best_gain = gain
                    best_community = candidate
            community_degree[best_community] = community_degree.get(best_community, 0.0) + node_degree
            if best_community != current:
                community[node] = best_community
                improved = True
        if not improved:
            break
    return community


def _group_by_community(labels: dict[Node, int]) -> dict[int, set[Node]]:
    """Group working-graph nodes by their community label."""
    groups: dict[int, set[Node]] = {}
    for node, label in labels.items():
        groups.setdefault(label, set()).add(node)
    return groups


def louvain_community(
    graph: Graph, query_nodes: Sequence[Node], seed: int = 0
) -> CommunityResult:
    """Return the Louvain community containing the query nodes.

    When the query nodes fall into different detected communities, the union
    of those communities is returned (the result must contain every query
    node to be comparable with the other search algorithms).
    """
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")
    partition = louvain_partition(graph, seed=seed)
    selected: set[Node] = set()
    for community in partition:
        if community & queries:
            selected |= community
    elapsed = time.perf_counter() - start
    if not queries <= selected:
        return CommunityResult.empty(queries, "louvain", reason="queries not covered by partition")
    return CommunityResult(
        nodes=frozenset(selected),
        query_nodes=queries,
        algorithm="louvain",
        score=density_modularity(graph, selected),
        objective_name="density_modularity",
        elapsed_seconds=elapsed,
        extra={"num_communities": len(partition)},
    )
