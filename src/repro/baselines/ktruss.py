"""k-truss based community search (the ``kt`` and ``hightruss`` baselines).

``kt`` follows Huang et al. (SIGMOD 2014): the community is the connected
component of the maximal ``k``-truss that contains the query node(s).
``hightruss`` maximises ``k`` instead of taking it as a parameter.

The truss decomposition is query independent, so when the input is a
:class:`~repro.graph.csr.FrozenGraph` the per-``k`` component structure is
memoised on the snapshot's shared cache (mirroring ``kc``/``highcore``) —
and the decomposition itself runs once on the CSR kernels, so a batch of
queries pays for one peel per dataset instead of one per query.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..core.result import CommunityResult
from ..graph import (
    FrozenGraph,
    Graph,
    GraphError,
    Node,
    connected_component_containing,
    connected_components,
    k_truss_subgraph,
    node_truss_numbers,
)

__all__ = ["ktruss_community", "highest_truss_community", "ktruss_structure"]


def ktruss_structure(graph: Graph, k: int) -> tuple[list[set[Node]], dict[Node, int]]:
    """Return ``(components, member_of)`` of the ``k``-truss of ``graph``.

    ``components`` lists the connected components of the k-truss as node
    sets; ``member_of`` maps every surviving node to its component index.
    Memoised on frozen graphs (the decomposition is query independent).
    """
    if isinstance(graph, FrozenGraph):
        return graph.shared_cache().memo(
            ("ktruss-structure", k), lambda: _compute_ktruss_structure(graph, k)
        )
    return _compute_ktruss_structure(graph, k)


def _compute_ktruss_structure(graph: Graph, k: int) -> tuple[list[set[Node]], dict[Node, int]]:
    components = connected_components(k_truss_subgraph(graph, k))
    member_of = {node: index for index, component in enumerate(components) for node in component}
    return components, member_of


def ktruss_community(graph: Graph, query_nodes: Sequence[Node], k: int = 4) -> CommunityResult:
    """Return the connected ``k``-truss community containing the query nodes."""
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")
    components, member_of = ktruss_structure(graph, k)
    missing = [node for node in queries if node not in member_of]
    if missing:
        return CommunityResult.empty(
            queries, "kt", reason=f"query nodes {missing!r} are not in the {k}-truss"
        )
    component = components[member_of[next(iter(queries))]]
    if not queries <= component:
        return CommunityResult.empty(
            queries, "kt", reason="query nodes lie in different components of the k-truss"
        )
    elapsed = time.perf_counter() - start
    return CommunityResult(
        nodes=frozenset(component),
        query_nodes=queries,
        algorithm="kt",
        score=float(k),
        objective_name="truss_level",
        elapsed_seconds=elapsed,
        extra={"k": k},
    )


def highest_truss_community(graph: Graph, query_nodes: Sequence[Node]) -> CommunityResult:
    """Return the connected truss community with the largest feasible ``k``."""
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")
    trussness = node_truss_numbers(graph)
    upper = min(trussness[node] for node in queries)
    for k in range(upper, 2, -1):
        components, member_of = ktruss_structure(graph, k)
        if not all(node in member_of for node in queries):
            continue
        component = components[member_of[next(iter(queries))]]
        if queries <= component:
            elapsed = time.perf_counter() - start
            return CommunityResult(
                nodes=frozenset(component),
                query_nodes=queries,
                algorithm="hightruss",
                score=float(k),
                objective_name="truss_level",
                elapsed_seconds=elapsed,
                extra={"k": k},
            )
    # fall back to the whole component at truss level 2 (no triangle constraint)
    component = connected_component_containing(graph, next(iter(queries)))
    if queries <= component:
        elapsed = time.perf_counter() - start
        return CommunityResult(
            nodes=frozenset(component),
            query_nodes=queries,
            algorithm="hightruss",
            score=2.0,
            objective_name="truss_level",
            elapsed_seconds=elapsed,
            extra={"k": 2},
        )
    return CommunityResult.empty(queries, "hightruss", reason="queries are disconnected")
