"""k-core based community search (the ``kc`` and ``highcore`` baselines).

``kc`` follows Sozio & Gionis (KDD 2010): the community is the connected
component of the maximal subgraph with minimum degree ``k`` that contains
every query node.  ``highcore`` instead maximises ``k``: it returns the
connected ``k``-core containing the queries for the largest feasible ``k``.

The k-core decomposition is query independent, so when the input is a
:class:`~repro.graph.csr.FrozenGraph` the per-``k`` component structure is
memoised on the snapshot's shared cache — a batch of queries then pays for
the peeling once instead of once per query.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..core.result import CommunityResult
from ..graph import (
    FrozenGraph,
    Graph,
    GraphError,
    Node,
    connected_components,
    core_numbers,
    csr_connected_components,
    csr_core_numbers,
    k_core_subgraph,
)

__all__ = ["kcore_community", "highest_core_community", "kcore_structure"]


def kcore_structure(graph: Graph, k: int) -> tuple[list[set[Node]], dict[Node, int]]:
    """Return ``(components, member_of)`` of the ``k``-core of ``graph``.

    ``components`` lists the connected components of the k-core as node
    sets; ``member_of`` maps every surviving node to its component index.
    Memoised on frozen graphs (the decomposition is query independent),
    where it runs entirely on the CSR kernels: the k-core's node set is
    exactly ``{v : core(v) >= k}`` and components are discovered in the
    same first-seen node order as the dict path, so results stay
    bit-identical without ever touching the dict adjacency (which an
    attached shared snapshot materialises only on demand).
    """
    if isinstance(graph, FrozenGraph):
        return graph.shared_cache().memo(
            ("kcore-structure", k), lambda: _frozen_kcore_structure(graph, k)
        )
    return _compute_kcore_structure(graph, k)


def _compute_kcore_structure(graph: Graph, k: int) -> tuple[list[set[Node]], dict[Node, int]]:
    components = connected_components(k_core_subgraph(graph, k))
    member_of = {node: index for index, component in enumerate(components) for node in component}
    return components, member_of


def _frozen_kcore_structure(
    graph: FrozenGraph, k: int
) -> tuple[list[set[Node]], dict[Node, int]]:
    """CSR twin of :func:`_compute_kcore_structure` (same output, no dicts)."""
    if k < 0:  # mirror k_core_subgraph's validation on the dict path
        raise GraphError(f"k must be non-negative, got {k}")
    csr = graph.csr
    core = _frozen_core_list(graph)
    alive = bytearray(1 if c >= k else 0 for c in core)
    node_list = csr.node_list
    components = [
        {node_list[i] for i in component}
        for component in csr_connected_components(csr, alive=alive)
    ]
    member_of = {node: index for index, component in enumerate(components) for node in component}
    return components, member_of


def _frozen_core_list(graph: FrozenGraph) -> list[int]:
    """The positional core numbers of a frozen snapshot, memoised once."""
    return graph.shared_cache().memo(
        ("csr-core-numbers",), lambda: csr_core_numbers(graph.csr)
    )


def _graph_core_numbers(graph: Graph) -> dict[Node, int]:
    """Return (and memoise, when frozen) the core number of every node."""
    if isinstance(graph, FrozenGraph):
        return graph.shared_cache().memo(
            ("core-numbers",),
            lambda: dict(zip(graph.csr.node_list, _frozen_core_list(graph))),
        )
    return core_numbers(graph)


def kcore_community(graph: Graph, query_nodes: Sequence[Node], k: int = 3) -> CommunityResult:
    """Return the connected ``k``-core community containing the query nodes.

    Returns a failed result when some query node does not survive the
    ``k``-core peeling or the query nodes end up in different components.
    """
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")
    components, member_of = kcore_structure(graph, k)
    missing = [node for node in queries if node not in member_of]
    if missing:
        return CommunityResult.empty(
            queries, "kc", reason=f"query nodes {missing!r} are not in the {k}-core"
        )
    component = components[member_of[next(iter(queries))]]
    if not queries <= component:
        return CommunityResult.empty(
            queries, "kc", reason="query nodes lie in different components of the k-core"
        )
    elapsed = time.perf_counter() - start
    return CommunityResult(
        nodes=frozenset(component),
        query_nodes=queries,
        algorithm="kc",
        score=float(k),
        objective_name="min_degree",
        elapsed_seconds=elapsed,
        extra={"k": k},
    )


def highest_core_community(graph: Graph, query_nodes: Sequence[Node]) -> CommunityResult:
    """Return the connected core community with the largest feasible ``k``.

    The feasible ``k`` is bounded by the smallest core number among the
    query nodes; the algorithm walks down from that bound until the query
    nodes sit in one connected component of the ``k``-core.
    """
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")
    coreness = _graph_core_numbers(graph)
    upper = min(coreness[node] for node in queries)
    for k in range(upper, 0, -1):
        components, member_of = kcore_structure(graph, k)
        if not all(node in member_of for node in queries):
            continue
        component = components[member_of[next(iter(queries))]]
        if queries <= component:
            elapsed = time.perf_counter() - start
            return CommunityResult(
                nodes=frozenset(component),
                query_nodes=queries,
                algorithm="highcore",
                score=float(k),
                objective_name="min_degree",
                elapsed_seconds=elapsed,
                extra={"k": k},
            )
    return CommunityResult.empty(queries, "highcore", reason="no connected core contains the queries")
