"""k-core based community search (the ``kc`` and ``highcore`` baselines).

``kc`` follows Sozio & Gionis (KDD 2010): the community is the connected
component of the maximal subgraph with minimum degree ``k`` that contains
every query node.  ``highcore`` instead maximises ``k``: it returns the
connected ``k``-core containing the queries for the largest feasible ``k``.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..core.result import CommunityResult
from ..graph import (
    Graph,
    GraphError,
    Node,
    connected_component_containing,
    core_numbers,
    k_core_subgraph,
)

__all__ = ["kcore_community", "highest_core_community"]


def kcore_community(graph: Graph, query_nodes: Sequence[Node], k: int = 3) -> CommunityResult:
    """Return the connected ``k``-core community containing the query nodes.

    Returns a failed result when some query node does not survive the
    ``k``-core peeling or the query nodes end up in different components.
    """
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")
    core = k_core_subgraph(graph, k)
    missing = [node for node in queries if not core.has_node(node)]
    if missing:
        return CommunityResult.empty(
            queries, "kc", reason=f"query nodes {missing!r} are not in the {k}-core"
        )
    component = connected_component_containing(core, next(iter(queries)))
    if not queries <= component:
        return CommunityResult.empty(
            queries, "kc", reason="query nodes lie in different components of the k-core"
        )
    elapsed = time.perf_counter() - start
    return CommunityResult(
        nodes=frozenset(component),
        query_nodes=queries,
        algorithm="kc",
        score=float(k),
        objective_name="min_degree",
        elapsed_seconds=elapsed,
        extra={"k": k},
    )


def highest_core_community(graph: Graph, query_nodes: Sequence[Node]) -> CommunityResult:
    """Return the connected core community with the largest feasible ``k``.

    The feasible ``k`` is bounded by the smallest core number among the
    query nodes; the algorithm walks down from that bound until the query
    nodes sit in one connected component of the ``k``-core.
    """
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")
    coreness = core_numbers(graph)
    upper = min(coreness[node] for node in queries)
    for k in range(upper, 0, -1):
        core = k_core_subgraph(graph, k)
        if not all(core.has_node(node) for node in queries):
            continue
        component = connected_component_containing(core, next(iter(queries)))
        if queries <= component:
            elapsed = time.perf_counter() - start
            return CommunityResult(
                nodes=frozenset(component),
                query_nodes=queries,
                algorithm="highcore",
                score=float(k),
                objective_name="min_degree",
                elapsed_seconds=elapsed,
                extra={"k": k},
            )
    return CommunityResult.empty(queries, "highcore", reason="no connected core contains the queries")
