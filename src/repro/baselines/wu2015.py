"""Query-biased density greedy node deletion (the ``wu2015`` baseline).

Wu et al. (PVLDB 2015) weight every node by its proximity to the query
(obtained from a random walk with restart) and search for the subgraph
maximising the *query-biased density*

    ρ(S) = (sum of internal edge weights of S) / (sum of node penalties of S)

where the penalty of a node is the reciprocal of its query proximity, so
nodes far from the query are expensive to keep.  Their greedy algorithm
peels non-query, non-articulation nodes whose removal maximises the
query-biased density; the parameter ``eta`` bounds the (normalised) degree
of the nodes eligible for removal — the paper runs it with ``eta = 0.5``.

Substitution note (documented in DESIGN.md): the original paper derives node
penalties from a personalised PageRank vector; we compute exactly that with
a power-iteration random walk with restart, so the code path (proximity →
penalty → greedy peel) matches the original design.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..core.result import CommunityResult
from ..graph import (
    Graph,
    GraphError,
    Node,
    articulation_points,
    connected_component_containing,
    nodes_in_same_component,
)
from ..modularity import density_modularity

__all__ = ["random_walk_with_restart", "query_biased_density", "wu2015_community"]


def random_walk_with_restart(
    graph: Graph,
    query_nodes: Sequence[Node],
    restart_probability: float = 0.15,
    max_iterations: int = 100,
    tolerance: float = 1.0e-10,
) -> dict[Node, float]:
    """Return the stationary visiting probabilities of a RWR from the queries."""
    queries = set(query_nodes)
    nodes = graph.nodes()
    if not queries:
        raise GraphError("random walk with restart needs at least one query node")
    restart_mass = 1.0 / len(queries)
    probability = {node: (restart_mass if node in queries else 0.0) for node in nodes}
    for _ in range(max_iterations):
        updated = {node: (restart_probability * restart_mass if node in queries else 0.0) for node in nodes}
        for node in nodes:
            mass = probability[node]
            if mass == 0.0:
                continue
            degree = graph.weighted_degree(node)
            if degree == 0.0:
                # dangling mass restarts
                for query in queries:
                    updated[query] += (1.0 - restart_probability) * mass * restart_mass
                continue
            share = (1.0 - restart_probability) * mass / degree
            for neighbor, weight in graph.adjacency(node).items():
                updated[neighbor] += share * weight
        drift = sum(abs(updated[node] - probability[node]) for node in nodes)
        probability = updated
        if drift < tolerance:
            break
    return probability


def query_biased_density(
    graph: Graph, community: set[Node], penalties: dict[Node, float]
) -> float:
    """Return the query-biased density ρ(S) of ``community``."""
    internal = 0.0
    for node in community:
        for neighbor, weight in graph.adjacency(node).items():
            if neighbor in community:
                internal += weight
    internal /= 2.0
    penalty = sum(penalties[node] for node in community)
    if penalty == 0.0:
        return 0.0
    return internal / penalty


def wu2015_community(
    graph: Graph,
    query_nodes: Sequence[Node],
    eta: float = 0.5,
    restart_probability: float = 0.15,
) -> CommunityResult:
    """Run the query-biased density greedy deletion of Wu et al. (2015).

    Parameters
    ----------
    graph:
        Host graph.
    query_nodes:
        Query nodes (never removed).
    eta:
        Degree bound for removable non-articulation nodes, as a fraction of
        the maximum degree inside the current subgraph; the paper uses 0.5.
    restart_probability:
        Restart probability of the proximity random walk.
    """
    start = time.perf_counter()
    queries = frozenset(query_nodes)
    if not queries:
        raise GraphError("community search needs at least one query node")
    for node in queries:
        if not graph.has_node(node):
            raise GraphError(f"query node {node!r} is not in the graph")
    if not nodes_in_same_component(graph, queries):
        return CommunityResult.empty(queries, "wu2015", reason="queries are disconnected")
    if not 0.0 < eta <= 1.0:
        raise GraphError(f"eta must be in (0, 1], got {eta}")

    component = connected_component_containing(graph, next(iter(queries)))
    working = graph.subgraph(component)
    proximity = random_walk_with_restart(working, sorted(queries, key=repr), restart_probability)
    floor = min(value for value in proximity.values() if value > 0.0) if proximity else 1.0
    penalties = {
        node: 1.0 / max(proximity.get(node, 0.0), floor * 1.0e-3) for node in working.iter_nodes()
    }

    members = set(component)
    subgraph = graph.subgraph(members)
    # incrementally maintained totals of ρ(S): internal edge weight and penalties
    internal_total = sum(weight for _, _, weight in subgraph.iter_edges())
    penalty_total = sum(penalties[node] for node in members)
    edge_weight_into = {node: subgraph.weighted_degree(node) for node in members}

    best_nodes = set(members)
    best_value = internal_total / penalty_total if penalty_total > 0 else 0.0

    while True:
        articulation = articulation_points(subgraph)
        max_degree = max((subgraph.degree(node) for node in members), default=0)
        threshold = eta * max_degree
        candidates = [
            node
            for node in members
            if node not in queries and node not in articulation and subgraph.degree(node) <= threshold
        ]
        if not candidates:
            break
        best_candidate = None
        best_candidate_value = float("-inf")
        for node in candidates:
            remaining_penalty = penalty_total - penalties[node]
            if remaining_penalty <= 0.0:
                continue
            value = (internal_total - edge_weight_into[node]) / remaining_penalty
            if value > best_candidate_value:
                best_candidate_value = value
                best_candidate = node
        if best_candidate is None or best_candidate_value < best_value:
            break
        internal_total -= edge_weight_into[best_candidate]
        penalty_total -= penalties[best_candidate]
        for neighbor, weight in subgraph.adjacency(best_candidate).items():
            edge_weight_into[neighbor] -= weight
        subgraph.remove_node(best_candidate)
        members.discard(best_candidate)
        edge_weight_into.pop(best_candidate, None)
        best_value = best_candidate_value
        best_nodes = set(members)

    elapsed = time.perf_counter() - start
    return CommunityResult(
        nodes=frozenset(best_nodes),
        query_nodes=queries,
        algorithm="wu2015",
        score=density_modularity(graph, best_nodes),
        objective_name="density_modularity",
        elapsed_seconds=elapsed,
        extra={"eta": eta, "query_biased_density": best_value},
    )
