"""Built-in datasets: the paper's Table 1 (real + surrogate) and Table 2 (LFR)."""

from .base import Dataset
from .karate import KARATE_EDGES, KARATE_MR_HI, KARATE_OFFICER, karate_graph, load_karate
from .lfr import PAPER_LFR_SWEEP, LFRConfig, load_lfr
from .registry import DATASET_LOADERS, list_datasets, load_dataset, table1_datasets
from .surrogates import (
    load_dblp_surrogate,
    load_dolphin_surrogate,
    load_livejournal_surrogate,
    load_mexican_surrogate,
    load_polblogs_surrogate,
    load_youtube_surrogate,
    make_overlapping_surrogate,
    make_two_community_surrogate,
)
from .toy import figure1_dataset, figure1_network, ring_of_cliques_dataset

__all__ = [
    "Dataset",
    "load_karate",
    "karate_graph",
    "KARATE_EDGES",
    "KARATE_MR_HI",
    "KARATE_OFFICER",
    "figure1_network",
    "figure1_dataset",
    "ring_of_cliques_dataset",
    "make_two_community_surrogate",
    "make_overlapping_surrogate",
    "load_dolphin_surrogate",
    "load_mexican_surrogate",
    "load_polblogs_surrogate",
    "load_dblp_surrogate",
    "load_youtube_surrogate",
    "load_livejournal_surrogate",
    "LFRConfig",
    "PAPER_LFR_SWEEP",
    "load_lfr",
    "DATASET_LOADERS",
    "load_dataset",
    "list_datasets",
    "table1_datasets",
]
