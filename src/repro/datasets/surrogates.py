"""Surrogate datasets standing in for the paper's real-world networks.

Only the karate club is small enough to embed verbatim; the remaining
Table-1 datasets (Dolphin, Mexican, Polblogs, DBLP, Youtube, Livejournal)
require downloading edge lists that are unavailable offline.  For each of
them we generate a *surrogate*: a stochastic-block-model or LFR-style graph
matched on the statistics the paper's experiments actually consume —

* number of nodes and edges (scaled down for the three SNAP graphs),
* number of ground-truth communities and whether they overlap,
* the rough mixing level between communities.

The experiments only ever read the graph structure plus the ground-truth
communities, so a surrogate with the same shape exercises exactly the same
code paths; see DESIGN.md §3 for the substitution rationale.  Users with the
real SNAP/KONECT files can load them through :mod:`repro.graph.io` and build
:class:`~repro.datasets.base.Dataset` objects directly.
"""

from __future__ import annotations

import random

from ..graph import Graph, GraphError, stochastic_block_model
from .base import Dataset

__all__ = [
    "make_two_community_surrogate",
    "load_dolphin_surrogate",
    "load_mexican_surrogate",
    "load_polblogs_surrogate",
    "make_overlapping_surrogate",
    "load_dblp_surrogate",
    "load_youtube_surrogate",
    "load_livejournal_surrogate",
]


def make_two_community_surrogate(
    name: str,
    num_nodes: int,
    target_edges: int,
    mixing: float = 0.1,
    balance: float = 0.5,
    seed: int = 0,
    description: str = "",
) -> Dataset:
    """Return a two-community SBM surrogate matched on ``|V|`` and roughly ``|E|``.

    Parameters
    ----------
    name:
        Dataset name.
    num_nodes / target_edges:
        Size of the real network being imitated.
    mixing:
        Fraction of edges expected to run between the two communities.
    balance:
        Fraction of nodes in the first community.
    seed:
        Generator seed.
    description:
        Human-readable provenance note.
    """
    if num_nodes < 4:
        raise GraphError(f"surrogates need at least 4 nodes, got {num_nodes}")
    size_a = max(2, int(round(num_nodes * balance)))
    size_b = max(2, num_nodes - size_a)
    # expected edge counts under an SBM: within = p_in * (pairs within), across = p_out * pairs across
    pairs_within = size_a * (size_a - 1) / 2 + size_b * (size_b - 1) / 2
    pairs_across = size_a * size_b
    internal_edges = target_edges * (1.0 - mixing)
    external_edges = target_edges * mixing
    p_in = min(1.0, internal_edges / pairs_within)
    p_out = min(1.0, external_edges / pairs_across)
    graph, membership = stochastic_block_model([size_a, size_b], p_in, p_out, seed=seed)
    _ensure_connected(graph, seed=seed)
    community_a = frozenset(node for node, block in membership.items() if block == 0)
    community_b = frozenset(node for node, block in membership.items() if block == 1)
    return Dataset(
        name=name,
        graph=graph,
        communities=(community_a, community_b),
        overlapping=False,
        description=description or f"SBM surrogate ({num_nodes} nodes, ~{target_edges} edges)",
        metadata={"p_in": p_in, "p_out": p_out, "mixing": mixing, "seed": seed, "surrogate": True},
    )


def load_dolphin_surrogate(seed: int = 7) -> Dataset:
    """Surrogate for the Dolphin social network (62 nodes, 159 edges, 2 communities)."""
    return make_two_community_surrogate(
        "dolphin",
        num_nodes=62,
        target_edges=159,
        mixing=0.12,
        balance=0.34,  # the real network's communities have 21 and 41 members
        seed=seed,
        description="Surrogate for Lusseau's dolphin network (male/female communities)",
    )


def load_mexican_surrogate(seed: int = 11) -> Dataset:
    """Surrogate for the Mexican political elite network (35 nodes, 117 edges, 2 communities)."""
    return make_two_community_surrogate(
        "mexican",
        num_nodes=35,
        target_edges=117,
        mixing=0.25,
        balance=0.5,
        seed=seed,
        description="Surrogate for the Mexican politicians network (civil/military groups)",
    )


def load_polblogs_surrogate(seed: int = 13, scale: float = 1.0) -> Dataset:
    """Surrogate for the political blogs network (1,224 nodes, 16,718 edges, 2 communities).

    ``scale`` < 1 shrinks both node and edge counts proportionally, which the
    experiment harness uses to keep the slowest baselines within budget.
    """
    num_nodes = max(50, int(1224 * scale))
    target_edges = max(200, int(16718 * scale))
    return make_two_community_surrogate(
        "polblogs",
        num_nodes=num_nodes,
        target_edges=target_edges,
        mixing=0.09,
        balance=0.48,
        seed=seed,
        description="Surrogate for the 2004 US political blogosphere (liberal/conservative)",
    )


def make_overlapping_surrogate(
    name: str,
    num_nodes: int,
    avg_community_size: int,
    num_communities: int,
    mixing: float = 0.25,
    overlap_fraction: float = 0.15,
    intra_probability: float = 0.3,
    seed: int = 0,
    description: str = "",
) -> Dataset:
    """Return a surrogate with many small, partially overlapping communities.

    This mimics the SNAP ground-truth community structure of DBLP / Youtube /
    Livejournal: a large sparse graph where each ground-truth community is a
    small dense pocket and some nodes belong to several pockets.

    The construction assigns each community a random set of members (with a
    fraction of members shared with other communities), wires each community
    internally as a dense Erdős–Rényi pocket, and adds a sparse background of
    random edges so that the global mixing matches ``mixing``.
    """
    rng = random.Random(seed)
    graph = Graph(nodes=range(num_nodes))
    communities: list[set[int]] = []
    all_nodes = list(range(num_nodes))

    for _ in range(num_communities):
        size = max(3, int(rng.gauss(avg_community_size, avg_community_size * 0.3)))
        size = min(size, num_nodes)
        members = set(rng.sample(all_nodes, size))
        communities.append(members)

    # make a controlled fraction of nodes overlap by copying them across communities
    num_overlaps = int(overlap_fraction * num_communities)
    for _ in range(num_overlaps):
        if len(communities) < 2:
            break
        a, b = rng.sample(range(len(communities)), 2)
        mover = rng.choice(sorted(communities[a], key=repr))
        communities[b].add(mover)

    internal_edges = 0
    for members in communities:
        member_list = sorted(members)
        for i, u in enumerate(member_list):
            for v in member_list[i + 1 :]:
                if rng.random() < intra_probability and not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    internal_edges += 1

    # sparse background so that ~mixing of all edges are inter-community
    target_external = int(internal_edges * mixing / max(1e-9, 1.0 - mixing))
    attempts = 0
    added = 0
    while added < target_external and attempts < 20 * target_external + 100:
        attempts += 1
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        added += 1

    _ensure_connected(graph, seed=seed)
    return Dataset(
        name=name,
        graph=graph,
        communities=tuple(frozenset(members) for members in communities),
        overlapping=True,
        description=description,
        metadata={
            "avg_community_size": avg_community_size,
            "mixing": mixing,
            "overlap_fraction": overlap_fraction,
            "seed": seed,
            "surrogate": True,
        },
    )


def load_dblp_surrogate(seed: int = 17, num_nodes: int = 3000) -> Dataset:
    """Scaled surrogate for the DBLP co-authorship network with overlapping communities.

    The real DBLP graph has 317 K nodes and 13,477 publication-venue
    communities with a small average size; the surrogate keeps the shape
    (many small, slightly overlapping, triangle-poor communities) at a size a
    pure-Python stack can sweep.
    """
    return make_overlapping_surrogate(
        "dblp",
        num_nodes=num_nodes,
        avg_community_size=12,
        num_communities=max(20, num_nodes // 12),
        mixing=0.25,
        overlap_fraction=0.2,
        intra_probability=0.35,
        seed=seed,
        description="Scaled surrogate for SNAP DBLP (overlapping venue communities)",
    )


def load_youtube_surrogate(seed: int = 19, num_nodes: int = 4000) -> Dataset:
    """Scaled surrogate for the Youtube social network (user-defined groups)."""
    return make_overlapping_surrogate(
        "youtube",
        num_nodes=num_nodes,
        avg_community_size=15,
        num_communities=max(20, num_nodes // 20),
        mixing=0.35,
        overlap_fraction=0.25,
        intra_probability=0.3,
        seed=seed,
        description="Scaled surrogate for SNAP Youtube (overlapping user groups)",
    )


def load_livejournal_surrogate(seed: int = 23, num_nodes: int = 5000) -> Dataset:
    """Scaled surrogate for the LiveJournal social network (user-defined groups)."""
    return make_overlapping_surrogate(
        "livejournal",
        num_nodes=num_nodes,
        avg_community_size=20,
        num_communities=max(20, num_nodes // 15),
        mixing=0.3,
        overlap_fraction=0.3,
        intra_probability=0.35,
        seed=seed,
        description="Scaled surrogate for SNAP LiveJournal (overlapping user groups)",
    )


def _ensure_connected(graph: Graph, seed: int = 0) -> None:
    """Connect stray components to the largest one with single random edges.

    Community-search experiments need the query's component to contain the
    ground truth; a fully connected surrogate avoids degenerate query draws.
    """
    from ..graph import connected_components

    rng = random.Random(seed)
    components = connected_components(graph)
    if len(components) <= 1:
        return
    components.sort(key=len, reverse=True)
    hub_component = sorted(components[0], key=repr)
    for component in components[1:]:
        u = rng.choice(sorted(component, key=repr))
        v = rng.choice(hub_component)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
