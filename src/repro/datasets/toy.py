"""Hand-built example networks from the paper.

* :func:`figure1_network` — the 16-node toy network of Figure 1 whose exact
  modularity values the paper computes in Examples 1 and 2
  (``|E| = 26``, ``l_A = 6``, ``d_A = 14``, ``l_{A∪B} = 14``, ``d_{A∪B} = 28``).
* :func:`ring_of_cliques_dataset` — the Figure-2 ring of 30 six-node cliques
  used in Example 3 to illustrate the resolution limit.
"""

from __future__ import annotations

from ..graph import Graph, ring_of_cliques
from .base import Dataset

__all__ = ["figure1_network", "figure1_dataset", "ring_of_cliques_dataset"]

# Community A: a 4-clique on u1..u4 (6 internal edges, degree sum 14 because
# of the two bridges into B).  Community B: a 4-clique on u5..u8.  A and B are
# joined by two edges, so l_{A∪B} = 14 and d_{A∪B} = 28.  The remaining eight
# nodes form two further 4-cliques, bringing the total edge count to 26.
_A_NODES = ("u1", "u2", "u3", "u4")
_B_NODES = ("u5", "u6", "u7", "u8")
_REST_1 = ("u9", "u10", "u11", "u12")
_REST_2 = ("u13", "u14", "u15", "u16")
_BRIDGES = (("u3", "u5"), ("u4", "u6"))


def figure1_network() -> tuple[Graph, set[str], set[str]]:
    """Return ``(graph, community_A, community_B)`` of the Figure-1 toy network."""
    graph = Graph()
    for block in (_A_NODES, _B_NODES, _REST_1, _REST_2):
        members = list(block)
        graph.add_nodes_from(members)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                graph.add_edge(members[i], members[j])
    for u, v in _BRIDGES:
        graph.add_edge(u, v)
    return graph, set(_A_NODES), set(_B_NODES)


def figure1_dataset() -> Dataset:
    """Return the Figure-1 network as a :class:`Dataset` with A and B as truth."""
    graph, community_a, community_b = figure1_network()
    return Dataset(
        name="figure1",
        graph=graph,
        communities=(
            frozenset(community_a),
            frozenset(community_b),
            frozenset(_REST_1),
            frozenset(_REST_2),
        ),
        overlapping=False,
        description="Figure 1 toy network (16 nodes, 26 edges) used in Examples 1-2",
        metadata={"query_node": "u1"},
    )


def ring_of_cliques_dataset(num_cliques: int = 30, clique_size: int = 6) -> Dataset:
    """Return the Figure-2 ring of cliques with each clique as a ground-truth community."""
    graph = ring_of_cliques(num_cliques, clique_size)
    communities = tuple(
        frozenset((i, j) for j in range(clique_size)) for i in range(num_cliques)
    )
    return Dataset(
        name="ring-of-cliques",
        graph=graph,
        communities=communities,
        overlapping=False,
        description=(
            f"Ring of {num_cliques} cliques of {clique_size} nodes (Figure 2, Example 3: "
            "the resolution-limit example)"
        ),
        metadata={"num_cliques": num_cliques, "clique_size": clique_size},
    )
