"""Dataset registry: one place to enumerate every built-in dataset loader."""

from __future__ import annotations

from collections.abc import Callable

from .base import Dataset
from .karate import load_karate
from .lfr import load_lfr
from .surrogates import (
    load_dblp_surrogate,
    load_dolphin_surrogate,
    load_livejournal_surrogate,
    load_mexican_surrogate,
    load_polblogs_surrogate,
    load_youtube_surrogate,
)
from .toy import figure1_dataset, ring_of_cliques_dataset

__all__ = ["DATASET_LOADERS", "load_dataset", "list_datasets", "table1_datasets"]

# name -> zero-argument loader returning a Dataset
DATASET_LOADERS: dict[str, Callable[[], Dataset]] = {
    "figure1": figure1_dataset,
    "ring-of-cliques": ring_of_cliques_dataset,
    "karate": load_karate,
    "dolphin": load_dolphin_surrogate,
    "mexican": load_mexican_surrogate,
    "polblogs": load_polblogs_surrogate,
    "dblp": load_dblp_surrogate,
    "youtube": load_youtube_surrogate,
    "livejournal": load_livejournal_surrogate,
    "lfr": load_lfr,
}


def load_dataset(name: str) -> Dataset:
    """Load a built-in dataset by name; raises ``KeyError`` for unknown names."""
    if name not in DATASET_LOADERS:
        raise KeyError(f"unknown dataset {name!r}; available: {', '.join(sorted(DATASET_LOADERS))}")
    return DATASET_LOADERS[name]()


def list_datasets() -> list[str]:
    """Return the names of every built-in dataset."""
    return sorted(DATASET_LOADERS)


def table1_datasets() -> list[str]:
    """Return the dataset names that make up the paper's Table 1."""
    return ["dolphin", "karate", "polblogs", "mexican", "dblp", "youtube", "livejournal"]
