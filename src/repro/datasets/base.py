"""The :class:`Dataset` container shared by every built-in dataset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..graph import Graph, Node

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """A graph together with its ground-truth communities.

    Attributes
    ----------
    name:
        Short identifier (``"karate"``, ``"dblp-surrogate"``...).
    graph:
        The network.
    communities:
        Ground-truth communities as node sets.  For overlapping datasets a
        node may appear in several communities.
    overlapping:
        Whether community membership overlaps (Table 1's "overlap" column).
    description:
        One-line description including provenance (real / surrogate).
    metadata:
        Free-form extras such as generator parameters.
    """

    name: str
    graph: Graph
    communities: tuple[frozenset[Node], ...]
    overlapping: bool = False
    description: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "communities", tuple(frozenset(community) for community in self.communities)
        )

    @property
    def num_nodes(self) -> int:
        """``|V|`` of the dataset graph."""
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        """``|E|`` of the dataset graph."""
        return self.graph.number_of_edges()

    @property
    def num_communities(self) -> int:
        """``|C|``: the number of ground-truth communities."""
        return len(self.communities)

    def membership(self) -> dict[Node, int]:
        """Return ``{node: community index}`` for non-overlapping datasets.

        Overlapping datasets raise ``ValueError`` because a single index per
        node is not well defined there; use :attr:`communities` directly.
        """
        if self.overlapping:
            raise ValueError(f"dataset {self.name!r} has overlapping communities")
        labels: dict[Node, int] = {}
        for index, community in enumerate(self.communities):
            for node in community:
                labels[node] = index
        return labels

    def communities_containing(self, node: Node) -> list[frozenset[Node]]:
        """Return every ground-truth community that contains ``node``."""
        return [community for community in self.communities if node in community]

    def ground_truth_for(self, query_nodes) -> Optional[frozenset[Node]]:
        """Return a ground-truth community containing all ``query_nodes``.

        For overlapping datasets the smallest such community is returned
        (the paper compares against each and keeps the best; the harness does
        that at evaluation time, this helper is for single-truth protocols).
        Returns ``None`` when no community contains every query node.
        """
        queries = set(query_nodes)
        matching = [community for community in self.communities if queries <= community]
        if not matching:
            return None
        return min(matching, key=len)

    def statistics(self) -> dict[str, Any]:
        """Return the Table-1 style statistics row for this dataset."""
        return {
            "name": self.name,
            "|V|": self.num_nodes,
            "|E|": self.num_edges,
            "|C|": self.num_communities,
            "overlap": self.overlapping,
        }
