"""LFR benchmark datasets matching Table 2 of the paper.

Table 2 configuration (defaults underlined in the paper):

=============  =======================  =========
parameter      values                   default
=============  =======================  =========
``|V|``        5,000                    5,000
``d_avg``      20, 30, 40, 50           30
``d_max``      200, 300, 400, 500       400
``mu``         0.2, 0.3, 0.4            0.3
``min C``      20                       20
``max C``      1,000                    1,000
=============  =======================  =========

The reproduction keeps the same sweep values but scales ``|V|`` down to
1,000 by default so that the pure-Python sweeps of Figures 8–14 finish in
minutes; pass ``num_nodes=5000`` for the paper's exact size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph import lfr_benchmark
from .base import Dataset

__all__ = ["LFRConfig", "PAPER_LFR_SWEEP", "load_lfr"]


@dataclass(frozen=True)
class LFRConfig:
    """One LFR benchmark configuration (a single cell of Table 2)."""

    num_nodes: int = 1000
    avg_degree: int = 30
    max_degree: int = 400
    mu: float = 0.3
    min_community: int = 20
    max_community: int = 1000
    seed: int = 0

    def label(self) -> str:
        """Return a short label like ``lfr(n=1000,davg=30,dmax=400,mu=0.3)``."""
        return (
            f"lfr(n={self.num_nodes},davg={self.avg_degree},"
            f"dmax={self.max_degree},mu={self.mu})"
        )


@dataclass(frozen=True)
class _Sweep:
    """The value grids of Table 2 used by the Figure 8/9 sweeps."""

    mu_values: tuple[float, ...] = (0.2, 0.3, 0.4)
    avg_degree_values: tuple[int, ...] = (20, 30, 40, 50)
    max_degree_values: tuple[int, ...] = (200, 300, 400, 500)
    defaults: LFRConfig = field(default_factory=LFRConfig)


PAPER_LFR_SWEEP = _Sweep()


def load_lfr(config: LFRConfig | None = None, **overrides) -> Dataset:
    """Generate an LFR dataset for ``config`` (or the Table-2 defaults).

    Keyword overrides are applied on top of the configuration, e.g.
    ``load_lfr(mu=0.4, seed=3)``.
    """
    if config is None:
        config = LFRConfig()
    if overrides:
        config = LFRConfig(**{**config.__dict__, **overrides})
    result = lfr_benchmark(
        n=config.num_nodes,
        avg_degree=config.avg_degree,
        max_degree=min(config.max_degree, config.num_nodes - 1),
        mu=config.mu,
        min_community=config.min_community,
        max_community=min(config.max_community, config.num_nodes),
        seed=config.seed,
    )
    return Dataset(
        name=config.label(),
        graph=result.graph,
        communities=tuple(frozenset(community) for community in result.communities),
        overlapping=False,
        description="LFR benchmark graph (Lancichinetti et al. 2008), Table 2 configuration",
        metadata={"config": config, **result.parameters},
    )
