"""Zachary's karate club network (Zachary, 1977) with its two ground-truth factions.

This is the one real-world dataset of Table 1 that is small enough to embed
verbatim: 34 members, 78 edges, and the split into Mr. Hi's faction and the
Officer's faction after the club's conflict.  The edge list below is the
standard one (identical to the widely distributed copy shipped with
networkx and igraph).
"""

from __future__ import annotations

from ..graph import Graph
from .base import Dataset

__all__ = ["karate_graph", "load_karate", "KARATE_EDGES", "KARATE_MR_HI", "KARATE_OFFICER"]

KARATE_EDGES: tuple[tuple[int, int], ...] = (
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8),
    (0, 10), (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21), (0, 31),
    (1, 2), (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21), (1, 30),
    (2, 3), (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28), (2, 32),
    (3, 7), (3, 12), (3, 13), (4, 6), (4, 10), (5, 6), (5, 10), (5, 16),
    (6, 16), (8, 30), (8, 32), (8, 33), (9, 33), (13, 33), (14, 32), (14, 33),
    (15, 32), (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33), (22, 32),
    (22, 33), (23, 25), (23, 27), (23, 29), (23, 32), (23, 33), (24, 25), (24, 27),
    (24, 31), (25, 31), (26, 29), (26, 33), (27, 33), (28, 31), (28, 33), (29, 32),
    (29, 33), (30, 32), (30, 33), (31, 32), (31, 33), (32, 33),
)

KARATE_MR_HI: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 16, 17, 19, 21)
KARATE_OFFICER: tuple[int, ...] = (
    9, 14, 15, 18, 20, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33,
)


def karate_graph() -> Graph:
    """Return the 34-node, 78-edge karate club graph."""
    return Graph(edges=KARATE_EDGES)


def load_karate() -> Dataset:
    """Return the karate club as a :class:`Dataset` with its two factions."""
    return Dataset(
        name="karate",
        graph=karate_graph(),
        communities=(frozenset(KARATE_MR_HI), frozenset(KARATE_OFFICER)),
        overlapping=False,
        description="Zachary's karate club (real data, embedded): 34 nodes, 78 edges, 2 factions",
        metadata={"source": "Zachary (1977)"},
    )
