"""Structured JSON logging on top of stdlib ``logging`` — no deps.

One logger (``repro.obs``) carries every structured event in the stack:
slow queries, replica batch failures, worker-process deaths, node
register/heartbeat failures.  Unconfigured it holds a ``NullHandler``
and events cost one ``isEnabledFor`` check (and suppress stdlib's
``lastResort`` stderr fallback); ``repro serve --log-json [PATH]``
installs a :class:`JsonFormatter` handler writing one JSON object per
line to stderr or a file.

Events always carry an ``event`` name and whatever keyword fields the
call site attaches — crucially including ``trace_id`` wherever a trace
context is in scope, so a respawned worker or a shed request can be
joined back to its trace.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Optional

__all__ = ["JsonFormatter", "configure_json_logging", "get_logger", "log_event"]

_LOGGER_NAME = "repro.obs"


class JsonFormatter(logging.Formatter):
    """One compact JSON object per record: ts, level, event, fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "event": record.getMessage(),
        }
        fields = getattr(record, "obs", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info and record.exc_info[1] is not None:
            payload.setdefault(
                "error",
                f"{type(record.exc_info[1]).__name__}: {record.exc_info[1]}",
            )
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger() -> logging.Logger:
    """The shared structured logger; silent until configured."""
    logger = logging.getLogger(_LOGGER_NAME)
    if not logger.handlers:
        # a NullHandler keeps stdlib's lastResort handler from spraying
        # unformatted warnings to stderr on an unconfigured server
        logger.addHandler(logging.NullHandler())
    return logger


def configure_json_logging(
    path: Optional[str] = None, level: int = logging.INFO
) -> logging.Handler:
    """Attach a JSONL handler (stderr when ``path`` is None or ``-``)."""
    if path is None or path == "-":
        handler: logging.Handler = logging.StreamHandler(sys.stderr)
    else:
        handler = logging.FileHandler(path, encoding="utf-8")
    handler.setFormatter(JsonFormatter())
    logger = get_logger()
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return handler


def log_event(event: str, *, level: int = logging.INFO, **fields: Any) -> None:
    """Emit one structured event if the obs logger is enabled for it."""
    logger = get_logger()
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"obs": fields})
