"""Mergeable metrics: counters, gauges and fixed-bucket histograms.

The serving tier's hot paths must never sort a sample window to answer a
percentile question (PR 9's ``Shard`` copied and sorted its execution-
latency deque on *every* shed decision).  The :class:`Histogram` here is
the replacement: a fixed exponential bucket layout in milliseconds,
O(1) ``record`` (a bisect over ~17 static bounds), nearest-rank
percentiles read off the cumulative bucket counts, and an exact tracked
``max``.  Because the bucket layout is fixed, two histograms **merge** by
adding their count arrays — which is what lets worker processes ship
per-batch deltas back over the pipe, lets the engine fold them into one
registry, and lets the cluster coordinator aggregate a true cross-node
p99 from heartbeat summaries instead of re-sorting raw samples.

Everything here is picklable (worker pipes) and JSON-safe via
``to_wire`` / ``from_wire`` (heartbeats), with no dependencies outside
the standard library.

:class:`MetricsRegistry` keys metrics by ``(name, sorted labels)`` and
renders the whole family as Prometheus text exposition format — the
payload of the serving tier's ``metrics`` wire op.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Iterable, Optional

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default bucket upper bounds in milliseconds: exponential from 50µs to
#: 10s (~2-2.5x resolution), plus an implicit overflow bucket.  Chosen to
#: straddle the serving tier's realistic range — cache hits land in the
#: sub-millisecond buckets, cold truss decompositions in the seconds.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
    50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time value (queue depth, live nodes, ...)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """Fixed-bucket latency histogram: O(1) record, mergeable, picklable.

    ``record`` takes a value in the unit the bounds are declared in
    (milliseconds by default) and lands it in the first bucket whose
    upper bound contains it; values past the last bound go to the
    overflow bucket.  ``percentile`` is nearest-rank over the cumulative
    bucket counts and answers with the containing bucket's **upper
    bound** (the overflow bucket answers with the exact tracked max), so
    a histogram percentile is always >= the exact sample percentile and
    within one bucket of it — the "within bucket resolution" contract
    the retry-after tests pin down.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "max")

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must increase strictly, got {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the overflow bucket
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def record(self, value: float) -> None:
        """Record one observation (O(log buckets) ~= O(1); no sorting)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile, answered at bucket resolution.

        Returns 0.0 for an empty histogram (mirroring
        :func:`repro.serving.shard.latency_percentile` on an empty
        sample); the overflow bucket answers with the exact max.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * fraction))
        cumulative = 0
        for bucket, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if bucket < len(self.bounds):
                    return self.bounds[bucket]
                return self.max
        return self.max  # unreachable: cumulative ends at self.count

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (bounds must match)."""
        if tuple(other.bounds) != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bucket bounds: "
                f"{self.bounds} vs {tuple(other.bounds)}"
            )
        for bucket, bucket_count in enumerate(other.counts):
            self.counts[bucket] += bucket_count
        self.count += other.count
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max
        return self

    def copy(self) -> "Histogram":
        clone = Histogram(self.bounds)
        clone.counts = list(self.counts)
        clone.count = self.count
        clone.sum = self.sum
        clone.max = self.max
        return clone

    # -- wire form (JSON-safe, rides on cluster heartbeats) ----------------
    def to_wire(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
        }

    @classmethod
    def from_wire(cls, wire: Any) -> "Histogram":
        if not isinstance(wire, dict):
            raise ValueError(f"histogram wire form must be an object, got {wire!r}")
        histogram = cls(wire["bounds"])
        counts = wire["counts"]
        if len(counts) != len(histogram.counts):
            raise ValueError(
                f"histogram wire form carries {len(counts)} buckets, "
                f"expected {len(histogram.counts)}"
            )
        histogram.counts = [int(c) for c in counts]
        histogram.count = int(wire["count"])
        histogram.sum = float(wire["sum"])
        histogram.max = float(wire["max"])
        return histogram

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, max={self.max})"


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class MetricsRegistry:
    """Counters/gauges/histograms keyed by ``(name, sorted labels)``.

    The registry is the *mergeable* unit: worker processes keep a tiny
    local registry per batch and ship its wire form back with the batch
    reply; the parent folds it in with :meth:`merge_wire`.  Merging is
    associative and commutative (counters/histograms add, gauges take
    the incoming value), which is what makes the fold order-independent
    across replicas and nodes.  A lock guards the structural operations
    (get-or-create, merge); individual ``inc``/``record`` calls are
    plain attribute arithmetic on the metric objects.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- get-or-create ------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(key, Counter())
        return counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(key, Gauge())
        return gauge

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None, **labels: Any
    ) -> Histogram:
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    key, Histogram(bounds if bounds is not None else DEFAULT_LATENCY_BUCKETS_MS)
                )
        return histogram

    # -- merging ------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in (counters/histograms add, gauges set)."""
        with self._lock:
            for (name, labels), counter in other._counters.items():
                mine = self._counters.setdefault((name, labels), Counter())
                mine.value += counter.value
            for (name, labels), gauge in other._gauges.items():
                self._gauges.setdefault((name, labels), Gauge()).value = gauge.value
            for (name, labels), histogram in other._histograms.items():
                mine_hist = self._histograms.get((name, labels))
                if mine_hist is None:
                    self._histograms[(name, labels)] = histogram.copy()
                else:
                    mine_hist.merge(histogram)
        return self

    def to_wire(self) -> dict[str, Any]:
        """A JSON-safe, picklable snapshot suitable for ``merge_wire``."""
        return {
            "counters": [
                [name, [list(pair) for pair in labels], counter.value]
                for (name, labels), counter in self._counters.items()
            ],
            "gauges": [
                [name, [list(pair) for pair in labels], gauge.value]
                for (name, labels), gauge in self._gauges.items()
            ],
            "histograms": [
                [name, [list(pair) for pair in labels], histogram.to_wire()]
                for (name, labels), histogram in self._histograms.items()
            ],
        }

    def merge_wire(self, wire: Any) -> "MetricsRegistry":
        """Fold a ``to_wire`` snapshot in (the worker-delta path)."""
        if not isinstance(wire, dict):
            return self
        with self._lock:
            for name, labels, value in wire.get("counters", ()):
                key = (name, tuple(tuple(pair) for pair in labels))
                self._counters.setdefault(key, Counter()).value += value
            for name, labels, value in wire.get("gauges", ()):
                key = (name, tuple(tuple(pair) for pair in labels))
                self._gauges.setdefault(key, Gauge()).value = value
            for name, labels, hist_wire in wire.get("histograms", ()):
                key = (name, tuple(tuple(pair) for pair in labels))
                incoming = Histogram.from_wire(hist_wire)
                mine = self._histograms.get(key)
                if mine is None:
                    self._histograms[key] = incoming
                else:
                    mine.merge(incoming)
        return self

    # -- exposition -----------------------------------------------------------
    def exposition(self) -> str:
        """Render every metric as Prometheus text exposition format."""
        lines: list[str] = []

        def label_text(labels: tuple, extra: str = "") -> str:
            parts = [f'{k}="{_escape_label(v)}"' for k, v in labels]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        seen_types: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for (name, labels), counter in sorted(self._counters.items()):
            type_line(name, "counter")
            lines.append(f"{name}{label_text(labels)} {_format_value(counter.value)}")
        for (name, labels), gauge in sorted(self._gauges.items()):
            type_line(name, "gauge")
            lines.append(f"{name}{label_text(labels)} {_format_value(gauge.value)}")
        for (name, labels), histogram in sorted(self._histograms.items()):
            type_line(name, "histogram")
            cumulative = 0
            for bound, bucket_count in zip(histogram.bounds, histogram.counts):
                cumulative += bucket_count
                le = 'le="' + _format_value(bound) + '"'
                lines.append(f"{name}_bucket{label_text(labels, le)} {cumulative}")
            inf = 'le="+Inf"'
            lines.append(f"{name}_bucket{label_text(labels, inf)} {histogram.count}")
            lines.append(f"{name}_sum{label_text(labels)} {_format_value(histogram.sum)}")
            lines.append(f"{name}_count{label_text(labels)} {histogram.count}")
        return "\n".join(lines) + "\n" if lines else ""
