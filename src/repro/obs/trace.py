"""Request tracing: sampled trace contexts and a bounded span ring.

A :class:`TraceContext` is deliberately just a named tuple of two hex
ids ``(trace_id, span_id)``: it pickles across the worker-process pipe,
serialises to JSON on the wire, hashes (so a traced
:class:`~repro.serving.protocol.QueryRequest` stays hashable), and
costs nothing to carry.  Sampling happens exactly once, at the server's
front door: :meth:`Tracer.sample_request` returns ``None`` for
unsampled requests — and for a tracer with ``sample <= 0`` (the
default) that answer is a single float compare, so tracing that is off
allocates nothing on the hot path.

Spans are plain dicts ``{trace, span, parent, name, start, end, ms,
tags}`` with wall-clock endpoints (``time.time()``), which keeps spans
produced inside a worker *process* comparable with the parent's.  They
land in a bounded ``deque`` ring guarded by a lock (spans arrive from
the event loop, executor threads, and folded-in worker batches
concurrently); the ``trace`` wire op reads the ring back out.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from typing import Any, NamedTuple, Optional

__all__ = ["TraceContext", "Tracer", "make_span", "new_id"]


def new_id() -> str:
    """A 64-bit random id as 16 lowercase hex chars."""
    return f"{random.getrandbits(64):016x}"


class TraceContext(NamedTuple):
    """The propagated unit: which trace, and which span is the parent."""

    trace_id: str
    span_id: str

    def child(self) -> "TraceContext":
        """A context whose spans will hang off a fresh span id."""
        return TraceContext(self.trace_id, new_id())

    @classmethod
    def from_wire(cls, wire: Any) -> Optional["TraceContext"]:
        if (
            isinstance(wire, (list, tuple))
            and len(wire) == 2
            and all(isinstance(part, str) for part in wire)
        ):
            return cls(wire[0], wire[1])
        return None


def make_span(
    context: TraceContext,
    name: str,
    start: float,
    end: float,
    *,
    parent: Optional[str] = None,
    tags: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Build a span dict *without* recording it anywhere.

    This is what runs inside pool/process workers, which have no tracer:
    they build the span locally and ship it back with the batch reply
    for the parent to fold in via :meth:`Tracer.add`.  By default the
    span becomes a child of ``context.span_id``; pass ``parent``
    explicitly (possibly ``None``) to control the tree shape.
    """
    span = {
        "trace": context.trace_id,
        "span": new_id(),
        "parent": context.span_id if parent is None else parent,
        "name": name,
        "start": start,
        "end": end,
        "ms": round((end - start) * 1000.0, 3),
    }
    if tags:
        span["tags"] = tags
    return span


class Tracer:
    """Sampling decision + bounded in-memory span ring.

    ``sample`` is the probability a request gets a trace; ``capacity``
    bounds the ring (oldest spans fall off).  All mutation goes through
    one lock — span volume is limited by the sample rate, so contention
    is not a concern, but correctness across the event loop and the
    executor threads is.
    """

    def __init__(
        self,
        sample: float = 0.0,
        capacity: int = 4096,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"trace sample must be within [0, 1], got {sample}")
        if capacity < 1:
            raise ValueError(f"trace ring capacity must be positive, got {capacity}")
        self.sample = sample
        self.capacity = capacity
        self._rng = rng if rng is not None else random
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.sample > 0.0

    def sample_request(self) -> Optional[TraceContext]:
        """The per-request sampling decision.

        The disabled path is a single comparison — no allocation, no
        randomness — so a server running with tracing off (the default)
        pays effectively nothing per request.
        """
        sample = self.sample
        if sample <= 0.0:
            return None
        if sample < 1.0 and self._rng.random() >= sample:
            return None
        return TraceContext(new_id(), new_id())

    # -- recording ---------------------------------------------------------
    def emit(
        self,
        context: TraceContext,
        name: str,
        start: float,
        end: float,
        **tags: Any,
    ) -> dict[str, Any]:
        """Record a span as a child of ``context``'s span."""
        span = make_span(context, name, start, end, tags=tags or None)
        with self._lock:
            self._ring.append(span)
        return span

    def emit_root(
        self,
        context: TraceContext,
        name: str,
        start: float,
        end: float,
        **tags: Any,
    ) -> dict[str, Any]:
        """Record the trace's root span, reusing ``context.span_id``."""
        span = {
            "trace": context.trace_id,
            "span": context.span_id,
            "parent": None,
            "name": name,
            "start": start,
            "end": end,
            "ms": round((end - start) * 1000.0, 3),
        }
        if tags:
            span["tags"] = tags
        with self._lock:
            self._ring.append(span)
        return span

    def add(self, span: dict[str, Any]) -> None:
        """Fold in a span produced elsewhere (a pool or process worker)."""
        with self._lock:
            self._ring.append(span)

    def add_many(self, spans: Any) -> None:
        if not spans:
            return
        with self._lock:
            for span in spans:
                if isinstance(span, dict):
                    self._ring.append(span)

    # -- reading -----------------------------------------------------------
    def spans(self, trace_id: str) -> list[dict[str, Any]]:
        """Every retained span of one trace, ordered by start time."""
        with self._lock:
            matched = [dict(span) for span in self._ring if span.get("trace") == trace_id]
        matched.sort(key=lambda span: (span.get("start", 0.0), span.get("name", "")))
        return matched

    def recent(self, limit: int = 32) -> list[dict[str, Any]]:
        """Newest distinct traces in the ring, newest first."""
        with self._lock:
            snapshot = list(self._ring)
        traces: dict[str, dict[str, Any]] = {}
        for span in reversed(snapshot):
            trace_id = span.get("trace")
            if trace_id is None:
                continue
            entry = traces.get(trace_id)
            if entry is None:
                if len(traces) >= limit:
                    continue
                entry = traces[trace_id] = {
                    "trace_id": trace_id,
                    "spans": 0,
                    "start": span.get("start", 0.0),
                }
            entry["spans"] += 1
            start = span.get("start", 0.0)
            if start <= entry["start"]:
                entry["start"] = start
            if span.get("parent") is None:
                entry["name"] = span.get("name")
                entry["ms"] = span.get("ms")
        return sorted(traces.values(), key=lambda entry: entry["start"], reverse=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
