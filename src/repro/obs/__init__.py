"""repro.obs — the serving stack's telemetry subsystem (PR 10).

Three planes, stdlib only:

- :mod:`repro.obs.trace` — sampled request tracing into a bounded span
  ring, exposed by the ``trace`` wire op.
- :mod:`repro.obs.metrics` — O(1) counters/gauges/fixed-bucket
  histograms that pickle across worker pipes, merge associatively, and
  render as Prometheus text exposition (the ``metrics`` wire op).
- :mod:`repro.obs.log` — structured JSON slow-query/error logging over
  stdlib ``logging``.

:class:`Telemetry` bundles one engine's tracer + registry + slow-query
threshold and is threaded down through placement, shards, replicas and
executors; every component also accepts ``telemetry=None`` so direct
construction in tests keeps working (and costs nothing).
"""

from __future__ import annotations

from typing import Optional

from .log import JsonFormatter, configure_json_logging, get_logger, log_event
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import TraceContext, Tracer, make_span, new_id

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "configure_json_logging",
    "get_logger",
    "log_event",
    "make_span",
    "new_id",
]


class Telemetry:
    """One serving engine's observability bundle.

    ``tracer`` makes the per-request sampling decision and holds the
    span ring; ``registry`` is the engine-side fold target for worker
    metric deltas; ``slow_query_ms`` (None = off) is the threshold past
    which a served query is logged as a ``slow_query`` event.
    """

    __slots__ = ("tracer", "registry", "slow_query_ms")

    def __init__(
        self,
        *,
        trace_sample: float = 0.0,
        trace_capacity: int = 4096,
        slow_query_ms: Optional[float] = None,
    ) -> None:
        self.tracer = Tracer(sample=trace_sample, capacity=trace_capacity)
        self.registry = MetricsRegistry()
        self.slow_query_ms = slow_query_ms
