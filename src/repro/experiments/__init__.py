"""Experiment harness reproducing the paper's evaluation (Section 6)."""

from .queries import QuerySet, generate_query_sets
from .registry import (
    ALGORITHMS,
    PAPER_BASELINES,
    PROPOSED_ALGORITHMS,
    get_algorithm,
    list_algorithms,
    run_algorithm,
)
from .reporting import format_histogram, format_series, format_table, print_series, print_table
from .runner import (
    AggregateResult,
    EvaluationRecord,
    aggregate,
    evaluate_algorithm,
    evaluate_algorithms,
    score_result,
)
from .sweeps import (
    case_study,
    community_diameter_histogram,
    dataset_comparison,
    lfr_parameter_sweep,
    multi_query_sweep,
    objective_community_sizes,
    objective_comparison,
    pruning_comparison,
    removal_order_comparison,
    scalability_sweep,
    variant_comparison,
    varying_k_sweep,
)

__all__ = [
    "QuerySet",
    "generate_query_sets",
    "ALGORITHMS",
    "PAPER_BASELINES",
    "PROPOSED_ALGORITHMS",
    "get_algorithm",
    "list_algorithms",
    "run_algorithm",
    "EvaluationRecord",
    "AggregateResult",
    "evaluate_algorithm",
    "evaluate_algorithms",
    "aggregate",
    "score_result",
    "format_table",
    "format_series",
    "format_histogram",
    "print_table",
    "print_series",
    "community_diameter_histogram",
    "removal_order_comparison",
    "lfr_parameter_sweep",
    "multi_query_sweep",
    "scalability_sweep",
    "objective_comparison",
    "objective_community_sizes",
    "pruning_comparison",
    "variant_comparison",
    "dataset_comparison",
    "varying_k_sweep",
    "case_study",
]
