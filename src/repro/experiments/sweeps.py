"""Figure-level experiment sweeps.

Each function here regenerates the data behind one of the paper's figures
(Figures 4–20) at a configurable scale.  The benchmark scripts in
``benchmarks/`` call these with small default sizes so the whole suite runs
in minutes on a laptop; every knob (graph size, number of query sets,
algorithm list) can be raised towards the paper's configuration.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Optional

from ..core import SUBGRAPH_OBJECTIVES, fpa
from ..datasets import Dataset, LFRConfig, load_dblp_surrogate, load_lfr
from ..graph import Graph, Node, diameter, planted_partition
from ..metrics import betweenness_centrality, eigenvector_centrality
from .queries import generate_query_sets
from .registry import get_algorithm
from .runner import AggregateResult, aggregate, evaluate_algorithm, evaluate_batch

__all__ = [
    "community_diameter_histogram",
    "removal_order_comparison",
    "lfr_parameter_sweep",
    "multi_query_sweep",
    "scalability_sweep",
    "objective_comparison",
    "pruning_comparison",
    "variant_comparison",
    "dataset_comparison",
    "varying_k_sweep",
    "case_study",
]

# ----------------------------------------------------------------------------
# Figure 4 — frequency of ground-truth community diameters
# ----------------------------------------------------------------------------


def community_diameter_histogram(
    dataset: Dataset, max_communities: Optional[int] = None, seed: int = 0
) -> dict[int, int]:
    """Return ``{diameter: number of ground-truth communities}`` for ``dataset``.

    Disconnected communities contribute the diameter of their largest
    connected part (the same convention the substrate's ``diameter`` uses).
    """
    import random

    communities = list(dataset.communities)
    if max_communities is not None and len(communities) > max_communities:
        rng = random.Random(seed)
        communities = rng.sample(communities, max_communities)
    histogram: dict[int, int] = {}
    for community in communities:
        subgraph = dataset.graph.subgraph(community)
        value = diameter(subgraph, exact=len(community) <= 200, sample_size=8, seed=seed)
        histogram[value] = histogram.get(value, 0) + 1
    return histogram


# ----------------------------------------------------------------------------
# Figure 5 — node-removal order under Λ vs Θ
# ----------------------------------------------------------------------------


def removal_order_comparison(graph: Graph, query_node: Node) -> dict[str, dict[Node, int]]:
    """Return the removal rank of every node under the Λ and Θ objectives.

    Rank 1 is the first node removed.  Nodes never removed (the query and the
    final community core) get rank 0.  The paper plots this comparison on the
    karate network to argue the two objectives produce near-identical orders.
    """
    gain_result = fpa(graph, [query_node], selection="gain", layer_pruning=False)
    ratio_result = fpa(graph, [query_node], selection="ratio", layer_pruning=False)
    orders: dict[str, dict[Node, int]] = {"gain": {}, "ratio": {}}
    for name, result in (("gain", gain_result), ("ratio", ratio_result)):
        ranks = {node: 0 for node in graph.iter_nodes()}
        for rank, node in enumerate(result.removal_order, start=1):
            ranks[node] = rank
        orders[name] = ranks
    return orders


# ----------------------------------------------------------------------------
# Figures 8 & 9 — accuracy / runtime on LFR while varying mu, d_avg, d_max
# ----------------------------------------------------------------------------


def lfr_parameter_sweep(
    algorithms: list[str],
    parameter: str,
    values: list,
    base_config: Optional[LFRConfig] = None,
    num_queries: int = 10,
    query_size: int = 1,
    seed: int = 0,
    time_budget_seconds: Optional[float] = None,
) -> dict[str, dict[Any, AggregateResult]]:
    """Sweep one LFR parameter and evaluate every algorithm at each value.

    ``parameter`` is one of ``"mu"``, ``"avg_degree"`` or ``"max_degree"``
    (the three sweeps of Figures 8 and 9).  Returns
    ``{algorithm: {value: AggregateResult}}``.
    """
    if parameter not in ("mu", "avg_degree", "max_degree"):
        raise ValueError(f"unknown LFR sweep parameter {parameter!r}")
    base = base_config if base_config is not None else LFRConfig()
    results: dict[str, dict[Any, AggregateResult]] = {name: {} for name in algorithms}
    for value in values:
        dataset = load_lfr(base, **{parameter: value, "seed": seed})
        query_sets = generate_query_sets(
            dataset, num_sets=num_queries, query_size=query_size, seed=seed
        )
        for algorithm in algorithms:
            records = evaluate_algorithm(
                dataset, algorithm, query_sets, time_budget_seconds=time_budget_seconds
            )
            results[algorithm][value] = aggregate(records)
    return results


# ----------------------------------------------------------------------------
# Figure 10 — effect of the number of query nodes
# ----------------------------------------------------------------------------


def multi_query_sweep(
    algorithms: list[str],
    query_sizes: list[int],
    config: Optional[LFRConfig] = None,
    num_queries: int = 10,
    seed: int = 0,
    time_budget_seconds: Optional[float] = None,
    engine: str = "per-query",
    max_workers: Optional[int] = None,
) -> dict[str, dict[int, AggregateResult]]:
    """Evaluate algorithms on the default LFR graph with growing query sets.

    ``engine="batched"`` freezes the LFR graph once and evaluates every
    (algorithm, |Q|, query set) combination against the shared CSR snapshot
    (optionally over ``max_workers`` processes); ``"per-query"`` is the
    classic one-run-at-a-time reference path.  Results are identical.
    """
    if engine not in ("per-query", "batched"):
        raise ValueError(f"unknown engine {engine!r}; expected 'per-query' or 'batched'")
    dataset = load_lfr(config if config is not None else LFRConfig(seed=seed))
    frozen = dataset.graph.freeze() if engine == "batched" else None
    results: dict[str, dict[int, AggregateResult]] = {name: {} for name in algorithms}
    for query_size in query_sizes:
        query_sets = generate_query_sets(
            dataset,
            num_sets=num_queries,
            query_size=query_size,
            seed=seed + query_size,
            min_community_size=query_size,
        )
        if engine == "batched":
            per_algorithm = evaluate_batch(
                dataset,
                algorithms,
                query_sets,
                time_budget_seconds=time_budget_seconds,
                max_workers=max_workers,
                frozen=frozen,
            )
            for algorithm in algorithms:
                results[algorithm][query_size] = aggregate(per_algorithm[algorithm])
            continue
        for algorithm in algorithms:
            records = evaluate_algorithm(
                dataset, algorithm, query_sets, time_budget_seconds=time_budget_seconds
            )
            results[algorithm][query_size] = aggregate(records)
    return results


# ----------------------------------------------------------------------------
# Figure 11 — scalability on growing synthetic graphs
# ----------------------------------------------------------------------------


def scalability_sweep(
    algorithms: list[str],
    node_counts: list[int],
    community_size: int = 50,
    p_in: float = 0.3,
    p_out: float = 0.002,
    num_queries: int = 3,
    seed: int = 0,
    time_budget_seconds: Optional[float] = None,
    engine: str = "per-query",
    max_workers: Optional[int] = None,
) -> dict[str, dict[int, float]]:
    """Return mean runtime (seconds) per algorithm as the graph grows.

    Uses planted-partition graphs (the community structure does not matter
    for a runtime-only figure) and reports mean wall-clock seconds per query.
    ``engine="batched"`` builds each graph's CSR snapshot once and runs every
    algorithm's queries against it.
    """
    if engine not in ("per-query", "batched"):
        raise ValueError(f"unknown engine {engine!r}; expected 'per-query' or 'batched'")
    results: dict[str, dict[int, float]] = {name: {} for name in algorithms}
    for n in node_counts:
        num_communities = max(2, n // community_size)
        graph, membership = planted_partition(
            num_communities, community_size, p_in, p_out, seed=seed
        )
        communities: dict[int, set[int]] = {}
        for node, block in membership.items():
            communities.setdefault(block, set()).add(node)
        dataset = Dataset(
            name=f"planted-{n}",
            graph=graph,
            communities=tuple(frozenset(nodes) for nodes in communities.values()),
            overlapping=False,
            description="planted partition scalability workload",
        )
        query_sets = generate_query_sets(dataset, num_sets=num_queries, seed=seed, truss_k=2)
        if engine == "batched":
            per_algorithm = evaluate_batch(
                dataset,
                algorithms,
                query_sets,
                time_budget_seconds=time_budget_seconds,
                max_workers=max_workers,
            )
            for algorithm in algorithms:
                results[algorithm][n] = statistics.fmean(
                    record.elapsed_seconds for record in per_algorithm[algorithm]
                )
            continue
        for algorithm in algorithms:
            records = evaluate_algorithm(
                dataset, algorithm, query_sets, time_budget_seconds=time_budget_seconds
            )
            results[algorithm][n] = statistics.fmean(
                record.elapsed_seconds for record in records
            )
    return results


# ----------------------------------------------------------------------------
# Figure 12 — FPA with different best-subgraph objectives
# ----------------------------------------------------------------------------


def objective_comparison(
    objectives: Optional[list[str]] = None,
    config: Optional[LFRConfig] = None,
    num_queries: int = 10,
    seed: int = 0,
) -> dict[str, AggregateResult]:
    """Compare FPA selecting the best subgraph by different modularity scores.

    Returns ``{objective: AggregateResult}``; also records the mean returned
    community size in ``extra`` of the per-record results, which is how the
    paper quantifies the free-rider effect of the classic modularity.
    """
    chosen = objectives if objectives is not None else list(SUBGRAPH_OBJECTIVES)
    dataset = load_lfr(config if config is not None else LFRConfig(seed=seed))
    query_sets = generate_query_sets(dataset, num_sets=num_queries, seed=seed)
    results: dict[str, AggregateResult] = {}
    for objective in chosen:
        records = evaluate_algorithm(dataset, "FPA", query_sets, objective=objective)
        results[objective] = aggregate(records)
    return results


def objective_community_sizes(
    objectives: Optional[list[str]] = None,
    config: Optional[LFRConfig] = None,
    num_queries: int = 10,
    seed: int = 0,
) -> dict[str, float]:
    """Return the mean community size per objective (the 18x free-rider statistic)."""
    chosen = objectives if objectives is not None else list(SUBGRAPH_OBJECTIVES)
    dataset = load_lfr(config if config is not None else LFRConfig(seed=seed))
    query_sets = generate_query_sets(dataset, num_sets=num_queries, seed=seed)
    sizes: dict[str, float] = {}
    for objective in chosen:
        records = evaluate_algorithm(dataset, "FPA", query_sets, objective=objective)
        sizes[objective] = statistics.fmean(record.community_size for record in records)
    return sizes


# ----------------------------------------------------------------------------
# Figure 13 — layer-based pruning ablation
# ----------------------------------------------------------------------------


def pruning_comparison(
    config: Optional[LFRConfig] = None, num_queries: int = 10, seed: int = 0
) -> dict[str, AggregateResult]:
    """Compare FPA with and without the layer-based pruning strategy."""
    dataset = load_lfr(config if config is not None else LFRConfig(seed=seed))
    query_sets = generate_query_sets(dataset, num_sets=num_queries, seed=seed)
    return {
        "FPA": aggregate(evaluate_algorithm(dataset, "FPA", query_sets)),
        "FPA w/o pruning": aggregate(evaluate_algorithm(dataset, "FPA-NP", query_sets)),
    }


# ----------------------------------------------------------------------------
# Figure 14 — the four (removable nodes) x (selection) variants
# ----------------------------------------------------------------------------


def variant_comparison(
    config: Optional[LFRConfig] = None,
    num_queries: int = 5,
    seed: int = 0,
    time_budget_seconds: Optional[float] = None,
) -> dict[str, AggregateResult]:
    """Compare NCA, NCA-DR, FPA-DMG and FPA on the default LFR graph."""
    dataset = load_lfr(config if config is not None else LFRConfig(seed=seed))
    query_sets = generate_query_sets(dataset, num_sets=num_queries, seed=seed)
    variants = ["NCA", "NCA-DR", "FPA-DMG", "FPA"]
    return {
        name: aggregate(
            evaluate_algorithm(dataset, name, query_sets, time_budget_seconds=time_budget_seconds)
        )
        for name in variants
    }


# ----------------------------------------------------------------------------
# Figures 15-18 — real-world (and surrogate) dataset comparisons
# ----------------------------------------------------------------------------


def dataset_comparison(
    datasets: list[Dataset],
    algorithms: list[str],
    num_queries: int = 10,
    query_size: int = 1,
    seed: int = 0,
    time_budget_seconds: Optional[float] = None,
) -> dict[str, dict[str, AggregateResult]]:
    """Evaluate every algorithm on every dataset; returns ``{dataset: {algo: agg}}``."""
    results: dict[str, dict[str, AggregateResult]] = {}
    for dataset in datasets:
        query_sets = generate_query_sets(
            dataset, num_sets=num_queries, query_size=query_size, seed=seed
        )
        per_dataset: dict[str, AggregateResult] = {}
        for algorithm in algorithms:
            records = evaluate_algorithm(
                dataset, algorithm, query_sets, time_budget_seconds=time_budget_seconds
            )
            per_dataset[algorithm] = aggregate(records)
        results[dataset.name] = per_dataset
    return results


# ----------------------------------------------------------------------------
# Figure 19 — varying the user parameter k of the baselines
# ----------------------------------------------------------------------------


def varying_k_sweep(
    dataset: Dataset,
    k_values: list[int],
    num_queries: int = 10,
    seed: int = 0,
) -> dict[str, dict[int, AggregateResult]]:
    """Evaluate kc/kt/kecc for each ``k`` against the parameter-free FPA."""
    query_sets = generate_query_sets(dataset, num_sets=num_queries, seed=seed)
    results: dict[str, dict[int, AggregateResult]] = {"kc": {}, "kt": {}, "kecc": {}, "FPA": {}}
    fpa_aggregate = aggregate(evaluate_algorithm(dataset, "FPA", query_sets))
    for k in k_values:
        results["kc"][k] = aggregate(evaluate_algorithm(dataset, "kc", query_sets, k=k))
        results["kt"][k] = aggregate(evaluate_algorithm(dataset, "kt", query_sets, k=max(k, 2)))
        results["kecc"][k] = aggregate(evaluate_algorithm(dataset, "kecc", query_sets, k=k))
        results["FPA"][k] = fpa_aggregate
    return results


# ----------------------------------------------------------------------------
# Figure 20 / Section 6.3.2 — case study around a hub node
# ----------------------------------------------------------------------------


def case_study(
    dataset: Optional[Dataset] = None, query_node: Optional[Node] = None, seed: int = 0
) -> dict[str, dict[str, Any]]:
    """Reproduce the case-study comparison of FPA vs 3-truss vs 3-core.

    Returns, per algorithm, the community size, the fraction of members
    adjacent to the query node, and the query node's rank by betweenness and
    eigenvector centrality inside the returned community.
    """
    chosen_dataset = dataset if dataset is not None else load_dblp_surrogate(seed=seed, num_nodes=800)
    graph = chosen_dataset.graph
    if query_node is None:
        # emulate "Philip S. Yu": take the highest-degree node
        query_node = max(graph.iter_nodes(), key=graph.degree)

    algorithms = {
        "FPA": get_algorithm("FPA"),
        "3-truss": get_algorithm("kt", k=3),
        "3-core": get_algorithm("kc", k=3),
    }
    report: dict[str, dict[str, Any]] = {}
    for name, runner in algorithms.items():
        start = time.perf_counter()
        result = runner(graph, [query_node])
        elapsed = time.perf_counter() - start
        members = set(result.nodes)
        if not members:
            report[name] = {"size": 0, "failed": True}
            continue
        adjacency = set(graph.adjacency(query_node))
        connected_fraction = (
            len(adjacency & (members - {query_node})) / max(1, len(members) - 1)
        )
        subgraph = graph.subgraph(members)
        betweenness = betweenness_centrality(subgraph)
        try:
            eigen = eigenvector_centrality(subgraph, max_iterations=500)
        except Exception:  # pragma: no cover - defensive: oscillating power iteration
            eigen = {node: float(subgraph.degree(node)) for node in subgraph.iter_nodes()}
        report[name] = {
            "size": len(members),
            "query_adjacent_fraction": round(connected_fraction, 4),
            "betweenness_rank": _rank_of(betweenness, query_node),
            "eigenvector_rank": _rank_of(eigen, query_node),
            "elapsed_seconds": elapsed,
        }
    return report


def _rank_of(scores: dict[Node, float], node: Node) -> int:
    """Return the 1-based rank of ``node`` when sorting scores descending."""
    ordered = sorted(scores, key=scores.get, reverse=True)
    return ordered.index(node) + 1
