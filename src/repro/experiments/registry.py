"""Algorithm registry: the paper's algorithm names mapped to callables.

Every entry takes ``(graph, query_nodes, **overrides)`` and returns a
:class:`~repro.core.result.CommunityResult`, so the experiment runner can
treat the proposed algorithms and the baselines uniformly.  Default
parameters follow Section 6.1: ``k = 3`` for ``kc``/``kecc``, ``k = 4`` for
``kt`` and ``eta = 0.5`` for ``wu2015``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from functools import partial

from ..baselines import (
    clique_community,
    closest_truss_community,
    cnm_community,
    girvan_newman_community,
    highest_core_community,
    highest_truss_community,
    icwi2008_community,
    kcore_community,
    kecc_community,
    ktruss_community,
    louvain_community,
    wu2015_community,
)
from ..core import CommunityResult, fpa, fpa_dmg, fpa_without_pruning, nca, nca_dr
from ..graph import Graph, Node

__all__ = [
    "ALGORITHMS",
    "PAPER_BASELINES",
    "PROPOSED_ALGORITHMS",
    "get_algorithm",
    "list_algorithms",
]

AlgorithmFn = Callable[..., CommunityResult]

# The names match the legend labels of the paper's figures.
ALGORITHMS: dict[str, AlgorithmFn] = {
    "clique": clique_community,
    "kc": partial(kcore_community, k=3),
    "kt": partial(ktruss_community, k=4),
    "kecc": partial(kecc_community, k=3),
    # GN is O(|E|^2 |V|); the default 30 s budget mirrors the paper's 24-hour
    # cap (scaled to the session) after which it reports its best-so-far result
    "GN": partial(girvan_newman_community, time_budget_seconds=30.0),
    "CNM": cnm_community,
    "icwi2008": icwi2008_community,
    "huang2015": closest_truss_community,
    "wu2015": partial(wu2015_community, eta=0.5),
    "highcore": highest_core_community,
    "hightruss": highest_truss_community,
    "louvain": louvain_community,
    "NCA": nca,
    "NCA-DR": nca_dr,
    "FPA-DMG": fpa_dmg,
    "FPA": fpa,
    "FPA-NP": fpa_without_pruning,
}

# Grouping used by the figure-specific sweeps.
PROPOSED_ALGORITHMS: tuple[str, ...] = ("NCA", "FPA")
PAPER_BASELINES: tuple[str, ...] = (
    "clique",
    "kc",
    "kt",
    "kecc",
    "GN",
    "CNM",
    "icwi2008",
    "huang2015",
    "wu2015",
    "highcore",
    "hightruss",
)


def get_algorithm(name: str, **overrides) -> AlgorithmFn:
    """Return the algorithm callable for ``name`` with extra keyword overrides.

    Example: ``get_algorithm("kc", k=5)`` returns a 5-core community search.
    """
    if name not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; available: {', '.join(sorted(ALGORITHMS))}")
    base = ALGORITHMS[name]
    if not overrides:
        return base
    if isinstance(base, partial):
        return partial(base.func, *base.args, **{**base.keywords, **overrides})
    return partial(base, **overrides)


def list_algorithms() -> list[str]:
    """Return all registered algorithm names."""
    return sorted(ALGORITHMS)


def run_algorithm(
    name: str, graph: Graph, query_nodes: Sequence[Node], **overrides
) -> CommunityResult:
    """Run algorithm ``name`` on ``(graph, query_nodes)`` and return its result."""
    return get_algorithm(name, **overrides)(graph, query_nodes)
