"""Query-set generation following Section 6.1 of the paper.

The paper picks 20 query sets per network (10 for the small ones), sampling
query nodes "from the result of the (k + 1)-truss so that the query nodes
are more likely to be located in a meaningful community".  When a network
has more than 20 ground-truth communities, 20 communities are sampled and
one query set is drawn from each; otherwise the query sets are spread as
evenly as possible over the communities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..datasets import Dataset
from ..graph import Node, node_truss_numbers

__all__ = ["QuerySet", "generate_query_sets"]


@dataclass(frozen=True)
class QuerySet:
    """A query node set together with the ground-truth community it came from."""

    nodes: tuple[Node, ...]
    community: frozenset[Node]

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "community", frozenset(self.community))


def generate_query_sets(
    dataset: Dataset,
    num_sets: int = 20,
    query_size: int = 1,
    truss_k: int = 4,
    seed: int = 0,
    min_community_size: Optional[int] = None,
) -> list[QuerySet]:
    """Return query sets drawn per the paper's protocol.

    Parameters
    ----------
    dataset:
        Dataset providing the graph and ground-truth communities.
    num_sets:
        Number of query sets (the paper uses 20, or 10 for small graphs).
    query_size:
        Number of query nodes per set (1 by default; Figure 10 uses up to 12).
        All query nodes of a set are drawn from the same ground-truth
        community so the accuracy protocol stays applicable.
    truss_k:
        Query nodes are preferentially sampled from the ``(truss_k + 1)``-truss.
    seed:
        Sampling seed.
    min_community_size:
        Skip ground-truth communities smaller than this (defaults to
        ``query_size`` so a set can always be drawn).
    """
    if num_sets < 1:
        raise ValueError(f"num_sets must be positive, got {num_sets}")
    if query_size < 1:
        raise ValueError(f"query_size must be positive, got {query_size}")
    rng = random.Random(seed)
    graph = dataset.graph
    minimum = min_community_size if min_community_size is not None else query_size

    trussness = node_truss_numbers(graph)
    preferred = {node for node, value in trussness.items() if value >= truss_k + 1}

    eligible_communities = [
        community for community in dataset.communities if len(community) >= minimum
    ]
    if not eligible_communities:
        raise ValueError(
            f"dataset {dataset.name!r} has no ground-truth community of size >= {minimum}"
        )

    # choose which community each query set comes from
    if len(eligible_communities) >= num_sets:
        chosen = rng.sample(eligible_communities, num_sets)
    else:
        chosen = []
        while len(chosen) < num_sets:
            # round-robin over communities so sets are "most equally generated"
            for community in eligible_communities:
                chosen.append(community)
                if len(chosen) == num_sets:
                    break

    query_sets: list[QuerySet] = []
    for community in chosen:
        members = sorted(community, key=repr)
        favored = [node for node in members if node in preferred]
        pool = favored if len(favored) >= query_size else members
        nodes = tuple(rng.sample(pool, query_size))
        query_sets.append(QuerySet(nodes=nodes, community=frozenset(community)))
    return query_sets
