"""Experiment runner: evaluate algorithms over query sets and aggregate accuracy.

This is the engine behind every accuracy/efficiency figure: it runs one or
more registered algorithms on a dataset's query sets, scores each returned
community against the ground truth with NMI / ARI / F-score (using the
paper's binary-membership protocol), and aggregates per-algorithm medians —
the statistic the paper reports in the text (e.g. "the median NMI score of
FPA is 8.5 times higher ...").

Two execution engines are provided:

* the classic **per-query** path (:func:`evaluate_algorithm`) runs each
  query against the dataset's dict-backed graph — the reference flow;
* the **batched** path (:func:`evaluate_batch`) freezes the dataset graph
  once (building its CSR fast path a single time), then evaluates *all*
  algorithms × query sets against the shared immutable snapshot, optionally
  fanning out over ``concurrent.futures`` process workers.  Per-query
  results are identical; only the wall-clock changes.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..core import CommunityResult
from ..datasets import Dataset
from ..graph import FrozenGraph, Graph, freeze
from ..metrics import community_ari, community_fscore, community_nmi
from .queries import QuerySet
from .registry import get_algorithm

__all__ = [
    "EvaluationRecord",
    "AggregateResult",
    "evaluate_algorithm",
    "evaluate_algorithms",
    "evaluate_batch",
    "aggregate",
]


@dataclass(frozen=True)
class EvaluationRecord:
    """Accuracy and runtime of one algorithm on one query set."""

    dataset: str
    algorithm: str
    query_nodes: tuple
    community_size: int
    nmi: float
    ari: float
    fscore: float
    elapsed_seconds: float
    failed: bool = False
    extra: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class AggregateResult:
    """Median / mean accuracy of an algorithm over a batch of query sets.

    Failed records (disconnected queries, exhausted time budget) are
    **excluded** from the accuracy and runtime statistics — they are counted
    in :attr:`failure_count` instead of dragging the medians to zero.
    """

    dataset: str
    algorithm: str
    num_queries: int
    median_nmi: float
    median_ari: float
    median_fscore: float
    mean_nmi: float
    mean_ari: float
    mean_fscore: float
    mean_seconds: float
    total_seconds: float
    failure_count: int

    @property
    def failures(self) -> int:
        """Backwards-compatible alias for :attr:`failure_count`."""
        return self.failure_count

    def as_row(self) -> dict[str, Any]:
        """Return a flat dict suitable for table printing."""
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "queries": self.num_queries,
            "NMI": round(self.median_nmi, 4),
            "ARI": round(self.median_ari, 4),
            "Fscore": round(self.median_fscore, 4),
            "time(s)": round(self.mean_seconds, 4),
            "failures": self.failure_count,
        }


def score_result(
    dataset: Dataset, query_set: QuerySet, result: CommunityResult
) -> tuple[float, float, float]:
    """Return (NMI, ARI, Fscore) of ``result`` against the ground truth.

    For overlapping datasets the result is compared against *every*
    ground-truth community containing the query nodes and the best accuracy
    is reported (Section 6.3, "we compare our result with each of all the
    ground-truth communities which contain the query node, and then report
    the best accuracy").
    """
    universe = dataset.graph.nodes()
    predicted = set(result.nodes)
    if not predicted:
        return 0.0, 0.0, 0.0

    if dataset.overlapping:
        truths = [
            community
            for community in dataset.communities
            if set(query_set.nodes) <= set(community)
        ]
        if not truths:
            truths = [query_set.community]
    else:
        truths = [query_set.community]

    best = (0.0, 0.0, 0.0)
    best_key = -1.0
    for truth in truths:
        nmi = community_nmi(universe, predicted, truth)
        ari = community_ari(universe, predicted, truth)
        f1 = community_fscore(universe, predicted, truth)
        if nmi > best_key:
            best_key = nmi
            best = (nmi, ari, f1)
    return best


def _failed_record(
    dataset: Dataset, algorithm: str, query_set: QuerySet, reason: str
) -> EvaluationRecord:
    """Return a zero-accuracy record flagged as failed."""
    return EvaluationRecord(
        dataset=dataset.name,
        algorithm=algorithm,
        query_nodes=tuple(query_set.nodes),
        community_size=0,
        nmi=0.0,
        ari=0.0,
        fscore=0.0,
        elapsed_seconds=0.0,
        failed=True,
        extra={"reason": reason},
    )


def _run_and_score(
    dataset: Dataset, graph: Graph, runner, algorithm: str, query_set: QuerySet
) -> EvaluationRecord:
    """Run one (algorithm, query set) pair on ``graph`` and score it."""
    result = runner(graph, list(query_set.nodes))
    failed = bool(result.extra.get("failed")) or not result.nodes
    nmi, ari, f1 = (0.0, 0.0, 0.0) if failed else score_result(dataset, query_set, result)
    return EvaluationRecord(
        dataset=dataset.name,
        algorithm=algorithm,
        query_nodes=tuple(query_set.nodes),
        community_size=result.size,
        nmi=nmi,
        ari=ari,
        fscore=f1,
        elapsed_seconds=result.elapsed_seconds,
        failed=failed,
        extra=dict(result.extra),
    )


def evaluate_algorithm(
    dataset: Dataset,
    algorithm: str,
    query_sets: list[QuerySet],
    time_budget_seconds: Optional[float] = None,
    graph: Optional[Graph] = None,
    **overrides,
) -> list[EvaluationRecord]:
    """Run ``algorithm`` on every query set of ``dataset`` and score it.

    ``time_budget_seconds`` bounds the *total* time spent on this algorithm,
    mirroring the paper's 24-hour cap: once exceeded, remaining query sets
    are recorded as failures with zero accuracy.  ``graph`` overrides the
    graph the algorithm runs on (the batched engine passes the shared frozen
    snapshot here); scoring always uses the dataset's ground truth.
    """
    records: list[EvaluationRecord] = []
    runner = get_algorithm(algorithm, **overrides)
    host = graph if graph is not None else dataset.graph
    start = time.perf_counter()
    for query_set in query_sets:
        if time_budget_seconds is not None and time.perf_counter() - start > time_budget_seconds:
            records.append(
                _failed_record(dataset, algorithm, query_set, "time budget exhausted")
            )
            continue
        records.append(_run_and_score(dataset, host, runner, algorithm, query_set))
    return records


def evaluate_algorithms(
    dataset: Dataset,
    algorithms: list[str],
    query_sets: list[QuerySet],
    time_budget_seconds: Optional[float] = None,
) -> dict[str, list[EvaluationRecord]]:
    """Run several algorithms over the same query sets; return records per algorithm."""
    return {
        algorithm: evaluate_algorithm(
            dataset, algorithm, query_sets, time_budget_seconds=time_budget_seconds
        )
        for algorithm in algorithms
    }


# ----------------------------------------------------------------------------
# batched multi-query engine
# ----------------------------------------------------------------------------

# Per-process state for the worker pool: set once by the initializer so the
# (potentially large) frozen graph is pickled once per worker, not per task.
_WORKER_DATASET: Optional[Dataset] = None


def _batch_worker_init(dataset: Dataset) -> None:
    _globals = globals()
    _globals["_WORKER_DATASET"] = dataset


def _batch_worker_run(algorithm: str, query_set: QuerySet) -> EvaluationRecord:
    dataset = _WORKER_DATASET
    runner = get_algorithm(algorithm)
    return _run_and_score(dataset, dataset.graph, runner, algorithm, query_set)


def evaluate_batch(
    dataset: Dataset,
    algorithms: list[str],
    query_sets: list[QuerySet],
    time_budget_seconds: Optional[float] = None,
    max_workers: Optional[int] = None,
    frozen: Optional[FrozenGraph] = None,
) -> dict[str, list[EvaluationRecord]]:
    """Evaluate ``algorithms`` × ``query_sets`` against one shared CSR snapshot.

    The dataset graph is frozen **once** (dict→CSR conversion and adjacency
    caches are built a single time) and every query of every algorithm runs
    against the shared immutable snapshot — the batched counterpart of
    calling :func:`evaluate_algorithm` per algorithm.  Results are identical
    to the per-query path; only the wall-clock changes.

    Parameters
    ----------
    dataset:
        Dataset providing graph + ground truth.
    algorithms:
        Registered algorithm names to evaluate.
    query_sets:
        The shared query workload.
    time_budget_seconds:
        Optional per-algorithm total budget (as in :func:`evaluate_algorithm`).
        Enforced at harvest time when workers are used.
    max_workers:
        ``None`` runs in-process (usually fastest for small graphs — Python
        workers pay a fork + pickle cost); an integer fans the (algorithm,
        query set) pairs out to that many ``concurrent.futures`` processes.
    frozen:
        Reuse an existing frozen snapshot (e.g. across sweep points that
        share one dataset) instead of freezing ``dataset.graph`` again.
    """
    if frozen is None:
        frozen = freeze(dataset.graph)
    # Prebuild the CSR arrays + adjacency caches once, outside any timing.
    frozen.csr.adjacency_lists()

    if max_workers is None:
        return {
            algorithm: evaluate_algorithm(
                algorithm=algorithm,
                dataset=dataset,
                query_sets=query_sets,
                time_budget_seconds=time_budget_seconds,
                graph=frozen,
            )
            for algorithm in algorithms
        }

    import concurrent.futures

    shared_dataset = replace(dataset, graph=frozen)
    results: dict[str, list[EvaluationRecord]] = {}
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_batch_worker_init,
        initargs=(shared_dataset,),
    ) as pool:
        futures = {
            algorithm: [
                pool.submit(_batch_worker_run, algorithm, query_set)
                for query_set in query_sets
            ]
            for algorithm in algorithms
        }
        for algorithm, pending in futures.items():
            records: list[EvaluationRecord] = []
            # Charge the budget by this algorithm's own cumulative runtime —
            # pool wall-clock would bill one algorithm for another's queue time.
            spent = 0.0
            for query_set, future in zip(query_sets, pending):
                if time_budget_seconds is not None and spent > time_budget_seconds:
                    future.cancel()
                    records.append(
                        _failed_record(dataset, algorithm, query_set, "time budget exhausted")
                    )
                    continue
                record = future.result()
                spent += record.elapsed_seconds
                records.append(record)
            results[algorithm] = records
    return results


def aggregate(records: list[EvaluationRecord]) -> AggregateResult:
    """Aggregate a batch of records (median accuracy, mean runtime).

    Failed records are excluded from the accuracy/runtime statistics and
    reported via ``failure_count`` — a timed-out baseline should surface as
    failures, not as a median dragged down by synthetic zeros.  When every
    record failed, the statistics are all zero.
    """
    if not records:
        raise ValueError("cannot aggregate an empty record list")
    dataset = records[0].dataset
    algorithm = records[0].algorithm
    succeeded = [record for record in records if not record.failed]
    nmis = [record.nmi for record in succeeded]
    aris = [record.ari for record in succeeded]
    fscores = [record.fscore for record in succeeded]
    times = [record.elapsed_seconds for record in succeeded]
    return AggregateResult(
        dataset=dataset,
        algorithm=algorithm,
        num_queries=len(records),
        median_nmi=statistics.median(nmis) if nmis else 0.0,
        median_ari=statistics.median(aris) if aris else 0.0,
        median_fscore=statistics.median(fscores) if fscores else 0.0,
        mean_nmi=statistics.fmean(nmis) if nmis else 0.0,
        mean_ari=statistics.fmean(aris) if aris else 0.0,
        mean_fscore=statistics.fmean(fscores) if fscores else 0.0,
        mean_seconds=statistics.fmean(times) if times else 0.0,
        total_seconds=sum(times),
        failure_count=len(records) - len(succeeded),
    )
