"""Experiment runner: evaluate algorithms over query sets and aggregate accuracy.

This is the engine behind every accuracy/efficiency figure: it runs one or
more registered algorithms on a dataset's query sets, scores each returned
community against the ground truth with NMI / ARI / F-score (using the
paper's binary-membership protocol), and aggregates per-algorithm medians —
the statistic the paper reports in the text (e.g. "the median NMI score of
FPA is 8.5 times higher ...").
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core import CommunityResult
from ..datasets import Dataset
from ..metrics import community_ari, community_fscore, community_nmi
from .queries import QuerySet
from .registry import get_algorithm

__all__ = ["EvaluationRecord", "AggregateResult", "evaluate_algorithm", "evaluate_algorithms", "aggregate"]


@dataclass(frozen=True)
class EvaluationRecord:
    """Accuracy and runtime of one algorithm on one query set."""

    dataset: str
    algorithm: str
    query_nodes: tuple
    community_size: int
    nmi: float
    ari: float
    fscore: float
    elapsed_seconds: float
    failed: bool = False
    extra: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class AggregateResult:
    """Median / mean accuracy of an algorithm over a batch of query sets."""

    dataset: str
    algorithm: str
    num_queries: int
    median_nmi: float
    median_ari: float
    median_fscore: float
    mean_nmi: float
    mean_ari: float
    mean_fscore: float
    mean_seconds: float
    total_seconds: float
    failures: int

    def as_row(self) -> dict[str, Any]:
        """Return a flat dict suitable for table printing."""
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "queries": self.num_queries,
            "NMI": round(self.median_nmi, 4),
            "ARI": round(self.median_ari, 4),
            "Fscore": round(self.median_fscore, 4),
            "time(s)": round(self.mean_seconds, 4),
            "failures": self.failures,
        }


def score_result(
    dataset: Dataset, query_set: QuerySet, result: CommunityResult
) -> tuple[float, float, float]:
    """Return (NMI, ARI, Fscore) of ``result`` against the ground truth.

    For overlapping datasets the result is compared against *every*
    ground-truth community containing the query nodes and the best accuracy
    is reported (Section 6.3, "we compare our result with each of all the
    ground-truth communities which contain the query node, and then report
    the best accuracy").
    """
    universe = dataset.graph.nodes()
    predicted = set(result.nodes)
    if not predicted:
        return 0.0, 0.0, 0.0

    if dataset.overlapping:
        truths = [
            community
            for community in dataset.communities
            if set(query_set.nodes) <= set(community)
        ]
        if not truths:
            truths = [query_set.community]
    else:
        truths = [query_set.community]

    best = (0.0, 0.0, 0.0)
    best_key = -1.0
    for truth in truths:
        nmi = community_nmi(universe, predicted, truth)
        ari = community_ari(universe, predicted, truth)
        f1 = community_fscore(universe, predicted, truth)
        if nmi > best_key:
            best_key = nmi
            best = (nmi, ari, f1)
    return best


def evaluate_algorithm(
    dataset: Dataset,
    algorithm: str,
    query_sets: list[QuerySet],
    time_budget_seconds: Optional[float] = None,
    **overrides,
) -> list[EvaluationRecord]:
    """Run ``algorithm`` on every query set of ``dataset`` and score it.

    ``time_budget_seconds`` bounds the *total* time spent on this algorithm,
    mirroring the paper's 24-hour cap: once exceeded, remaining query sets
    are recorded as failures with zero accuracy.
    """
    records: list[EvaluationRecord] = []
    runner = get_algorithm(algorithm, **overrides)
    start = time.perf_counter()
    for query_set in query_sets:
        if time_budget_seconds is not None and time.perf_counter() - start > time_budget_seconds:
            records.append(
                EvaluationRecord(
                    dataset=dataset.name,
                    algorithm=algorithm,
                    query_nodes=tuple(query_set.nodes),
                    community_size=0,
                    nmi=0.0,
                    ari=0.0,
                    fscore=0.0,
                    elapsed_seconds=0.0,
                    failed=True,
                    extra={"reason": "time budget exhausted"},
                )
            )
            continue
        result = runner(dataset.graph, list(query_set.nodes))
        failed = bool(result.extra.get("failed")) or not result.nodes
        nmi, ari, f1 = (0.0, 0.0, 0.0) if failed else score_result(dataset, query_set, result)
        records.append(
            EvaluationRecord(
                dataset=dataset.name,
                algorithm=algorithm,
                query_nodes=tuple(query_set.nodes),
                community_size=result.size,
                nmi=nmi,
                ari=ari,
                fscore=f1,
                elapsed_seconds=result.elapsed_seconds,
                failed=failed,
                extra=dict(result.extra),
            )
        )
    return records


def evaluate_algorithms(
    dataset: Dataset,
    algorithms: list[str],
    query_sets: list[QuerySet],
    time_budget_seconds: Optional[float] = None,
) -> dict[str, list[EvaluationRecord]]:
    """Run several algorithms over the same query sets; return records per algorithm."""
    return {
        algorithm: evaluate_algorithm(
            dataset, algorithm, query_sets, time_budget_seconds=time_budget_seconds
        )
        for algorithm in algorithms
    }


def aggregate(records: list[EvaluationRecord]) -> AggregateResult:
    """Aggregate a batch of records (median accuracy, mean runtime)."""
    if not records:
        raise ValueError("cannot aggregate an empty record list")
    dataset = records[0].dataset
    algorithm = records[0].algorithm
    nmis = [record.nmi for record in records]
    aris = [record.ari for record in records]
    fscores = [record.fscore for record in records]
    times = [record.elapsed_seconds for record in records]
    return AggregateResult(
        dataset=dataset,
        algorithm=algorithm,
        num_queries=len(records),
        median_nmi=statistics.median(nmis),
        median_ari=statistics.median(aris),
        median_fscore=statistics.median(fscores),
        mean_nmi=statistics.fmean(nmis),
        mean_ari=statistics.fmean(aris),
        mean_fscore=statistics.fmean(fscores),
        mean_seconds=statistics.fmean(times),
        total_seconds=sum(times),
        failures=sum(1 for record in records if record.failed),
    )
