"""Plain-text reporting helpers: the benches print paper-style tables with these."""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

__all__ = ["format_table", "format_series", "print_table", "print_series", "format_histogram"]


def format_table(rows: Sequence[Mapping[str, Any]], title: str = "") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(_fmt(row.get(column, ""))))
    lines: list[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(_fmt(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[Any, float]], x_label: str = "x", title: str = ""
) -> str:
    """Render ``{series name: {x: y}}`` as a table with one column per x value.

    This matches the figure layout of the paper: one line per algorithm, one
    column per swept parameter value.
    """
    x_values: list[Any] = []
    for values in series.values():
        for x in values:
            if x not in x_values:
                x_values.append(x)
    rows = []
    for name, values in series.items():
        row: dict[str, Any] = {x_label: name}
        for x in x_values:
            row[str(x)] = values.get(x, "")
        rows.append(row)
    return format_table(rows, title=title)


def format_histogram(histogram: Mapping[Any, int], title: str = "", width: int = 50) -> str:
    """Render ``{bucket: count}`` as a text histogram with proportional bars."""
    lines = [title] if title else []
    if not histogram:
        lines.append("(empty)")
        return "\n".join(lines)
    peak = max(histogram.values()) or 1
    for bucket in sorted(histogram):
        count = histogram[bucket]
        bar = "#" * max(1, int(width * count / peak)) if count else ""
        lines.append(f"{bucket!s:>8} | {count:>6} {bar}")
    return "\n".join(lines)


def print_table(rows: Sequence[Mapping[str, Any]], title: str = "") -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, title=title))


def print_series(series: Mapping[str, Mapping[Any, float]], x_label: str = "x", title: str = "") -> None:
    """Print :func:`format_series` output."""
    print(format_series(series, x_label=x_label, title=title))


def _fmt(value: Any) -> str:
    """Format one cell: floats get 4 decimals, everything else ``str``."""
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
