"""Setuptools shim.

The project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e . --no-use-pep517 --no-build-isolation`` works on offline
machines that have setuptools but no ``wheel`` package (PEP 517 editable
installs require building a wheel).
"""

from setuptools import setup

setup()
