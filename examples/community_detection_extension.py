"""Future-work extension: density-modularity community *detection*.

Run with::

    python examples/community_detection_extension.py

The paper's conclusion suggests using density modularity for community
detection, since it mitigates the resolution limit of classic modularity.
This example runs the library's :func:`repro.core.dmcs_detection` extension
(repeated DMCS extraction) on the karate club and on a ring of cliques, and
compares it with Louvain (classic modularity) on both.
"""

from __future__ import annotations

from repro.baselines import louvain_partition
from repro.core import dmcs_detection, partition_density_modularity
from repro.datasets import load_karate
from repro.graph import ring_of_cliques
from repro.metrics import normalized_mutual_information
from repro.modularity import partition_modularity


def labels_of(communities, nodes):
    """Return the label vector induced by a community list."""
    mapping = {}
    for index, community in enumerate(communities):
        for node in community:
            mapping[node] = index
    return [mapping[node] for node in nodes]


def karate_study() -> None:
    karate = load_karate()
    graph = karate.graph
    nodes = graph.nodes()
    truth = labels_of([set(c) for c in karate.communities], nodes)

    detected = dmcs_detection(graph, min_community_size=3)
    louvain = louvain_partition(graph, seed=1)

    print("Karate club")
    for name, partition in (("DMCS detection", detected), ("Louvain", louvain)):
        nmi = normalized_mutual_information(truth, labels_of(partition, nodes))
        print(
            f"  {name:<15} communities={len(partition):<3} "
            f"NMI vs factions={nmi:.3f} "
            f"classic Q={partition_modularity(graph, partition):.3f} "
            f"density Q={partition_density_modularity(graph, partition):.3f}"
        )
    print()


def ring_study() -> None:
    graph = ring_of_cliques(20, 5)
    truth_communities = [{(i, j) for j in range(5)} for i in range(20)]
    nodes = graph.nodes()
    truth = labels_of(truth_communities, nodes)

    detected = dmcs_detection(graph, min_community_size=3)
    louvain = louvain_partition(graph, seed=1)

    print("Ring of 20 five-node cliques (resolution-limit stress test)")
    for name, partition in (("DMCS detection", detected), ("Louvain", louvain)):
        nmi = normalized_mutual_information(truth, labels_of(partition, nodes))
        print(
            f"  {name:<15} communities={len(partition):<3} NMI vs cliques={nmi:.3f}"
        )
    print()
    print("Density-modularity detection keeps the cliques separate, illustrating the")
    print("resolution-limit benefit the paper proves for community search.")


if __name__ == "__main__":
    karate_study()
    ring_study()
