"""Case study: searching the community of a hub author (Section 6.3.2).

Run with::

    python examples/case_study_coauthorship.py

The paper queries the DBLP co-authorship graph with Philip S. Yu and
compares the communities returned by FPA, 3-truss and 3-core.  Without the
proprietary crawl we use the scaled DBLP surrogate and its highest-degree
node as the hub author; the qualitative picture is the same: FPA returns a
small, query-centric community where the hub has the top centrality ranks,
while the truss/core baselines return much larger groups where the hub is
adjacent to only a small fraction of the members.
"""

from __future__ import annotations

from repro.datasets import load_dblp_surrogate
from repro.experiments import case_study, format_table


def main() -> None:
    dataset = load_dblp_surrogate(num_nodes=800, seed=12)
    graph = dataset.graph
    hub = max(graph.iter_nodes(), key=graph.degree)
    print(
        f"DBLP surrogate: {graph.number_of_nodes()} nodes, {graph.number_of_edges()} edges; "
        f"hub node {hub} has degree {graph.degree(hub)}\n"
    )
    report = case_study(dataset=dataset, query_node=hub)
    rows = [{"algorithm": name, **metrics} for name, metrics in report.items()]
    print(format_table(rows, title="Case study: community of the hub author"))
    print()
    print("Reading the table: 'query_adjacent_fraction' is the share of community")
    print("members directly connected to the hub, and the rank columns give the hub's")
    print("position by betweenness / eigenvector centrality inside each community.")


if __name__ == "__main__":
    main()
