"""Quickstart: density-modularity community search on the karate club.

Run with::

    python examples/quickstart.py

The script loads the embedded Zachary karate club, runs the paper's two
algorithms (FPA and NCA) plus two classic baselines for the query node 0
(the club's instructor), and prints the returned communities together with
their density modularity and accuracy against the ground-truth faction.
"""

from __future__ import annotations

from repro import fpa, nca
from repro.baselines import kcore_community, ktruss_community
from repro.datasets import load_karate
from repro.metrics import community_ari, community_nmi
from repro.modularity import classic_modularity, density_modularity


def describe(name, result, dataset, truth):
    """Print a one-paragraph summary of a community-search result."""
    graph = dataset.graph
    nodes = set(result.nodes)
    print(f"--- {name} ---")
    if not nodes:
        print("  no community found:", result.extra.get("reason", "unknown reason"))
        print()
        return
    print(f"  community ({len(nodes)} nodes): {sorted(nodes)}")
    print(f"  density modularity : {density_modularity(graph, nodes):.4f}")
    print(f"  classic modularity : {classic_modularity(graph, nodes):.4f}")
    print(f"  NMI vs ground truth: {community_nmi(graph.nodes(), nodes, truth):.4f}")
    print(f"  ARI vs ground truth: {community_ari(graph.nodes(), nodes, truth):.4f}")
    print(f"  runtime            : {result.elapsed_seconds * 1000:.1f} ms")
    print()


def main() -> None:
    dataset = load_karate()
    graph = dataset.graph
    query = 0  # the instructor, "Mr. Hi"
    truth = next(c for c in dataset.communities if query in c)

    print(f"Karate club: {graph.number_of_nodes()} nodes, {graph.number_of_edges()} edges")
    print(f"Query node: {query} (ground-truth faction has {len(truth)} members)\n")

    describe("FPA (Fast Peeling Algorithm)", fpa(graph, [query]), dataset, truth)
    describe("NCA (Non-articulation Cancellation)", nca(graph, [query]), dataset, truth)
    describe("k-core baseline (k=3)", kcore_community(graph, [query], k=3), dataset, truth)
    describe("k-truss baseline (k=4)", ktruss_community(graph, [query], k=4), dataset, truth)

    print("Note how the parameterised baselines return much larger communities that")
    print("mix both factions, while FPA/NCA stay inside the query's faction — the")
    print("free-rider / parameter-sensitivity story of the paper's introduction.")


if __name__ == "__main__":
    main()
