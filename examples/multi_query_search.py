"""Multi-query community search on an LFR benchmark graph.

Run with::

    python examples/multi_query_search.py

The script generates an LFR benchmark network with ground-truth communities
(Table 2 configuration, scaled down), samples a target community, and asks
FPA and the baselines for the community of 1, 4 and 8 query nodes drawn from
it — the Figure-10 experiment in miniature.  More query nodes give the
search more evidence, so the accuracy of FPA improves while the
parameterised baselines keep returning the same large subgraphs.
"""

from __future__ import annotations

import random

from repro import fpa, nca
from repro.baselines import kcore_community
from repro.datasets import LFRConfig, load_lfr
from repro.metrics import community_nmi


def main() -> None:
    config = LFRConfig(
        num_nodes=400, avg_degree=20, max_degree=60, mu=0.3, min_community=20, max_community=60, seed=11
    )
    dataset = load_lfr(config)
    # Freeze once: every query below runs on the shared CSR snapshot (the
    # batched fast path); results are identical to the mutable dict graph.
    graph = dataset.graph.freeze()
    print(f"LFR graph: {graph.number_of_nodes()} nodes, {graph.number_of_edges()} edges, "
          f"{dataset.num_communities} ground-truth communities\n")

    rng = random.Random(0)
    target = max(dataset.communities, key=len)
    members = sorted(target)
    print(f"Target ground-truth community has {len(members)} members\n")

    universe = graph.nodes()
    header = f"{'|Q|':>4} | {'algorithm':<10} | {'|C|':>6} | {'NMI':>6}"
    print(header)
    print("-" * len(header))
    for query_size in (1, 4, 8):
        queries = rng.sample(members, query_size)
        for name, runner in (
            ("FPA", lambda g, q: fpa(g, q)),
            ("NCA", lambda g, q: nca(g, q)),
            ("kc", lambda g, q: kcore_community(g, q, k=3)),
        ):
            result = runner(graph, queries)
            nmi = community_nmi(universe, result.nodes, target) if result.nodes else 0.0
            print(f"{query_size:>4} | {name:<10} | {result.size:>6} | {nmi:>6.3f}")
        print("-" * len(header))

    print("\nFPA's accuracy improves as the query set grows (the queries pin down the")
    print("target community), while the k-core baseline is insensitive to |Q|.")


if __name__ == "__main__":
    main()
