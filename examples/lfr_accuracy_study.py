"""A miniature Figure-8 study: accuracy on LFR graphs as the mixing grows.

Run with::

    python examples/lfr_accuracy_study.py

Sweeps the LFR mixing parameter mu over {0.2, 0.3, 0.4} and prints the
median NMI/ARI of FPA and four baselines, using the same experiment harness
the benchmark suite uses.  Expect FPA on top and the fixed-parameter
baselines near zero, with everything degrading as mu grows.
"""

from __future__ import annotations

from repro.datasets import LFRConfig
from repro.experiments import format_series, lfr_parameter_sweep


def main() -> None:
    base = LFRConfig(
        num_nodes=300, avg_degree=18, max_degree=50, mu=0.3, min_community=20, max_community=60, seed=21
    )
    algorithms = ["FPA", "NCA", "kc", "huang2015", "highcore"]
    results = lfr_parameter_sweep(
        algorithms, "mu", [0.2, 0.3, 0.4], base_config=base, num_queries=5, seed=21
    )
    for metric in ("median_nmi", "median_ari"):
        series = {
            algorithm: {mu: getattr(agg, metric) for mu, agg in per_mu.items()}
            for algorithm, per_mu in results.items()
        }
        print(format_series(series, x_label="algorithm", title=f"{metric} while varying mu"))
        print()
    print("Larger mu means more inter-community edges, so every algorithm degrades;")
    print("FPA keeps the lead because its density-modularity objective balances the")
    print("internal and external structure without any user parameter.")


if __name__ == "__main__":
    main()
