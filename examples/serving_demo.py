"""The query-serving subsystem end to end, in one script.

Run with::

    python examples/serving_demo.py

The script starts a real server (the same stack as ``repro serve``) in a
background thread, then acts as three different clients:

1. a cold client whose first query pays the truss decomposition once;
2. a repeat client answered from the per-shard LRU result cache;
3. a burst of identical concurrent requests that the shard coalesces into
   a single execution.

It finishes by printing the per-shard statistics — the same payload the
``{"op": "stats"}`` wire operation returns.
"""

from __future__ import annotations

import json
import threading

from repro.serving import ServerThread, ServingClient


def main() -> None:
    with ServerThread(datasets=["karate", "dolphin"]) as server:
        print(f"server up on 127.0.0.1:{server.port}\n")

        with ServingClient("127.0.0.1", server.port) as client:
            # 1. cold query: executes on the shard's frozen snapshot
            response = client.query("karate", "kt", [0, 1], k=4)
            print(f"kt(0, 1):   size={response['size']}  "
                  f"elapsed={response['elapsed_ms']}ms  cached={response['cached']}")

            # 2. the repeat is a result-cache hit
            response = client.query("karate", "kt", [0, 1], k=4)
            print(f"repeat:     size={response['size']}  cached={response['cached']}")

            # 3. a structured error: the server never sends tracebacks
            response = client.query("karate", "kt", [999])
            print(f"bad node:   ok={response['ok']}  code={response['error']['code']}\n")

        # 4. concurrent identical requests from separate connections
        #    coalesce onto one execution (watch `coalesced` in the stats)
        def fire() -> None:
            with ServingClient("127.0.0.1", server.port) as connection:
                connection.query("dolphin", "hightruss", [14])

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        with ServingClient("127.0.0.1", server.port) as client:
            stats = client.stats()
        print("per-shard statistics:")
        print(json.dumps(stats["shards"], indent=2))
    print("\nserver shut down cleanly")


if __name__ == "__main__":
    main()
