"""The query-serving subsystem end to end, in one script.

Run with::

    python examples/serving_demo.py

The script starts a real server (the same stack as ``repro serve``) in a
background thread, then acts as three different clients:

1. a cold client whose first query pays the truss decomposition once;
2. a repeat client answered from the per-shard LRU result cache;
3. a burst of identical concurrent requests that the shard coalesces into
   a single execution;
4. a threaded burst through the keep-alive ``ServingClientPool`` — the
   client every load generator should use (connection reuse, automatic
   retry of ``overloaded`` sheds).

It finishes by printing the per-shard statistics — the same payload the
``{"op": "stats"}`` wire operation returns, including the per-replica
breakdown.
"""

from __future__ import annotations

import json
import threading

from repro.serving import ServerThread, ServingClient, ServingClientPool


def main() -> None:
    with ServerThread(datasets=["karate", "dolphin"]) as server:
        print(f"server up on 127.0.0.1:{server.port}\n")

        with ServingClient("127.0.0.1", server.port) as client:
            # 1. cold query: executes on the shard's frozen snapshot
            response = client.query("karate", "kt", [0, 1], k=4)
            print(f"kt(0, 1):   size={response['size']}  "
                  f"elapsed={response['elapsed_ms']}ms  cached={response['cached']}")

            # 2. the repeat is a result-cache hit
            response = client.query("karate", "kt", [0, 1], k=4)
            print(f"repeat:     size={response['size']}  cached={response['cached']}")

            # 3. a structured error: the server never sends tracebacks
            response = client.query("karate", "kt", [999])
            print(f"bad node:   ok={response['ok']}  code={response['error']['code']}\n")

        # 4. concurrent identical requests from separate connections
        #    coalesce onto one execution (watch `coalesced` in the stats)
        def fire() -> None:
            with ServingClient("127.0.0.1", server.port) as connection:
                connection.query("dolphin", "hightruss", [14])

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # 5. the pooled client: keep-alive connections shared by threads,
        #    shed (`overloaded`) responses retried automatically
        with ServingClientPool("127.0.0.1", server.port, size=4) as pool:
            workers = [
                threading.Thread(target=pool.query, args=("karate", "kc", [node]))
                for node in (0, 1, 2, 3, 33)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            print(f"pool counters: {pool.counters()}\n")
            stats = pool.stats()
        print("per-shard statistics:")
        print(json.dumps(stats["shards"], indent=2))
    print("\nserver shut down cleanly")


if __name__ == "__main__":
    main()
