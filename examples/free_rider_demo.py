"""Free-rider effect and resolution limit: the paper's motivating examples.

Run with::

    python examples/free_rider_demo.py

Part 1 rebuilds the Figure-1 toy network and shows that classic modularity
prefers the merged community A ∪ B (community B "free rides") whereas
density modularity prefers the tight community A containing the query node.

Part 2 rebuilds the Figure-2 ring of 30 six-node cliques and shows the
resolution limit: classic modularity prefers merging two adjacent cliques,
density modularity prefers a single clique.
"""

from __future__ import annotations

from repro import fpa
from repro.datasets import figure1_network, ring_of_cliques_dataset
from repro.modularity import classic_modularity, density_modularity


def part1_free_rider() -> None:
    graph, community_a, community_b = figure1_network()
    merged = community_a | community_b
    print("Part 1 — Figure 1 toy network (query node u1)")
    print(f"  |V| = {graph.number_of_nodes()}, |E| = {graph.number_of_edges()}")
    print(f"  CM(A)     = {classic_modularity(graph, community_a):.6f}")
    print(f"  CM(A ∪ B) = {classic_modularity(graph, merged):.6f}   <- classic prefers the merge")
    print(f"  DM(A)     = {density_modularity(graph, community_a):.6f}   <- density prefers A")
    print(f"  DM(A ∪ B) = {density_modularity(graph, merged):.6f}")
    result = fpa(graph, ["u1"])
    print(f"  FPA returns: {sorted(result.nodes)} (exactly community A)\n")


def part2_resolution_limit() -> None:
    dataset = ring_of_cliques_dataset(30, 6)
    graph = dataset.graph
    split = set(dataset.communities[0])
    merged = split | set(dataset.communities[1])
    print("Part 2 — ring of 30 six-node cliques (Figure 2)")
    print(f"  |V| = {graph.number_of_nodes()}, |E| = {graph.number_of_edges()}")
    print(f"  CM(merged two cliques) = {classic_modularity(graph, merged):.6f}  <- classic prefers merging")
    print(f"  CM(single clique)      = {classic_modularity(graph, split):.6f}")
    print(f"  DM(merged two cliques) = {density_modularity(graph, merged):.6f}")
    print(f"  DM(single clique)      = {density_modularity(graph, split):.6f}  <- density prefers one clique")
    query = next(iter(split))
    result = fpa(graph, [query], layer_pruning=False)
    print(f"  FPA (no pruning) returns {result.size} nodes — the query's own clique\n")


if __name__ == "__main__":
    part1_free_rider()
    part2_resolution_limit()
