"""Figure 19 — sensitivity of the baselines to the user parameter k.

The paper varies k ∈ {3, 4, 5, 6} for kc, kt and kecc on DBLP and Youtube
and shows their accuracy swings with k while the parameter-free FPA stays
on top for every k.  The bench reproduces the sweep on the scaled surrogates.
"""

from __future__ import annotations

from conftest import run_once, scaled

from repro.datasets import load_dblp_surrogate, load_youtube_surrogate
from repro.experiments import format_series, varying_k_sweep

K_VALUES = [3, 4, 5, 6]
NUM_QUERIES = 5


def _run():
    datasets = {
        "dblp": load_dblp_surrogate(num_nodes=scaled(1000, minimum=400)),
        "youtube": load_youtube_surrogate(num_nodes=scaled(1200, minimum=500)),
    }
    return {
        name: varying_k_sweep(dataset, K_VALUES, num_queries=NUM_QUERIES, seed=10)
        for name, dataset in datasets.items()
    }


def test_fig19_varying_k(benchmark):
    results = run_once(benchmark, _run)
    print()
    for dataset_name, sweep in results.items():
        series = {
            algorithm: {k: agg.median_nmi for k, agg in per_k.items()}
            for algorithm, per_k in sweep.items()
        }
        print(
            format_series(
                series, x_label="algorithm", title=f"Figure 19: median NMI vs k — {dataset_name}"
            )
        )
        print()
        # headline shape: FPA (parameter-free) is at least as good as kc and
        # kecc at every k
        for k in K_VALUES:
            assert sweep["FPA"][k].median_nmi >= sweep["kc"][k].median_nmi
            assert sweep["FPA"][k].median_nmi >= sweep["kecc"][k].median_nmi
