"""Figures 17 & 18 — accuracy and running time on large graphs with overlapping communities.

The paper evaluates kc, kt, kecc, highcore, hightruss and FPA on DBLP,
Youtube and LiveJournal (317K–4M nodes, overlapping ground truth).  The
bench uses the scaled surrogates of DESIGN.md §3; the expected shape is the
same: FPA has the best NMI/ARI because the baselines return either huge or
tiny communities, kc is the fastest, and FPA remains within a reasonable
factor of it.
"""

from __future__ import annotations

from conftest import run_once, scaled

from repro.datasets import (
    load_dblp_surrogate,
    load_livejournal_surrogate,
    load_youtube_surrogate,
)
from repro.experiments import dataset_comparison, format_table

ALGORITHMS = ["kc", "kt", "kecc", "highcore", "hightruss", "FPA"]
NUM_QUERIES = 5
TIME_BUDGET = 180.0


def _datasets():
    return [
        load_dblp_surrogate(num_nodes=scaled(1200, minimum=400)),
        load_youtube_surrogate(num_nodes=scaled(1500, minimum=500)),
        load_livejournal_surrogate(num_nodes=scaled(1800, minimum=600)),
    ]


def _run():
    return dataset_comparison(
        _datasets(), ALGORITHMS, num_queries=NUM_QUERIES, seed=9, time_budget_seconds=TIME_BUDGET
    )


def test_fig17_18_large_overlapping_graphs(benchmark):
    results = run_once(benchmark, _run)
    print()
    for dataset_name, per_algorithm in results.items():
        rows = [
            {
                "algorithm": name,
                "NMI": agg.median_nmi,
                "ARI": agg.median_ari,
                "seconds/query": agg.mean_seconds,
                "failures": agg.failures,
            }
            for name, agg in per_algorithm.items()
        ]
        print(format_table(rows, title=f"Figures 17/18: {dataset_name} (surrogate)"))
        print()
    # headline shape: FPA beats the fixed-k baselines on every dataset's NMI
    for dataset_name, per_algorithm in results.items():
        assert per_algorithm["FPA"].median_nmi >= per_algorithm["kc"].median_nmi, dataset_name
        assert per_algorithm["FPA"].median_nmi >= per_algorithm["kecc"].median_nmi, dataset_name
