"""Micro-benchmarks of the core algorithms and substrate primitives.

Unlike the figure-level benches (which run once and print paper-style
tables), these use pytest-benchmark's statistical timing over multiple
rounds, so regressions in the hot paths (FPA peeling, articulation points,
truss decomposition, modularity evaluation) show up directly in the
``--benchmark-only`` report.
"""

from __future__ import annotations

import pytest

from repro.core import fpa, nca
from repro.graph import articulation_points, core_numbers, truss_numbers
from repro.modularity import density_modularity


@pytest.fixture(scope="module")
def lfr_graph(lfr_default):
    return lfr_default.graph


@pytest.fixture(scope="module")
def lfr_query(lfr_default):
    # a node inside the first ground-truth community
    return next(iter(lfr_default.communities[0]))


def test_micro_fpa_on_karate(benchmark, karate):
    result = benchmark(lambda: fpa(karate.graph, [0]))
    assert 0 in result.nodes


def test_micro_nca_on_karate(benchmark, karate):
    result = benchmark(lambda: nca(karate.graph, [0]))
    assert 0 in result.nodes


def test_micro_fpa_on_lfr(benchmark, lfr_graph, lfr_query):
    result = benchmark.pedantic(
        lambda: fpa(lfr_graph, [lfr_query]), rounds=3, iterations=1
    )
    assert lfr_query in result.nodes


def test_micro_fpa_without_pruning_on_lfr(benchmark, lfr_graph, lfr_query):
    result = benchmark.pedantic(
        lambda: fpa(lfr_graph, [lfr_query], layer_pruning=False), rounds=3, iterations=1
    )
    assert lfr_query in result.nodes


def test_micro_articulation_points_on_lfr(benchmark, lfr_graph):
    points = benchmark(lambda: articulation_points(lfr_graph))
    assert isinstance(points, set)


def test_micro_core_decomposition_on_lfr(benchmark, lfr_graph):
    cores = benchmark(lambda: core_numbers(lfr_graph))
    assert len(cores) == lfr_graph.number_of_nodes()


def test_micro_truss_decomposition_on_lfr(benchmark, lfr_graph):
    truss = benchmark.pedantic(lambda: truss_numbers(lfr_graph), rounds=3, iterations=1)
    assert len(truss) == lfr_graph.number_of_edges()


def test_micro_density_modularity_on_lfr(benchmark, lfr_default):
    community = set(lfr_default.communities[0])
    value = benchmark(lambda: density_modularity(lfr_default.graph, community))
    assert value == value  # not NaN
