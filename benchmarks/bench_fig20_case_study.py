"""Figure 20 / Section 6.3.2 — case study around a hub author.

The paper queries the DBLP co-authorship network with Philip S. Yu and
compares the communities returned by FPA, 3-truss and 3-core: FPA returns a
small community in which every member is adjacent to the query author and
the query has the top centrality ranks, while 3-truss (157 authors) and
3-core (1,040 authors) return much larger communities where the query is
adjacent to only 17% / 1% of members and loses the top centrality ranks.

The bench reproduces the comparison on the DBLP surrogate with its
highest-degree node standing in for the hub author.
"""

from __future__ import annotations

from conftest import run_once, scaled

from repro.datasets import load_dblp_surrogate
from repro.experiments import case_study, format_table


def _run():
    dataset = load_dblp_surrogate(num_nodes=scaled(800, minimum=300), seed=12)
    return case_study(dataset=dataset)


def test_fig20_case_study(benchmark):
    report = run_once(benchmark, _run)
    rows = [{"algorithm": name, **metrics} for name, metrics in report.items()]
    print()
    print(format_table(rows, title="Figure 20: case study around the highest-degree node"))
    fpa = report["FPA"]
    core = report["3-core"]
    # headline shape: FPA's community is (much) smaller than the 3-core's and
    # more query-centric (larger fraction of members adjacent to the query)
    assert fpa["size"] <= core["size"]
    if not core.get("failed"):
        assert fpa["query_adjacent_fraction"] >= core["query_adjacent_fraction"]
    # the query node holds a top-3 centrality rank inside FPA's community
    assert fpa["betweenness_rank"] <= 3
