"""Figure 9 — efficiency (running time) on LFR benchmark networks.

Same sweep as Figure 8 but reporting mean per-query running time.  Expected
shape: kc / kt / highcore / hightruss / FPA in the same fast band, NCA the
slowest of the proposed algorithms (it recomputes articulation points every
iteration), and the heavier baselines (huang2015) in between.
"""

from __future__ import annotations

from conftest import default_lfr_config, run_once

from repro.experiments import format_series, lfr_parameter_sweep

ALGORITHMS = ["kc", "kt", "kecc", "huang2015", "wu2015", "highcore", "hightruss", "NCA", "FPA"]
NUM_QUERIES = 4
MU_VALUES = [0.2, 0.3, 0.4]


def _run_sweep():
    return lfr_parameter_sweep(
        ALGORITHMS,
        "mu",
        MU_VALUES,
        base_config=default_lfr_config(),
        num_queries=NUM_QUERIES,
        seed=2,
        time_budget_seconds=120.0,
    )


def test_fig9_lfr_efficiency(benchmark):
    results = run_once(benchmark, _run_sweep)
    series = {
        algorithm: {value: agg.mean_seconds for value, agg in per_value.items()}
        for algorithm, per_value in results.items()
    }
    print()
    print(
        format_series(
            series,
            x_label="algorithm",
            title="Figure 9: mean seconds per query while varying mu",
        )
    )
    # headline shape: FPA is much faster than NCA
    for mu in MU_VALUES:
        assert results["FPA"][mu].mean_seconds <= results["NCA"][mu].mean_seconds
