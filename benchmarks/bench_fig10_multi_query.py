"""Figure 10 — effect of the number of query nodes |Q|.

The paper evaluates kc, kecc, NCA and FPA with |Q| ∈ {1, 4, 8, 12} on the
default synthetic network.  Expected shape: the accuracy of NCA and FPA
improves (or stays flat) as more query nodes pin down the target community,
while kc and kecc stay flat and low because they keep returning very large
communities regardless of |Q|.

The sweep runs on the batched multi-query engine: the LFR graph is frozen
once and every (algorithm, |Q|, query set) combination is evaluated against
the shared CSR snapshot.  A second test double-checks the engine against the
classic per-query path — identical aggregates, strictly better wall-clock.
"""

from __future__ import annotations

import time

from conftest import default_lfr_config, run_once

from repro.experiments import format_series, multi_query_sweep

ALGORITHMS = ["kc", "kecc", "NCA", "FPA"]
QUERY_SIZES = [1, 4, 8, 12]


def _run(engine: str = "batched"):
    return multi_query_sweep(
        ALGORITHMS,
        QUERY_SIZES,
        config=default_lfr_config(seed=3),
        num_queries=4,
        seed=3,
        time_budget_seconds=120.0,
        engine=engine,
    )


def test_fig10_effect_of_query_set_size(benchmark):
    results = run_once(benchmark, _run)
    for metric in ("median_nmi", "median_ari"):
        series = {
            algorithm: {size: getattr(agg, metric) for size, agg in per_size.items()}
            for algorithm, per_size in results.items()
        }
        print()
        print(format_series(series, x_label="algorithm", title=f"Figure 10: {metric} vs |Q|"))
    # FPA with many query nodes should not be worse than kc at any |Q|
    for size in QUERY_SIZES:
        assert results["FPA"][size].median_nmi >= results["kc"][size].median_nmi


def test_fig10_batched_engine_matches_per_query(benchmark):
    """The batched CSR engine must agree with the per-query dict path.

    Accuracy aggregates are compared exactly (the backends are bit-identical);
    the wall-clock ratio is printed for the perf trajectory but — per the CI
    policy — never asserted.
    """

    def _both():
        start = time.perf_counter()
        per_query = _run(engine="per-query")
        mid = time.perf_counter()
        batched = _run(engine="batched")
        end = time.perf_counter()
        return per_query, batched, mid - start, end - mid

    per_query, batched, per_query_seconds, batched_seconds = run_once(benchmark, _both)
    for algorithm in ALGORITHMS:
        for size in QUERY_SIZES:
            a, b = per_query[algorithm][size], batched[algorithm][size]
            assert (a.median_nmi, a.median_ari, a.median_fscore) == (
                b.median_nmi,
                b.median_ari,
                b.median_fscore,
            ), (algorithm, size)
            assert a.failure_count == b.failure_count
    print()
    print(
        f"Figure 10 engines: per-query={per_query_seconds:.2f}s "
        f"batched={batched_seconds:.2f}s "
        f"speedup={per_query_seconds / max(batched_seconds, 1e-9):.2f}x"
    )
