"""Figure 10 — effect of the number of query nodes |Q|.

The paper evaluates kc, kecc, NCA and FPA with |Q| ∈ {1, 4, 8, 12} on the
default synthetic network.  Expected shape: the accuracy of NCA and FPA
improves (or stays flat) as more query nodes pin down the target community,
while kc and kecc stay flat and low because they keep returning very large
communities regardless of |Q|.
"""

from __future__ import annotations

from conftest import default_lfr_config, run_once

from repro.experiments import format_series, multi_query_sweep

ALGORITHMS = ["kc", "kecc", "NCA", "FPA"]
QUERY_SIZES = [1, 4, 8, 12]


def _run():
    return multi_query_sweep(
        ALGORITHMS,
        QUERY_SIZES,
        config=default_lfr_config(seed=3),
        num_queries=4,
        seed=3,
        time_budget_seconds=120.0,
    )


def test_fig10_effect_of_query_set_size(benchmark):
    results = run_once(benchmark, _run)
    for metric in ("median_nmi", "median_ari"):
        series = {
            algorithm: {size: getattr(agg, metric) for size, agg in per_size.items()}
            for algorithm, per_size in results.items()
        }
        print()
        print(format_series(series, x_label="algorithm", title=f"Figure 10: {metric} vs |Q|"))
    # FPA with many query nodes should not be worse than kc at any |Q|
    for size in QUERY_SIZES:
        assert results["FPA"][size].median_nmi >= results["kc"][size].median_nmi
