"""Serving load generator: the per-query dict path vs ``repro serve``.

Stands up a **real** server (``python -m repro serve`` in a subprocess,
ephemeral port) and drives it with a multi-dataset, multi-client workload
through the keep-alive :class:`repro.serving.ServingClientPool` — the full
request → placement → replica → micro-batch → cache → response path.
Three comparisons:

* **cold** — one client streams every distinct request once against a
  fresh server.  Cache hits play no role; the speedup is the shard's
  snapshot memoisation (one truss/core decomposition per dataset instead
  of one per query), i.e. the batched-engine effect behind a socket.
  Measured once by construction (a second run would be warm).
* **closed-loop xC** — C client threads each replay the workload
  back-to-back through the shared connection pool (rotated so they collide
  mid-stream, exercising the LRU result cache and in-flight coalescing).
  The per-query baseline runs the identical request multiset sequentially
  on the mutable dict graph — what a naive service would do per request.
* **overload** — a dedicated server with a deliberately tiny
  ``--max-queue`` is flooded with distinct (uncacheable) queries; the
  shard sheds with structured ``overloaded`` errors and the pool retries
  with the advertised ``retry_after_ms`` until every request succeeds.
  The recorded numbers are the server-side shed/retried counters and the
  client-side retry counters — the admission-control story end to end.

A fourth comparison exists for the multi-host tier (``repro.cluster``):

* **cluster** (``--cluster N``) — a real coordinator subprocess plus N
  ``repro serve --join`` node subprocesses.  The parity phase drives the
  full workload through a :class:`repro.cluster.ClusterClient` (routing
  table fetched once, queries sent directly to owning nodes) while one
  node is **killed mid-load**: every request must still complete, bit-
  identical to the dict reference, through client-side failover and a
  routing-table refetch, and the table version must advance.  The timing
  phase measures closed-loop throughput against 1 node and against N
  nodes — the scaling a single GIL cannot give.

Usage::

    python benchmarks/bench_serving.py                    # timings + parity
    python benchmarks/bench_serving.py --parity-only      # CI smoke: server up,
                                                          # parity vs the dict
                                                          # reference, errors
                                                          # structured, clean
                                                          # shutdown
    python benchmarks/bench_serving.py --parity-only \\
        --replicas 2 --executor process --max-queue 1     # replicated worker
                                                          # processes + shedding
    python benchmarks/bench_serving.py --parity-only --index require
                                                          # build community
                                                          # indexes, serve kc/kt/
                                                          # hightruss from them,
                                                          # assert hits > 0
    python benchmarks/bench_serving.py --parity-only --cluster 2
                                                          # coordinator + 2 nodes,
                                                          # kill-a-node failover
    python benchmarks/bench_serving.py --cluster 3 --json out.json
                                                          # + throughput scaling
                                                          # 1 node vs 3 nodes
    python benchmarks/bench_serving.py --mode open --rate 200
    python benchmarks/bench_serving.py --json out.json    # trajectory record
                                                          # (appended, not
                                                          # overwritten)

In the shared ``--json`` schema the ``dict_seconds`` column is the
per-query reference path and ``csr_seconds`` is the served path (for the
cluster row: 1 node vs N nodes).
"""

from __future__ import annotations

import argparse
import os
import shutil
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from _bench_util import add_common_arguments, append_json, print_table, time_median as _time

import repro
from repro.cluster import ClusterClient
from repro.datasets import load_dataset
from repro.graph import shared_memory_available
from repro.experiments import generate_query_sets
from repro.experiments.registry import run_algorithm
from repro.serving import ServingClient, ServingClientPool, latency_percentile

HOST = "127.0.0.1"
SMALL_DATASETS = ("karate", "dolphin", "mexican")
# decomposition-heavy baselines: the workload where batching/memoisation
# matters most (huang2015 exercises the ported phase-2 loop)
SMALL_ALGORITHMS = ("kt", "kc", "hightruss", "huang2015")
# one big graph where a per-query truss peel really hurts; huang2015's greedy
# deletion is quadratic-ish there, so it stays on the small datasets
HEAVY_DATASET = "dblp"
HEAVY_ALGORITHMS = ("kt", "kc", "hightruss")
MEASURE_DATASETS = SMALL_DATASETS + (HEAVY_DATASET,)
PARITY_ALGORITHMS = ("kt", "kc", "kecc", "hightruss", "huang2015", "FPA", "NCA")

#: server flags for the dedicated overload phase: a queue bound this tiny
#: guarantees shedding under any concurrent flood
OVERLOAD_MAX_QUEUE = 1
OVERLOAD_CLIENTS = 6
OVERLOAD_RETRIES = 40


# ----------------------------------------------------------------------------
# server process management
# ----------------------------------------------------------------------------


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return env


class WireProcess:
    """A repro subprocess announcing its port on stdout; wire-shutdownable."""

    announce_prefix = ""  # e.g. "serving on"

    def __init__(self, command: list[str]) -> None:
        self.proc = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            text=True,
            env=_subprocess_env(),
        )
        line = self.proc.stdout.readline()
        if self.announce_prefix not in line:
            self.proc.kill()
            raise RuntimeError(f"{type(self).__name__} failed to start: {line!r}")
        self.port = int(line.rsplit(":", 1)[1])

    @property
    def address(self) -> str:
        return f"{HOST}:{self.port}"

    def kill(self) -> None:
        """Hard-kill the process (the cluster failover phase's crash)."""
        self.proc.kill()
        self.proc.wait(5)

    def shutdown(self, timeout: float = 30.0) -> int:
        """Request shutdown over the wire; return the process exit code."""
        try:
            with ServingClient(HOST, self.port) as client:
                client.shutdown()
        except OSError:
            pass
        try:
            return self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return self.proc.wait(5)


class ServerProcess(WireProcess):
    """``repro serve`` in a subprocess."""

    announce_prefix = "serving on"

    def __init__(
        self,
        datasets,
        *,
        max_batch: int = 64,
        replicas=None,
        executor: str | None = None,
        max_queue: int = 0,
        routing: str | None = None,
        workers: int | None = None,
        snapshot: str | None = None,
        index: str | None = None,
        index_dir: str | None = None,
        join: str | None = None,
        epochs: bool = False,
        epoch_threshold: int | None = None,
        trace_sample: float | None = None,
        log_json: str | None = None,
        slow_ms: float | None = None,
    ) -> None:
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--datasets",
            *datasets,
            "--max-batch",
            str(max_batch),
        ]
        if replicas:
            command += ["--replicas", *[str(token) for token in replicas]]
        if executor:
            command += ["--executor", executor]
        if max_queue:
            command += ["--max-queue", str(max_queue)]
        if routing:
            command += ["--routing", routing]
        if workers:
            command += ["--workers", str(workers)]
        if snapshot:
            command += ["--snapshot", snapshot]
        if index:
            command += ["--index", index]
        if index_dir:
            command += ["--index-dir", index_dir]
        if join:
            command += ["--join", join]
        if epochs:
            command += ["--epochs"]
        if epoch_threshold is not None:
            command += ["--epoch-threshold", str(epoch_threshold)]
        if trace_sample is not None:
            command += ["--trace-sample", str(trace_sample)]
        if log_json is not None:
            command += ["--log-json", log_json]
        if slow_ms is not None:
            command += ["--slow-ms", str(slow_ms)]
        super().__init__(command)


class CoordinatorProcess(WireProcess):
    """``repro coordinator`` in a subprocess (the cluster control plane)."""

    announce_prefix = "coordinating on"

    def __init__(
        self,
        datasets,
        *,
        replication: int = 2,
        heartbeat_interval: float = 0.2,
        heartbeat_timeout: float | None = None,
    ) -> None:
        command = [
            sys.executable,
            "-m",
            "repro",
            "coordinator",
            "--port",
            "0",
            "--datasets",
            *datasets,
            "--replication",
            str(replication),
            "--heartbeat-interval",
            str(heartbeat_interval),
        ]
        if heartbeat_timeout is not None:
            command += ["--heartbeat-timeout", str(heartbeat_timeout)]
        super().__init__(command)


def server_config_from_args(args) -> dict:
    """The server-shaping flags shared by the parity and timing modes."""
    return {
        "replicas": args.replicas,
        "executor": args.executor,
        "max_queue": args.max_queue,
        "snapshot": args.snapshot,
        "index": args.index,
        "index_dir": args.index_dir,
        "trace_sample": args.trace_sample,
    }


def live_snapshot_segments() -> set:
    """Names of the ``repro_snap_*`` shared-memory segments currently live.

    Linux backs :mod:`multiprocessing.shared_memory` with tmpfs files under
    ``/dev/shm``, so leaked snapshot segments are directly observable there;
    on platforms without that directory the check degrades to a no-op
    (the in-process live-registry assertions in the test suite still run).
    Community-index segments (``repro_snap_idx_*``) share the prefix, so the
    leak gate covers them too.
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return set()
    return {entry.name for entry in shm_dir.glob("repro_snap_*")}


# ----------------------------------------------------------------------------
# the community-index tier (--index {auto,require,off})
# ----------------------------------------------------------------------------


def build_index_files(datasets, index_dir: str) -> None:
    """Build + persist the community-search index for each dataset."""
    from repro.graph import build_index, index_path, save_index

    for name in datasets:
        save_index(
            build_index(load_dataset(name).graph, dataset=name),
            index_path(name, index_dir),
        )


def prepare_index_dir(server_config: dict, datasets) -> tuple[dict, str | None]:
    """With ``--index`` active, make sure index files exist for ``datasets``.

    Returns ``(config, tmp_dir)``: the (possibly augmented) server config
    and a temporary directory to delete afterwards when one was created
    because the caller gave ``--index`` without ``--index-dir``.
    """
    mode = server_config.get("index")
    if not mode or mode == "off":
        return server_config, None
    tmp_dir = None
    if not server_config.get("index_dir"):
        tmp_dir = tempfile.mkdtemp(prefix="repro-bench-index-")
        server_config = dict(server_config, index_dir=tmp_dir)
    build_index_files(datasets, server_config["index_dir"])
    return server_config, tmp_dir


#: the algorithms the index can serve — the cold indexed-vs-executed
#: comparison streams exactly these
INDEXED_ALGORITHMS = ("kt", "kc", "hightruss")


def run_index_phase(scale: float, server_config: dict) -> tuple[list, dict]:
    """Cold-query timing: the same workload executed vs served from the index.

    Two fresh servers on the small datasets (result cache irrelevant: every
    request is sent once), one with ``--index off`` and one with ``--index
    require`` against freshly built index files.  The indexed run must stay
    bit-identical (the parity smoke enforces that in CI); *this* phase
    records what the index buys on cold decomposition-heavy queries.  The
    wall-clock numbers ride the JSON record and are never asserted.
    """
    requests = build_workload(scale, algorithms=INDEXED_ALGORITHMS)
    tmp_dir = tempfile.mkdtemp(prefix="repro-bench-index-")
    walls = {}
    hits = 0
    try:
        build_index_files(SMALL_DATASETS, tmp_dir)
        for mode in ("off", "require"):
            config = dict(server_config, max_queue=0, index=mode, index_dir=tmp_dir)
            server = ServerProcess(SMALL_DATASETS, **config)
            try:
                with ServingClientPool(HOST, server.port, size=1) as pool:
                    wall, _ = run_closed_loop(pool, requests, clients=1)
                walls[mode] = wall
                with ServingClient(HOST, server.port) as client:
                    totals = client.stats()["totals"]
                if mode == "require":
                    hits = totals["index_hits"]
            finally:
                server.shutdown()
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)
    row = (
        f"cold kc/kt/hightruss ({len(requests)} reqs, executed vs indexed)",
        walls["off"],
        walls["require"],
    )
    report = {
        "distinct_requests": len(requests),
        "index_hits": hits,
        "executed_wall_seconds": round(walls["off"], 4),
        "indexed_wall_seconds": round(walls["require"], 4),
        "speedup": round(walls["off"] / walls["require"], 2),
    }
    return [row], report


# ----------------------------------------------------------------------------
# workload construction
# ----------------------------------------------------------------------------


def build_workload(scale: float, datasets=SMALL_DATASETS, algorithms=SMALL_ALGORITHMS):
    """Return ``[(dataset, algorithm, nodes), ...]`` distinct requests."""
    requests = []
    num_sets = max(2, int(3 * scale))
    for name in datasets:
        dataset = load_dataset(name)
        singles = generate_query_sets(dataset, num_sets=num_sets, query_size=1, seed=17)
        pairs = generate_query_sets(dataset, num_sets=max(1, num_sets // 2), query_size=2, seed=23)
        for query_set in singles + pairs:
            for algorithm in algorithms:
                requests.append((name, algorithm, list(query_set.nodes)))
    return requests


def build_flood(count: int, datasets=("dolphin",)):
    """Distinct, uncacheable pair queries (overload + cluster phases).

    Every request is unique (distinct node pairs), so neither the LRU
    result cache nor in-flight coalescing can absorb the flood — each one
    is real work the bounded queue has to admit or shed.  ``datasets`` is
    an interleave pattern and may repeat names to weight them (e.g. three
    ``dolphin`` entries per ``karate`` keeps the flood compute-bound while
    still putting load on every node of a cluster that spreads the
    datasets over its hosts); each name draws from its own stream of
    distinct pairs regardless of how often it appears.
    """
    streams: dict[str, tuple[list, list]] = {}
    for name in datasets:
        if name in streams:
            continue
        nodes = sorted(load_dataset(name).graph.nodes(), key=repr)
        pairs = [(i, j) for i in range(len(nodes)) for j in range(i + 1, len(nodes))]
        streams[name] = (pairs, nodes)
    cursors = {name: 0 for name in streams}
    requests = []
    position = 0
    while len(requests) < count:
        name = datasets[position % len(datasets)]
        pairs, nodes = streams[name]
        cursor = cursors[name]
        if cursor >= len(pairs):
            raise ValueError(f"dataset {name!r} has too few node pairs for {count} requests")
        cursors[name] = cursor + 1
        i, j = pairs[cursor]
        requests.append((name, "huang2015", [nodes[i], nodes[j]]))
        position += 1
    return requests


def reference_results(requests):
    """Run every request on the mutable dict graph (the reference path)."""
    graphs = {name: load_dataset(name).graph for name in {r[0] for r in requests}}
    return [
        run_algorithm(algorithm, graphs[dataset], nodes)
        for dataset, algorithm, nodes in requests
    ]


def run_per_query(requests, graphs):
    """The per-query baseline: fresh dict-path execution, request by request.

    ``graphs`` is built by the caller, outside the timed region — the served
    side loads datasets at server startup (also untimed), so including
    ``load_dataset`` here would inflate the baseline.
    """
    latencies = []
    for dataset, algorithm, nodes in requests:
        start = time.perf_counter()
        run_algorithm(algorithm, graphs[dataset], nodes)
        latencies.append(time.perf_counter() - start)
    return latencies


# ----------------------------------------------------------------------------
# load generation (all traffic through the keep-alive client pool)
# ----------------------------------------------------------------------------


def run_closed_loop(pool: ServingClientPool, requests, clients: int):
    """Each client thread replays the workload back-to-back (rotated start)."""
    all_latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[str] = []

    def worker(index: int) -> None:
        offset = (index * len(requests)) // clients
        rotated = requests[offset:] + requests[:offset]
        try:
            for dataset, algorithm, nodes in rotated:
                start = time.perf_counter()
                response = pool.query(dataset, algorithm, nodes)
                all_latencies[index].append(time.perf_counter() - start)
                if not response["ok"]:
                    errors.append(f"{dataset}/{algorithm}{nodes}: {response['error']}")
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(f"client {index}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if errors:
        raise RuntimeError(f"load generation failed: {errors[:3]}")
    return wall, [latency for per_client in all_latencies for latency in per_client]


def run_open_loop(pool: ServingClientPool, requests, clients: int, rate: float):
    """Dispatch at a fixed aggregate rate; latency includes queueing delay.

    Request ``i`` is *scheduled* at ``start + i / rate`` and handed to one of
    ``clients`` workers round-robin; a worker that falls behind sends as fast
    as it can, so latencies reflect the backlog an overloaded server builds.
    """
    total = list(requests) * clients
    all_latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[str] = []
    start = time.perf_counter() + 0.05  # small lead so worker 0 isn't late

    def worker(index: int) -> None:
        try:
            for position in range(index, len(total), clients):
                dataset, algorithm, nodes = total[position]
                scheduled = start + position / rate
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                response = pool.query(dataset, algorithm, nodes)
                all_latencies[index].append(time.perf_counter() - scheduled)
                if not response["ok"]:
                    errors.append(f"{dataset}/{algorithm}{nodes}: {response['error']}")
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(f"client {index}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if errors:
        raise RuntimeError(f"load generation failed: {errors[:3]}")
    return wall, [latency for per_client in all_latencies for latency in per_client]


def run_flood(pool: ServingClientPool, requests, clients: int):
    """Flood distinct queries through the pool; returns per-request outcomes.

    Unlike the closed/open loops this tolerates non-ok responses (an
    exhausted retry budget) and reports them, because the whole point of
    the overload phase is to count what got shed and what recovered.
    """
    outcomes: list[bool] = []
    lock = threading.Lock()
    failures: list[str] = []

    def worker(index: int) -> None:
        try:
            for position in range(index, len(requests), clients):
                dataset, algorithm, nodes = requests[position]
                response = pool.query(
                    dataset, algorithm, nodes, max_retries=OVERLOAD_RETRIES
                )
                with lock:
                    outcomes.append(bool(response.get("ok")))
        except Exception as exc:  # noqa: BLE001 - surfaced below
            with lock:
                failures.append(f"client {index}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise RuntimeError(f"overload phase failed: {failures[:3]}")
    return outcomes


def run_overload_phase(server_config: dict):
    """Stand up a tiny-queue server, flood it, and report the counters.

    The queue bound is always :data:`OVERLOAD_MAX_QUEUE` regardless of the
    caller's ``--max-queue``: with ``OVERLOAD_CLIENTS`` closed-loop clients
    the queue depth can never exceed the client count, so only a bound
    below it guarantees the sheds this phase exists to measure.
    """
    flood_requests = build_flood(count=OVERLOAD_CLIENTS * 20)
    config = dict(server_config)
    config["max_queue"] = OVERLOAD_MAX_QUEUE
    server = ServerProcess(("dolphin",), **config)
    try:
        with ServingClientPool(HOST, server.port, size=OVERLOAD_CLIENTS) as pool:
            outcomes = run_flood(pool, flood_requests, clients=OVERLOAD_CLIENTS)
            with ServingClient(HOST, server.port) as client:
                shard_stats = client.stats()["shards"]["dolphin"]
            counters = pool.counters()
    finally:
        exit_code = server.shutdown()
    return {
        "max_queue": config["max_queue"],
        "requests": len(outcomes),
        "succeeded": sum(outcomes),
        "failed": len(outcomes) - sum(outcomes),
        "server_shed": shard_stats["shed"],
        "server_retried": shard_stats["retried"],
        "client_retries": counters["retries"],
        "client_overloaded_responses": counters["overloaded_responses"],
        "client_exhausted": counters["exhausted"],
        "clean_shutdown": exit_code == 0,
    }


#: the sampling rates the trace-overhead phase compares: off (the seed
#: fast path), production-style 1%, and everything-sampled
TRACE_OVERHEAD_SAMPLES = (0.0, 0.01, 1.0)


def run_trace_overhead_phase(server_config: dict, clients: int):
    """Measure what request tracing costs on a warm closed loop.

    The same workload is replayed against three fresh servers — sampling
    off, 1% and 100% — after a warm-up pass, so the comparison is LRU-hit
    heavy (the worst case for tracing overhead: the admission span is the
    only real work a cache hit does).  The numbers ride the JSON record
    and are **never asserted**: tracing-off must merely stay the obvious
    baseline when a human reads the report.
    """
    requests = build_workload(0.5, datasets=("karate",))
    results = {}
    for sample in TRACE_OVERHEAD_SAMPLES:
        config = dict(server_config, max_queue=0)
        config.pop("trace_sample", None)
        if sample:
            config["trace_sample"] = sample
        server = ServerProcess(("karate",), **config)
        try:
            with ServingClientPool(HOST, server.port, size=clients) as pool:
                run_closed_loop(pool, requests, clients)  # warm the caches
                walls = []
                latencies: list[float] = []
                for _ in range(3):
                    wall, replay = run_closed_loop(pool, requests, clients)
                    walls.append(wall)
                    latencies.extend(replay)
        finally:
            server.shutdown()
        results[f"sample_{sample}"] = {
            "wall_seconds": round(statistics.median(walls), 4),
            "p50_ms": percentile_ms(latencies, 0.50),
            "p95_ms": percentile_ms(latencies, 0.95),
            "requests": len(requests) * clients,
        }
    baseline = results["sample_0.0"]["wall_seconds"]
    for block in results.values():
        block["vs_off"] = round(block["wall_seconds"] / baseline, 3) if baseline else None
    return results


def percentile_ms(latencies, fraction: float) -> float:
    """Server-side nearest-rank percentile (shared helper), in milliseconds."""
    return round(latency_percentile(latencies, fraction) * 1000.0, 3)


# ----------------------------------------------------------------------------
# the multi-host cluster phases (--cluster N)
# ----------------------------------------------------------------------------

#: heartbeat cadence for the bench clusters: fast enough that a killed
#: node fails over within a couple of seconds, tolerant enough that a
#: *healthy* node saturating a small CI box does not get falsely declared
#: dead between heartbeats (client-side failover does not wait for this —
#: a connection error quarantines the dead node immediately)
CLUSTER_HEARTBEAT_INTERVAL = 0.25
CLUSTER_HEARTBEAT_TIMEOUT = 2.0
CLUSTER_REPLICATION = 2


def start_cluster(node_count: int, datasets=SMALL_DATASETS, replication=CLUSTER_REPLICATION):
    """Stand up a coordinator + ``node_count`` joined node subprocesses.

    Blocks until the routing table covers every dataset with the expected
    replica count (capped by the node count), so the caller never races
    the registration heartbeats.
    """
    coordinator = CoordinatorProcess(
        datasets,
        replication=replication,
        heartbeat_interval=CLUSTER_HEARTBEAT_INTERVAL,
        heartbeat_timeout=CLUSTER_HEARTBEAT_TIMEOUT,
    )
    nodes = []
    try:
        nodes = [
            ServerProcess((datasets[0],), join=coordinator.address)
            for _ in range(node_count)
        ]
        want = min(replication, node_count)
        deadline = time.perf_counter() + 30.0
        with ServingClient(HOST, coordinator.port) as control:
            while True:
                table = control.request({"op": "route_table"})["table"]
                if all(len(table.get(name, ())) >= want for name in datasets):
                    break
                if time.perf_counter() > deadline:
                    raise RuntimeError(f"cluster did not converge; table: {table}")
                time.sleep(0.05)
    except BaseException:
        for node in nodes:
            node.kill()
        coordinator.shutdown()
        raise
    return coordinator, nodes


def stop_cluster(coordinator: CoordinatorProcess, nodes) -> bool:
    """Shut the surviving processes down cleanly; True if all exited 0."""
    clean = True
    for node in nodes:
        if node.proc.poll() is None:
            clean &= node.shutdown() == 0
    clean &= coordinator.shutdown() == 0
    return clean


def run_cluster_load(
    client: ClusterClient, requests, clients: int, on_response=None, striped: bool = False
):
    """Replay the workload through the cluster client from ``clients`` threads.

    Two shapes share this harness: the default replays the *whole* list per
    thread with rotated starts (the parity/failover phase — duplicates
    exercise caching and coalescing), while ``striped`` partitions it into
    **disjoint** per-thread stripes (positions ``i, i+C, i+2C, ...``) so
    with distinct requests the aggregate rate is genuine *execution*
    throughput.  Returns ``(wall_seconds, [(request, response), ...])``;
    raises if any thread died (individual non-ok responses are the
    caller's to judge).  ``on_response`` (if given) is called after every
    completed request — the failover phase uses it to trigger the node
    kill mid-load.
    """
    outcomes: list[tuple[tuple, dict]] = []
    errors: list[str] = []
    lock = threading.Lock()

    def worker(index: int) -> None:
        if striped:
            own = [requests[position] for position in range(index, len(requests), clients)]
        else:
            offset = (index * len(requests)) // clients
            own = requests[offset:] + requests[:offset]
        try:
            for request in own:
                dataset, algorithm, nodes = request
                response = client.query(dataset, algorithm, nodes)
                with lock:
                    outcomes.append((request, response))
                if on_response is not None:
                    on_response(len(outcomes))
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(f"client {index}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if errors:
        raise RuntimeError(f"cluster load generation failed: {errors[:3]}")
    return wall, outcomes


def check_cluster_parity(outcomes, reference_of, check) -> None:
    """Every served response must be ok and bit-identical to the reference."""
    for (dataset, algorithm, nodes), response in outcomes:
        label = f"cluster {dataset}/{algorithm}{nodes}"
        if not response.get("ok"):
            check(f"{label}: {response.get('error')}", False)
            continue
        reference = reference_of[(dataset, algorithm, tuple(nodes))]
        failed = bool(reference.extra.get("failed")) or not reference.nodes
        check(f"{label} failed-flag", response["failed"] == failed)
        check(f"{label} nodes", response["nodes"] == sorted(reference.nodes, key=repr))
        if failed:
            check(f"{label} score", response["score"] is None)
        else:
            check(f"{label} score", response["score"] == reference.score)


def run_cluster_failover_phase(node_count: int, scale: float, check) -> dict:
    """Coordinator + N nodes; one node is **killed mid-load**.

    Asserts through ``check``: every request (including those in flight at
    kill time) completes bit-identically to the dict reference via the
    surviving replicas, the client refetched the routing table, the
    table version advanced past the pre-kill version, and the survivors
    shut down cleanly.
    """
    requests = build_workload(min(scale, 1.0), algorithms=PARITY_ALGORITHMS)
    reference_of = {
        (dataset, algorithm, tuple(nodes)): result
        for (dataset, algorithm, nodes), result in zip(
            requests, reference_results(requests)
        )
    }
    coordinator, nodes = start_cluster(node_count)
    killed = {"done": False}
    try:
        with ClusterClient(
            HOST, coordinator.port, pool_size=4, failover_timeout=30.0
        ) as client:
            version_before = client.table_version
            fetches_before = client.table_fetches
            # the victim must actually hold assignments (with more nodes
            # than replica slots some node may own nothing — killing that
            # one would exercise neither failover nor a version bump)
            assigned = {
                address
                for name in SMALL_DATASETS
                for address in client.owners(name)
            }
            victim = next(node for node in reversed(nodes) if node.address in assigned)

            def kill_mid_load(completed: int) -> None:
                # kill one node once a third of the workload has been served:
                # plenty of requests are still in flight or unsent, so the
                # failover path (connection error -> quarantine -> refetch ->
                # surviving replica) is exercised under real load
                if not killed["done"] and completed >= len(requests):
                    killed["done"] = True
                    victim.kill()

            wall, outcomes = run_cluster_load(
                client, requests, clients=3, on_response=kill_mid_load
            )
            check("cluster-node-killed", killed["done"])
            check("cluster-all-served", len(outcomes) == 3 * len(requests))
            check_cluster_parity(outcomes, reference_of, check)
            check("cluster-failover-observed", client.failovers >= 1)
            check("cluster-table-refetched", client.table_fetches > fetches_before)
            # the coordinator's sweep declares the killed node dead and
            # publishes a repaired table.  Poll for convergence: the version
            # advances and exactly one node is gone (a *healthy* node can be
            # transiently declared dead under full-machine load and rejoins
            # on its next heartbeat, so a one-shot liveness check is racy)
            deadline = time.perf_counter() + 15.0
            live = -1
            while time.perf_counter() < deadline:
                client.refresh_table()
                live = client.coordinator_stats()["live_nodes"]
                if client.table_version > version_before and live == node_count - 1:
                    break
                time.sleep(0.1)
            check("cluster-version-advanced", client.table_version > version_before)
            check("cluster-killed-node-evicted", live == node_count - 1)
            table = client.coordinator_stats()["assignments"]
            counters = client.counters()
    finally:
        # stop_cluster skips already-dead processes, so the killed node is
        # not "shut down" twice and a pre-kill crash still cleans up fully
        clean = stop_cluster(coordinator, nodes)
    check("cluster-clean-shutdown", clean)
    return {
        "node_count": node_count,
        "requests": len(requests) * 3,
        "wall_seconds": round(wall, 3),
        "failovers": counters["failovers"],
        "table_fetches": counters["table_fetches"],
        "final_version": counters["table_version"],
        "assignments": table,
        "clean_shutdown": clean,
    }


def run_cluster_throughput(node_count: int, batches, clients: int, dataset: str) -> float:
    """Median wall time of the distinct-query batches on a fresh cluster.

    The scenario is a **hot dataset replicated on every node** (PR 4's
    replicate-hot-shards story, now across hosts): all ``node_count``
    processes own ``dataset`` and the cache-affine client spreads the
    distinct queries over them.  Each replay consumes its own batch of
    never-seen queries (replaying one batch would measure the LRU cache,
    not the cluster), so the median is over genuinely cold, compute-bound
    closed-loop runs.
    """
    coordinator, nodes = start_cluster(
        node_count, datasets=(dataset,), replication=node_count
    )
    try:
        with ClusterClient(HOST, coordinator.port, pool_size=clients) as client:
            # untimed warmup: touch every owner directly so the lazy shard
            # loads (dataset build + freeze, paid once per node) stay out
            # of the measurement — the single-host bench likewise loads
            # datasets at server startup, outside timing
            for address in client.owners(dataset):
                response = client._pool(address).query(dataset, "kc", [0])
                assert response["ok"], response
            walls = []
            for batch in batches:
                wall, outcomes = run_cluster_load(client, batch, clients, striped=True)
                bad = [response for _, response in outcomes if not response.get("ok")]
                if bad or len(outcomes) != len(batch):
                    raise RuntimeError(f"cluster throughput run failed: {bad[:3]}")
                walls.append(wall)
    finally:
        clean = stop_cluster(coordinator, nodes)
    if not clean:
        raise RuntimeError("cluster throughput run did not shut down cleanly")
    return statistics.median(walls)


def run_cluster(
    node_count: int,
    scale: float,
    parity_only: bool,
    clients: int,
    json_path: str | None,
) -> int:
    """The ``--cluster N`` mode: failover parity smoke (+ scaling timings)."""
    if node_count < 2:
        raise SystemExit("--cluster needs at least 2 nodes (one gets killed)")
    failures: list[str] = []

    def check(name: str, ok: bool) -> None:
        if not ok:
            failures.append(name)

    failover = run_cluster_failover_phase(node_count, scale, check)
    if failures:
        print(f"CLUSTER FAILURES ({len(failures)}):")
        for failure in failures[:20]:
            print(f"  - {failure}")
        return 1
    print(
        f"cluster parity ok: {failover['requests']} requests against "
        f"{node_count} nodes with one killed mid-load; all completed "
        f"bit-identical via failover ({failover['failovers']} failovers, "
        f"{failover['table_fetches']} table fetches, final routing version "
        f"{failover['final_version']}); clean shutdown"
    )
    if parity_only:
        return 0

    # throughput scaling: closed-loop floods of *distinct* (uncacheable)
    # decomposition-heavy huang2015 queries against a hot dataset that is
    # replicated on 1 node and then on all N nodes — execution throughput,
    # the axis that scales with node processes.  Six disjoint batches so
    # every replay on both clusters is genuinely cold.
    batch_size = max(60, int(60 * scale))
    flood = build_flood(count=batch_size * 6)
    batches = [flood[i * batch_size : (i + 1) * batch_size] for i in range(6)]
    total = batch_size  # per measured replay
    single_wall = run_cluster_throughput(1, batches[:3], clients, "dolphin")
    multi_wall = run_cluster_throughput(node_count, batches[3:], clients, "dolphin")
    rows = [
        (
            f"cluster cold flood x{clients} ({total} reqs)",
            single_wall,
            multi_wall,
        )
    ]
    print_table(rows)
    single_throughput = total / single_wall
    multi_throughput = total / multi_wall
    cores = os.cpu_count() or 1
    print()
    print(
        f"cluster execution throughput (x{clients} clients, distinct "
        f"uncacheable queries on a hot dataset replicated on every node): "
        f"1 node {single_throughput:,.0f} req/s, "
        f"{node_count} nodes {multi_throughput:,.0f} req/s "
        f"({multi_throughput / single_throughput:.2f}x on {cores} core(s); "
        f"each node is an independent process, so capacity grows with "
        f"hosts x cores)"
    )
    if json_path:
        append_json(
            json_path,
            bench="serving",
            scale=scale,
            rows=rows,
            parity=True,
            clients=clients,
            mode="cluster-closed",
            cluster={
                "node_count": node_count,
                "replication": "one replica per node (hot dataset)",
                "cores": cores,
                "distinct_requests_per_replay": total,
                "throughput_req_per_s": {
                    "one_node": round(single_throughput, 1),
                    "n_nodes": round(multi_throughput, 1),
                    "scaling": round(multi_throughput / single_throughput, 2),
                },
                "failover": failover,
            },
        )
    return 0


# ----------------------------------------------------------------------------
# the zero-copy memory phase (process executor only)
# ----------------------------------------------------------------------------

#: the dataset the memory comparison freezes: the largest bundled surrogate,
#: so the snapshot cost dominates measurement noise
MEMORY_DATASET = "livejournal"


def _worker_describe(stats: dict, dataset: str):
    """Per-replica worker descriptions + the shard's effective snapshot mode."""
    shard = stats["shards"][dataset]
    return [replica["executor"] for replica in shard["replicas"]], shard["snapshot"]


def run_memory_phase(check) -> dict:
    """Prove the zero-copy claim with resident-set numbers over the wire.

    Stands up two real servers on :data:`MEMORY_DATASET`: one **private**
    process replica (PR 4 behaviour — the worker freezes its own snapshot)
    and two **shared** process replicas (the workers attach the host's
    segment).  Each worker reports its post-snapshot VmRSS and the RSS
    delta the snapshot itself cost (``snapshot_rss_kb``) in its handshake;
    the phase asserts

    * both shared attaches *together* cost less resident memory than one
      private freeze (the snapshot bytes live once, in the segment), and
    * the two shared workers' total RSS stays well under 2x the single
      private worker's (the ISSUE's acceptance bound).

    On platforms without ``/proc`` RSS introspection (or where shared
    memory is unavailable and the server fell back to private snapshots)
    the assertions are skipped with a note — the numbers are the point,
    and absent numbers must not fail unrelated platforms.
    """
    server = ServerProcess(
        (MEMORY_DATASET,), replicas=["1"], executor="process", snapshot="private"
    )
    try:
        with ServingClient(HOST, server.port) as client:
            private_workers, private_mode = _worker_describe(
                client.stats(), MEMORY_DATASET
            )
    finally:
        check("memory-private-clean-shutdown", server.shutdown() == 0)
    server = ServerProcess(
        (MEMORY_DATASET,), replicas=["2"], executor="process", snapshot="shared"
    )
    try:
        with ServingClient(HOST, server.port) as client:
            shared_workers, shared_mode = _worker_describe(client.stats(), MEMORY_DATASET)
    finally:
        check("memory-shared-clean-shutdown", server.shutdown() == 0)

    report = {
        "dataset": MEMORY_DATASET,
        "private_mode": private_mode,
        "shared_mode": shared_mode,
        "private_worker": private_workers[0],
        "shared_workers": shared_workers,
    }
    check("memory-private-mode", private_mode == "private")
    rss_values = [worker.get("rss_kb") for worker in private_workers + shared_workers]
    if shared_mode != "shared":
        report["skipped"] = "shared memory unavailable; server fell back to private"
        print(f"memory phase skipped: {report['skipped']}")
        return report
    if any(value is None for value in rss_values):
        report["skipped"] = "worker RSS not measurable on this platform (no /proc)"
        print(f"memory phase skipped: {report['skipped']}")
        return report

    private_snapshot = max(0, private_workers[0].get("snapshot_rss_kb") or 0)
    shared_snapshot = sum(
        max(0, worker.get("snapshot_rss_kb") or 0) for worker in shared_workers
    )
    private_rss = private_workers[0]["rss_kb"]
    shared_rss = sum(worker["rss_kb"] for worker in shared_workers)
    report["private_snapshot_kb"] = private_snapshot
    report["shared_snapshot_kb_total"] = shared_snapshot
    report["private_rss_kb"] = private_rss
    report["shared_rss_kb_total"] = shared_rss
    report["rss_ratio_vs_2x_private"] = round(shared_rss / (2 * private_rss), 3)
    # the private freeze must be measurable at all for the comparison to
    # mean anything; livejournal's snapshot is tens of MB, far above noise
    check("memory-private-snapshot-measurable", private_snapshot > 1024)
    check("memory-shared-attach-cheaper", shared_snapshot < private_snapshot)
    check("memory-under-2x", shared_rss < 2 * private_rss)
    print(
        f"memory: private worker snapshot {private_snapshot} KiB "
        f"(RSS {private_rss} KiB); 2 shared workers attach for "
        f"{shared_snapshot} KiB total (RSS {shared_rss} KiB = "
        f"{report['rss_ratio_vs_2x_private']:.2f} of the 2x-private budget)"
    )
    return report


# ----------------------------------------------------------------------------
# parity smoke (the CI mode)
# ----------------------------------------------------------------------------


def run_parity(scale: float, server_config: dict, json_path: str | None = None) -> int:
    failures: list[str] = []

    def check(name: str, ok: bool) -> None:
        if not ok:
            failures.append(name)

    requests = build_workload(min(scale, 1.0), algorithms=PARITY_ALGORITHMS)
    references = reference_results(requests)
    segments_before = live_snapshot_segments()
    # with --index the smoke serves kc/kt/hightruss from freshly built
    # index files; everything else (and every malformed request) must keep
    # its executed-path behaviour bit-for-bit
    index_mode = server_config.get("index")
    server_config, index_tmp = prepare_index_dir(server_config, SMALL_DATASETS)
    index_stats = None
    server = ServerProcess(SMALL_DATASETS, **server_config)
    try:
        with ServingClientPool(HOST, server.port, size=4) as pool, ServingClient(
            HOST, server.port
        ) as client:
            check("ping", client.ping() == {"ok": True, "op": "ping"})
            for (dataset, algorithm, nodes), reference in zip(requests, references):
                response = pool.query(dataset, algorithm, nodes)
                label = f"{dataset}/{algorithm}{nodes}"
                if not response["ok"]:
                    check(f"{label}: {response['error']}", False)
                    continue
                failed = bool(reference.extra.get("failed")) or not reference.nodes
                check(f"{label} failed-flag", response["failed"] == failed)
                check(f"{label} nodes", response["nodes"] == sorted(reference.nodes, key=repr))
                check(f"{label} size", response["size"] == reference.size)
                if failed:
                    check(f"{label} score", response["score"] is None)
                else:
                    # exact float equality: the JSON round-trip is repr-exact
                    # and the CSR backend is bit-identical to the dict path
                    check(f"{label} score", response["score"] == reference.score)

            # duplicate request comes back from the LRU result cache
            dataset, algorithm, nodes = requests[0]
            check("cached-repeat", pool.query(dataset, algorithm, nodes)["cached"])

            # structured errors, all on a connection that must stay alive
            check(
                "unknown-dataset",
                client.query("atlantis", "kt", [0])["error"]["code"] == "unknown_dataset",
            )
            check(
                "unknown-algorithm",
                client.query("karate", "quantum", [0])["error"]["code"] == "unknown_algorithm",
            )
            check(
                "bad-query-node",
                client.query("karate", "kt", [10**9])["error"]["code"] == "bad_query",
            )
            check(
                "malformed-json",
                client.send_raw(b"{not json")["error"]["code"] == "bad_request",
            )
            check("alive-after-errors", client.ping()["ok"])

            stats = client.stats()
            check("stats-shards", set(SMALL_DATASETS) <= set(stats["shards"]))
            check("stats-hits", stats["totals"]["cache_hits"] >= 1)
            check("stats-executed", stats["totals"]["executed"] >= len(requests) - 1)
            # the placement/replication schema dashboards rely on
            check("stats-placement", "placement" in stats)
            # the snapshot mode workers actually run with: 'private' must be
            # honoured verbatim; 'shared' (the default) must be *effective*
            # for process/pool executors wherever shared memory exists —
            # a silent fallback here would void the zero-copy story CI gates
            requested_snapshot = server_config.get("snapshot") or "shared"
            expect_shared = (
                requested_snapshot == "shared"
                and server_config.get("executor") in ("pool", "process")
                and shared_memory_available()
            )
            for name in SMALL_DATASETS:
                shard = stats["shards"][name]
                check(f"stats-{name}-replicas", len(shard["replicas"]) == shard["replica_count"])
                check(
                    f"stats-{name}-admission",
                    all(key in shard for key in ("shed", "retried", "max_queue")),
                )
                if server_config.get("executor"):
                    check(
                        f"stats-{name}-executor",
                        shard["executor"] == server_config["executor"],
                    )
                check(f"stats-{name}-snapshot", shard["snapshot"] in ("shared", "private"))
                if requested_snapshot == "private":
                    check(f"stats-{name}-snapshot-private", shard["snapshot"] == "private")
                elif expect_shared:
                    check(f"stats-{name}-snapshot-shared", shard["snapshot"] == "shared")
                check(f"stats-{name}-index-block", "index" in shard)
                if index_mode == "require":
                    check(
                        f"stats-{name}-indexed",
                        shard["index"]["effective"] == "indexed",
                    )
            if index_mode and index_mode != "off":
                # the whole point of the index smoke: queries actually hit it
                check("stats-index-hits", stats["totals"]["index_hits"] > 0)
                index_stats = {
                    "mode": index_mode,
                    "hits": stats["totals"]["index_hits"],
                }
    finally:
        exit_code = server.shutdown()
    check("clean-shutdown", exit_code == 0)

    # with a bounded queue the smoke also exercises shedding + pool retry
    # against a dedicated tiny-queue server (distinct uncacheable queries)
    overload = None
    if server_config.get("max_queue"):
        overload = run_overload_phase(server_config)
        check("overload-all-succeeded", overload["failed"] == 0)
        check("overload-shed-nonzero", overload["server_shed"] > 0)
        check("overload-server-saw-retries", overload["server_retried"] > 0)
        check("overload-client-retried", overload["client_retries"] > 0)
        check("overload-clean-shutdown", overload["clean_shutdown"])

    # the zero-copy proof: worker RSS numbers for private-vs-shared snapshots
    memory = None
    if server_config.get("executor") == "process":
        memory = run_memory_phase(check)

    if index_tmp is not None:
        shutil.rmtree(index_tmp, ignore_errors=True)

    # every server in this run (parity, overload, memory) is down now: any
    # surviving repro_snap_* segment — snapshot or index — is an owner that
    # failed to unlink, exactly the leak class the shared lifecycle must
    # prevent
    leaked = sorted(live_snapshot_segments() - segments_before)
    check(f"leaked-shared-memory-segments: {leaked}", not leaked)

    if json_path:
        append_json(
            json_path,
            bench="serving",
            scale=scale,
            rows=[],
            parity=not failures,
            mode="parity",
            server_config={
                "replicas": server_config.get("replicas") or ["1"],
                "executor": server_config.get("executor") or "inline",
                "snapshot": server_config.get("snapshot") or "shared",
                "index": index_mode or "auto",
            },
            distinct_requests=len(requests),
            leaked_segments=leaked,
            memory=memory,
            admission=overload,
            index=index_stats,
        )

    if failures:
        print(f"PARITY FAILURES ({len(failures)}):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"parity ok: {len(requests)} served requests identical to the dict "
        f"reference path; errors structured; clean shutdown; no leaked "
        f"shared-memory segments"
    )
    if index_stats is not None:
        print(
            f"index ok: mode {index_stats['mode']}, "
            f"{index_stats['hits']} queries answered from the community index"
        )
    if overload is not None:
        print(
            f"overload ok: {overload['requests']} distinct queries against "
            f"max_queue={overload['max_queue']}; {overload['server_shed']} shed, "
            f"{overload['client_retries']} client retries, all recovered"
        )
    return 0


# ----------------------------------------------------------------------------
# main
# ----------------------------------------------------------------------------


def run(
    scale: float = 1.0,
    parity_only: bool = False,
    json_path: str | None = None,
    clients: int = 4,
    mode: str = "closed",
    rate: float = 200.0,
    server_config: dict | None = None,
    cluster: int | None = None,
) -> int:
    server_config = server_config or {}
    if cluster is not None:
        return run_cluster(cluster, scale, parity_only, clients, json_path)
    if parity_only:
        return run_parity(scale, server_config, json_path)

    requests = build_workload(scale) + build_workload(
        scale, datasets=(HEAVY_DATASET,), algorithms=HEAVY_ALGORITHMS
    )
    multiset = list(requests) * clients
    print(
        f"workload: {len(requests)} distinct requests over {len(MEASURE_DATASETS)} datasets; "
        f"{clients} clients ({mode}-loop)"
    )

    # per-query reference path (sequential dict-graph execution, no caching)
    graphs = {name: load_dataset(name).graph for name in {r[0] for r in requests}}
    per_query_cold_seconds, per_query_cold_latencies = _time(
        lambda: run_per_query(requests, graphs), repeat=3
    )
    per_query_multi_seconds, per_query_multi_latencies = _time(
        lambda: run_per_query(multiset, graphs), repeat=3
    )

    # the measured server keeps the queue unbounded (shedding would distort
    # throughput numbers); the dedicated overload phase below bounds it
    measured_config = dict(server_config)
    measured_config["max_queue"] = 0
    server = ServerProcess(MEASURE_DATASETS, **measured_config)
    try:
        # spot parity before timing anything: served == dict reference
        with ServingClient(HOST, server.port) as client:
            parity = True
            for dataset, algorithm, nodes in requests[:: max(1, len(requests) // 5)]:
                response = client.query(dataset, algorithm, nodes)
                reference = run_algorithm(algorithm, load_dataset(dataset).graph, nodes)
                parity &= response["ok"] and response["nodes"] == sorted(
                    reference.nodes, key=repr
                )

        # served, cold: one client streams the distinct workload once against
        # the (result-cache-cold) server.  Measured once by construction — a
        # second pass would be answered from the LRU cache.  The spot-parity
        # requests above warmed a few entries; exclude them from the cold
        # numbers by restarting the server.
        exit_code = server.shutdown()
        if exit_code != 0:
            print(f"WARNING: parity server exited with code {exit_code}")
        server = ServerProcess(MEASURE_DATASETS, **measured_config)
        with ServingClientPool(HOST, server.port, size=1) as cold_pool:
            served_cold_wall, served_cold_latencies = run_closed_loop(
                cold_pool, requests, clients=1
            )

        # served, multi-client steady state: C clients replay the workload
        # concurrently (closed-loop) or at a fixed aggregate rate (open-loop);
        # median of 3 replays against the now-warm shards.  One shared
        # keep-alive pool across all replays: no per-replay connect cost.
        walls = []
        served_multi_latencies: list[float] = []
        with ServingClientPool(HOST, server.port, size=clients) as pool:
            for _ in range(3):
                if mode == "open":
                    wall, latencies = run_open_loop(pool, requests, clients, rate)
                else:
                    wall, latencies = run_closed_loop(pool, requests, clients)
                walls.append(wall)
                served_multi_latencies.extend(latencies)
        served_multi_wall = statistics.median(walls)

        with ServingClient(HOST, server.port) as client:
            server_stats = client.stats()
    finally:
        exit_code = server.shutdown()
    if exit_code != 0:
        print(f"SERVER FAILURE: exit code {exit_code}")
        return 1

    # the admission-control story: tiny queue, distinct queries, pool retry
    overload = run_overload_phase(server_config)

    # the precomputed-index story: the same cold decomposition-heavy
    # queries, executed vs served as window scans over the index
    index_rows, index_report = run_index_phase(scale, server_config)

    # the observability story: what span recording costs at 0% / 1% / 100%
    # sampling on a warm (cache-hit heavy) loop; recorded, never asserted
    trace_overhead = run_trace_overhead_phase(server_config, clients)

    rows = [
        (f"cold x1 client ({len(requests)} reqs)", per_query_cold_seconds, served_cold_wall),
        (
            f"{mode}-loop x{clients} clients ({len(multiset)} reqs)",
            per_query_multi_seconds,
            served_multi_wall,
        ),
    ] + index_rows
    print_table(rows)
    print()
    print(f"{'latency (ms)':<36}{'p50':>10}{'p95':>10}")
    latency_rows = [
        ("per-query path (cold workload)", per_query_cold_latencies),
        ("served (cold workload)", served_cold_latencies),
        (f"per-query path (x{clients} multiset)", per_query_multi_latencies),
        (f"served ({mode}-loop x{clients})", served_multi_latencies),
    ]
    for name, latencies in latency_rows:
        print(
            f"{name:<36}{percentile_ms(latencies, 0.50):>10.3f}"
            f"{percentile_ms(latencies, 0.95):>10.3f}"
        )
    throughput_per_query = len(multiset) / per_query_multi_seconds
    throughput_served = len(multiset) / served_multi_wall
    print()
    print(
        f"throughput (x{clients} clients): per-query {throughput_per_query:,.0f} req/s, "
        f"served {throughput_served:,.0f} req/s "
        f"({throughput_served / throughput_per_query:.2f}x); parity={parity}"
    )
    totals = server_stats["totals"]
    print(
        f"server totals: {totals['queries']} queries, {totals['executed']} executed, "
        f"{totals['cache_hits']} cache hits, {totals['coalesced']} coalesced, "
        f"{totals['batches']} batches"
    )
    print(
        f"overload phase (max_queue={overload['max_queue']}, "
        f"{OVERLOAD_CLIENTS} clients): {overload['requests']} distinct requests, "
        f"{overload['server_shed']} shed, {overload['client_retries']} client retries, "
        f"{overload['succeeded']} succeeded / {overload['failed']} failed"
    )
    print(
        f"index phase: {index_report['distinct_requests']} cold kc/kt/hightruss "
        f"queries, executed {index_report['executed_wall_seconds']}s vs indexed "
        f"{index_report['indexed_wall_seconds']}s "
        f"({index_report['speedup']:.2f}x, {index_report['index_hits']} index hits)"
    )
    print(
        "trace overhead (warm closed loop): "
        + ", ".join(
            f"{key.removeprefix('sample_')}: {block['wall_seconds']}s "
            f"({block['vs_off']}x)"
            for key, block in trace_overhead.items()
        )
    )

    overload_ok = overload["failed"] == 0 and overload["server_shed"] > 0

    if json_path:
        append_json(
            json_path,
            bench="serving",
            scale=scale,
            rows=rows,
            parity=parity,
            clients=clients,
            mode=mode,
            rate=rate if mode == "open" else None,
            server_config={
                "replicas": server_config.get("replicas") or ["1"],
                "executor": server_config.get("executor") or "inline",
                "snapshot": server_config.get("snapshot") or "shared",
            },
            distinct_requests=len(requests),
            total_requests=len(multiset),
            throughput_req_per_s={
                "per_query": round(throughput_per_query, 1),
                "served": round(throughput_served, 1),
                "speedup": round(throughput_served / throughput_per_query, 2),
            },
            latency_ms={
                name: {"p50": percentile_ms(lat, 0.50), "p95": percentile_ms(lat, 0.95)}
                for name, lat in (
                    ("per_query_cold", per_query_cold_latencies),
                    ("served_cold", served_cold_latencies),
                    ("per_query_multi", per_query_multi_latencies),
                    ("served_multi", served_multi_latencies),
                )
            },
            server_totals=totals,
            admission=overload,
            index=index_report,
            trace_overhead=trace_overhead,
        )
    return 0 if parity and overload_ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_common_arguments(parser)
    parser.add_argument("--clients", type=int, default=4, help="concurrent client connections")
    parser.add_argument(
        "--mode", choices=["closed", "open"], default="closed", help="load-generation mode"
    )
    parser.add_argument(
        "--rate", type=float, default=200.0, help="aggregate request rate for --mode open (req/s)"
    )
    parser.add_argument(
        "--replicas",
        nargs="+",
        default=None,
        metavar="N|DATASET=N",
        help="forwarded to `repro serve --replicas`",
    )
    parser.add_argument(
        "--executor",
        choices=["inline", "pool", "process"],
        default=None,
        help="forwarded to `repro serve --executor`",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=0,
        help="forwarded to `repro serve --max-queue`; with --parity-only a "
        "nonzero bound also runs the shedding + retry smoke",
    )
    parser.add_argument(
        "--snapshot",
        choices=["shared", "private"],
        default=None,
        help="forwarded to `repro serve --snapshot` (server default: shared); "
        "with --parity-only and --executor process the smoke also runs the "
        "zero-copy memory comparison and the segment leak check",
    )
    parser.add_argument(
        "--index",
        choices=["auto", "require", "off"],
        default=None,
        help="forwarded to `repro serve --index`; with --parity-only and "
        "'require' the smoke builds index files first, serves kc/kt/"
        "hightruss from them and asserts index hits > 0 in the stats",
    )
    parser.add_argument(
        "--index-dir",
        default=None,
        help="forwarded to `repro serve --index-dir`; with --index and no "
        "dir the bench builds indexes into a temporary one",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="P",
        help="forwarded to `repro serve --trace-sample`; with --parity-only "
        "this runs every parity smoke with tracing on (the span machinery "
        "must not perturb results)",
    )
    parser.add_argument(
        "--cluster",
        type=int,
        default=None,
        metavar="N",
        help="multi-host mode: spawn a coordinator + N `repro serve --join` "
        "node subprocesses, kill one mid-load and assert failover parity; "
        "without --parity-only also measures closed-loop throughput "
        "scaling (1 node vs N nodes)",
    )
    args = parser.parse_args(argv)
    return run(
        scale=args.scale,
        parity_only=args.parity_only,
        json_path=args.json_path,
        clients=args.clients,
        mode=args.mode,
        rate=args.rate,
        server_config=server_config_from_args(args),
        cluster=args.cluster,
    )


if __name__ == "__main__":
    sys.exit(main())
