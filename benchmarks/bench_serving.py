"""Serving load generator: the per-query dict path vs ``repro serve``.

Stands up a **real** server (``python -m repro serve`` in a subprocess,
ephemeral port) and drives it with a multi-dataset, multi-client workload
through the keep-alive :class:`repro.serving.ServingClientPool` — the full
request → placement → replica → micro-batch → cache → response path.
Three comparisons:

* **cold** — one client streams every distinct request once against a
  fresh server.  Cache hits play no role; the speedup is the shard's
  snapshot memoisation (one truss/core decomposition per dataset instead
  of one per query), i.e. the batched-engine effect behind a socket.
  Measured once by construction (a second run would be warm).
* **closed-loop xC** — C client threads each replay the workload
  back-to-back through the shared connection pool (rotated so they collide
  mid-stream, exercising the LRU result cache and in-flight coalescing).
  The per-query baseline runs the identical request multiset sequentially
  on the mutable dict graph — what a naive service would do per request.
* **overload** — a dedicated server with a deliberately tiny
  ``--max-queue`` is flooded with distinct (uncacheable) queries; the
  shard sheds with structured ``overloaded`` errors and the pool retries
  with the advertised ``retry_after_ms`` until every request succeeds.
  The recorded numbers are the server-side shed/retried counters and the
  client-side retry counters — the admission-control story end to end.

Usage::

    python benchmarks/bench_serving.py                    # timings + parity
    python benchmarks/bench_serving.py --parity-only      # CI smoke: server up,
                                                          # parity vs the dict
                                                          # reference, errors
                                                          # structured, clean
                                                          # shutdown
    python benchmarks/bench_serving.py --parity-only \\
        --replicas 2 --executor process --max-queue 1     # replicated worker
                                                          # processes + shedding
    python benchmarks/bench_serving.py --mode open --rate 200
    python benchmarks/bench_serving.py --json out.json    # trajectory record
                                                          # (appended, not
                                                          # overwritten)

In the shared ``--json`` schema the ``dict_seconds`` column is the
per-query reference path and ``csr_seconds`` is the served path.
"""

from __future__ import annotations

import argparse
import os
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

from _bench_util import add_common_arguments, append_json, print_table, time_median as _time

import repro
from repro.datasets import load_dataset
from repro.experiments import generate_query_sets
from repro.experiments.registry import run_algorithm
from repro.serving import ServingClient, ServingClientPool, latency_percentile

HOST = "127.0.0.1"
SMALL_DATASETS = ("karate", "dolphin", "mexican")
# decomposition-heavy baselines: the workload where batching/memoisation
# matters most (huang2015 exercises the ported phase-2 loop)
SMALL_ALGORITHMS = ("kt", "kc", "hightruss", "huang2015")
# one big graph where a per-query truss peel really hurts; huang2015's greedy
# deletion is quadratic-ish there, so it stays on the small datasets
HEAVY_DATASET = "dblp"
HEAVY_ALGORITHMS = ("kt", "kc", "hightruss")
MEASURE_DATASETS = SMALL_DATASETS + (HEAVY_DATASET,)
PARITY_ALGORITHMS = ("kt", "kc", "kecc", "hightruss", "huang2015", "FPA", "NCA")

#: server flags for the dedicated overload phase: a queue bound this tiny
#: guarantees shedding under any concurrent flood
OVERLOAD_MAX_QUEUE = 1
OVERLOAD_CLIENTS = 6
OVERLOAD_RETRIES = 40


# ----------------------------------------------------------------------------
# server process management
# ----------------------------------------------------------------------------


class ServerProcess:
    """``repro serve`` in a subprocess; parses the announce line for the port."""

    def __init__(
        self,
        datasets,
        *,
        max_batch: int = 64,
        replicas=None,
        executor: str | None = None,
        max_queue: int = 0,
        routing: str | None = None,
        workers: int | None = None,
    ) -> None:
        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--datasets",
            *datasets,
            "--max-batch",
            str(max_batch),
        ]
        if replicas:
            command += ["--replicas", *[str(token) for token in replicas]]
        if executor:
            command += ["--executor", executor]
        if max_queue:
            command += ["--max-queue", str(max_queue)]
        if routing:
            command += ["--routing", routing]
        if workers:
            command += ["--workers", str(workers)]
        self.proc = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        line = self.proc.stdout.readline()
        if "serving on" not in line:
            self.proc.kill()
            raise RuntimeError(f"server failed to start: {line!r}")
        self.port = int(line.rsplit(":", 1)[1])

    def shutdown(self, timeout: float = 30.0) -> int:
        """Request shutdown over the wire; return the process exit code."""
        try:
            with ServingClient(HOST, self.port) as client:
                client.shutdown()
        except OSError:
            pass
        try:
            return self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return self.proc.wait(5)


def server_config_from_args(args) -> dict:
    """The server-shaping flags shared by the parity and timing modes."""
    return {
        "replicas": args.replicas,
        "executor": args.executor,
        "max_queue": args.max_queue,
    }


# ----------------------------------------------------------------------------
# workload construction
# ----------------------------------------------------------------------------


def build_workload(scale: float, datasets=SMALL_DATASETS, algorithms=SMALL_ALGORITHMS):
    """Return ``[(dataset, algorithm, nodes), ...]`` distinct requests."""
    requests = []
    num_sets = max(2, int(3 * scale))
    for name in datasets:
        dataset = load_dataset(name)
        singles = generate_query_sets(dataset, num_sets=num_sets, query_size=1, seed=17)
        pairs = generate_query_sets(dataset, num_sets=max(1, num_sets // 2), query_size=2, seed=23)
        for query_set in singles + pairs:
            for algorithm in algorithms:
                requests.append((name, algorithm, list(query_set.nodes)))
    return requests


def build_flood(count: int):
    """Distinct, uncacheable pair queries for the overload phase.

    Every request is unique (distinct node pairs), so neither the LRU
    result cache nor in-flight coalescing can absorb the flood — each one
    is real work the bounded queue has to admit or shed.
    """
    dataset = load_dataset("dolphin")
    nodes = sorted(dataset.graph.nodes(), key=repr)
    requests = []
    index = 0
    for i in range(len(nodes)):
        for j in range(i + 1, len(nodes)):
            if index >= count:
                return requests
            requests.append(("dolphin", "huang2015", [nodes[i], nodes[j]]))
            index += 1
    return requests


def reference_results(requests):
    """Run every request on the mutable dict graph (the reference path)."""
    graphs = {name: load_dataset(name).graph for name in {r[0] for r in requests}}
    return [
        run_algorithm(algorithm, graphs[dataset], nodes)
        for dataset, algorithm, nodes in requests
    ]


def run_per_query(requests, graphs):
    """The per-query baseline: fresh dict-path execution, request by request.

    ``graphs`` is built by the caller, outside the timed region — the served
    side loads datasets at server startup (also untimed), so including
    ``load_dataset`` here would inflate the baseline.
    """
    latencies = []
    for dataset, algorithm, nodes in requests:
        start = time.perf_counter()
        run_algorithm(algorithm, graphs[dataset], nodes)
        latencies.append(time.perf_counter() - start)
    return latencies


# ----------------------------------------------------------------------------
# load generation (all traffic through the keep-alive client pool)
# ----------------------------------------------------------------------------


def run_closed_loop(pool: ServingClientPool, requests, clients: int):
    """Each client thread replays the workload back-to-back (rotated start)."""
    all_latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[str] = []

    def worker(index: int) -> None:
        offset = (index * len(requests)) // clients
        rotated = requests[offset:] + requests[:offset]
        try:
            for dataset, algorithm, nodes in rotated:
                start = time.perf_counter()
                response = pool.query(dataset, algorithm, nodes)
                all_latencies[index].append(time.perf_counter() - start)
                if not response["ok"]:
                    errors.append(f"{dataset}/{algorithm}{nodes}: {response['error']}")
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(f"client {index}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if errors:
        raise RuntimeError(f"load generation failed: {errors[:3]}")
    return wall, [latency for per_client in all_latencies for latency in per_client]


def run_open_loop(pool: ServingClientPool, requests, clients: int, rate: float):
    """Dispatch at a fixed aggregate rate; latency includes queueing delay.

    Request ``i`` is *scheduled* at ``start + i / rate`` and handed to one of
    ``clients`` workers round-robin; a worker that falls behind sends as fast
    as it can, so latencies reflect the backlog an overloaded server builds.
    """
    total = list(requests) * clients
    all_latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[str] = []
    start = time.perf_counter() + 0.05  # small lead so worker 0 isn't late

    def worker(index: int) -> None:
        try:
            for position in range(index, len(total), clients):
                dataset, algorithm, nodes = total[position]
                scheduled = start + position / rate
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                response = pool.query(dataset, algorithm, nodes)
                all_latencies[index].append(time.perf_counter() - scheduled)
                if not response["ok"]:
                    errors.append(f"{dataset}/{algorithm}{nodes}: {response['error']}")
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(f"client {index}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if errors:
        raise RuntimeError(f"load generation failed: {errors[:3]}")
    return wall, [latency for per_client in all_latencies for latency in per_client]


def run_flood(pool: ServingClientPool, requests, clients: int):
    """Flood distinct queries through the pool; returns per-request outcomes.

    Unlike the closed/open loops this tolerates non-ok responses (an
    exhausted retry budget) and reports them, because the whole point of
    the overload phase is to count what got shed and what recovered.
    """
    outcomes: list[bool] = []
    lock = threading.Lock()
    failures: list[str] = []

    def worker(index: int) -> None:
        try:
            for position in range(index, len(requests), clients):
                dataset, algorithm, nodes = requests[position]
                response = pool.query(
                    dataset, algorithm, nodes, max_retries=OVERLOAD_RETRIES
                )
                with lock:
                    outcomes.append(bool(response.get("ok")))
        except Exception as exc:  # noqa: BLE001 - surfaced below
            with lock:
                failures.append(f"client {index}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise RuntimeError(f"overload phase failed: {failures[:3]}")
    return outcomes


def run_overload_phase(server_config: dict):
    """Stand up a tiny-queue server, flood it, and report the counters.

    The queue bound is always :data:`OVERLOAD_MAX_QUEUE` regardless of the
    caller's ``--max-queue``: with ``OVERLOAD_CLIENTS`` closed-loop clients
    the queue depth can never exceed the client count, so only a bound
    below it guarantees the sheds this phase exists to measure.
    """
    flood_requests = build_flood(count=OVERLOAD_CLIENTS * 20)
    config = dict(server_config)
    config["max_queue"] = OVERLOAD_MAX_QUEUE
    server = ServerProcess(("dolphin",), **config)
    try:
        with ServingClientPool(HOST, server.port, size=OVERLOAD_CLIENTS) as pool:
            outcomes = run_flood(pool, flood_requests, clients=OVERLOAD_CLIENTS)
            with ServingClient(HOST, server.port) as client:
                shard_stats = client.stats()["shards"]["dolphin"]
            counters = pool.counters()
    finally:
        exit_code = server.shutdown()
    return {
        "max_queue": config["max_queue"],
        "requests": len(outcomes),
        "succeeded": sum(outcomes),
        "failed": len(outcomes) - sum(outcomes),
        "server_shed": shard_stats["shed"],
        "server_retried": shard_stats["retried"],
        "client_retries": counters["retries"],
        "client_overloaded_responses": counters["overloaded_responses"],
        "client_exhausted": counters["exhausted"],
        "clean_shutdown": exit_code == 0,
    }


def percentile_ms(latencies, fraction: float) -> float:
    """Server-side nearest-rank percentile (shared helper), in milliseconds."""
    return round(latency_percentile(latencies, fraction) * 1000.0, 3)


# ----------------------------------------------------------------------------
# parity smoke (the CI mode)
# ----------------------------------------------------------------------------


def run_parity(scale: float, server_config: dict) -> int:
    failures: list[str] = []

    def check(name: str, ok: bool) -> None:
        if not ok:
            failures.append(name)

    requests = build_workload(min(scale, 1.0), algorithms=PARITY_ALGORITHMS)
    references = reference_results(requests)
    server = ServerProcess(SMALL_DATASETS, **server_config)
    try:
        with ServingClientPool(HOST, server.port, size=4) as pool, ServingClient(
            HOST, server.port
        ) as client:
            check("ping", client.ping() == {"ok": True, "op": "ping"})
            for (dataset, algorithm, nodes), reference in zip(requests, references):
                response = pool.query(dataset, algorithm, nodes)
                label = f"{dataset}/{algorithm}{nodes}"
                if not response["ok"]:
                    check(f"{label}: {response['error']}", False)
                    continue
                failed = bool(reference.extra.get("failed")) or not reference.nodes
                check(f"{label} failed-flag", response["failed"] == failed)
                check(f"{label} nodes", response["nodes"] == sorted(reference.nodes, key=repr))
                check(f"{label} size", response["size"] == reference.size)
                if failed:
                    check(f"{label} score", response["score"] is None)
                else:
                    # exact float equality: the JSON round-trip is repr-exact
                    # and the CSR backend is bit-identical to the dict path
                    check(f"{label} score", response["score"] == reference.score)

            # duplicate request comes back from the LRU result cache
            dataset, algorithm, nodes = requests[0]
            check("cached-repeat", pool.query(dataset, algorithm, nodes)["cached"])

            # structured errors, all on a connection that must stay alive
            check(
                "unknown-dataset",
                client.query("atlantis", "kt", [0])["error"]["code"] == "unknown_dataset",
            )
            check(
                "unknown-algorithm",
                client.query("karate", "quantum", [0])["error"]["code"] == "unknown_algorithm",
            )
            check(
                "bad-query-node",
                client.query("karate", "kt", [10**9])["error"]["code"] == "bad_query",
            )
            check(
                "malformed-json",
                client.send_raw(b"{not json")["error"]["code"] == "bad_request",
            )
            check("alive-after-errors", client.ping()["ok"])

            stats = client.stats()
            check("stats-shards", set(SMALL_DATASETS) <= set(stats["shards"]))
            check("stats-hits", stats["totals"]["cache_hits"] >= 1)
            check("stats-executed", stats["totals"]["executed"] >= len(requests) - 1)
            # the placement/replication schema dashboards rely on
            check("stats-placement", "placement" in stats)
            for name in SMALL_DATASETS:
                shard = stats["shards"][name]
                check(f"stats-{name}-replicas", len(shard["replicas"]) == shard["replica_count"])
                check(
                    f"stats-{name}-admission",
                    all(key in shard for key in ("shed", "retried", "max_queue")),
                )
                if server_config.get("executor"):
                    check(
                        f"stats-{name}-executor",
                        shard["executor"] == server_config["executor"],
                    )
    finally:
        exit_code = server.shutdown()
    check("clean-shutdown", exit_code == 0)

    # with a bounded queue the smoke also exercises shedding + pool retry
    # against a dedicated tiny-queue server (distinct uncacheable queries)
    overload = None
    if server_config.get("max_queue"):
        overload = run_overload_phase(server_config)
        check("overload-all-succeeded", overload["failed"] == 0)
        check("overload-shed-nonzero", overload["server_shed"] > 0)
        check("overload-server-saw-retries", overload["server_retried"] > 0)
        check("overload-client-retried", overload["client_retries"] > 0)
        check("overload-clean-shutdown", overload["clean_shutdown"])

    if failures:
        print(f"PARITY FAILURES ({len(failures)}):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"parity ok: {len(requests)} served requests identical to the dict "
        f"reference path; errors structured; clean shutdown"
    )
    if overload is not None:
        print(
            f"overload ok: {overload['requests']} distinct queries against "
            f"max_queue={overload['max_queue']}; {overload['server_shed']} shed, "
            f"{overload['client_retries']} client retries, all recovered"
        )
    return 0


# ----------------------------------------------------------------------------
# main
# ----------------------------------------------------------------------------


def run(
    scale: float = 1.0,
    parity_only: bool = False,
    json_path: str | None = None,
    clients: int = 4,
    mode: str = "closed",
    rate: float = 200.0,
    server_config: dict | None = None,
) -> int:
    server_config = server_config or {}
    if parity_only:
        return run_parity(scale, server_config)

    requests = build_workload(scale) + build_workload(
        scale, datasets=(HEAVY_DATASET,), algorithms=HEAVY_ALGORITHMS
    )
    multiset = list(requests) * clients
    print(
        f"workload: {len(requests)} distinct requests over {len(MEASURE_DATASETS)} datasets; "
        f"{clients} clients ({mode}-loop)"
    )

    # per-query reference path (sequential dict-graph execution, no caching)
    graphs = {name: load_dataset(name).graph for name in {r[0] for r in requests}}
    per_query_cold_seconds, per_query_cold_latencies = _time(
        lambda: run_per_query(requests, graphs), repeat=3
    )
    per_query_multi_seconds, per_query_multi_latencies = _time(
        lambda: run_per_query(multiset, graphs), repeat=3
    )

    # the measured server keeps the queue unbounded (shedding would distort
    # throughput numbers); the dedicated overload phase below bounds it
    measured_config = dict(server_config)
    measured_config["max_queue"] = 0
    server = ServerProcess(MEASURE_DATASETS, **measured_config)
    try:
        # spot parity before timing anything: served == dict reference
        with ServingClient(HOST, server.port) as client:
            parity = True
            for dataset, algorithm, nodes in requests[:: max(1, len(requests) // 5)]:
                response = client.query(dataset, algorithm, nodes)
                reference = run_algorithm(algorithm, load_dataset(dataset).graph, nodes)
                parity &= response["ok"] and response["nodes"] == sorted(
                    reference.nodes, key=repr
                )

        # served, cold: one client streams the distinct workload once against
        # the (result-cache-cold) server.  Measured once by construction — a
        # second pass would be answered from the LRU cache.  The spot-parity
        # requests above warmed a few entries; exclude them from the cold
        # numbers by restarting the server.
        exit_code = server.shutdown()
        if exit_code != 0:
            print(f"WARNING: parity server exited with code {exit_code}")
        server = ServerProcess(MEASURE_DATASETS, **measured_config)
        with ServingClientPool(HOST, server.port, size=1) as cold_pool:
            served_cold_wall, served_cold_latencies = run_closed_loop(
                cold_pool, requests, clients=1
            )

        # served, multi-client steady state: C clients replay the workload
        # concurrently (closed-loop) or at a fixed aggregate rate (open-loop);
        # median of 3 replays against the now-warm shards.  One shared
        # keep-alive pool across all replays: no per-replay connect cost.
        walls = []
        served_multi_latencies: list[float] = []
        with ServingClientPool(HOST, server.port, size=clients) as pool:
            for _ in range(3):
                if mode == "open":
                    wall, latencies = run_open_loop(pool, requests, clients, rate)
                else:
                    wall, latencies = run_closed_loop(pool, requests, clients)
                walls.append(wall)
                served_multi_latencies.extend(latencies)
        served_multi_wall = statistics.median(walls)

        with ServingClient(HOST, server.port) as client:
            server_stats = client.stats()
    finally:
        exit_code = server.shutdown()
    if exit_code != 0:
        print(f"SERVER FAILURE: exit code {exit_code}")
        return 1

    # the admission-control story: tiny queue, distinct queries, pool retry
    overload = run_overload_phase(server_config)

    rows = [
        (f"cold x1 client ({len(requests)} reqs)", per_query_cold_seconds, served_cold_wall),
        (
            f"{mode}-loop x{clients} clients ({len(multiset)} reqs)",
            per_query_multi_seconds,
            served_multi_wall,
        ),
    ]
    print_table(rows)
    print()
    print(f"{'latency (ms)':<36}{'p50':>10}{'p95':>10}")
    latency_rows = [
        ("per-query path (cold workload)", per_query_cold_latencies),
        ("served (cold workload)", served_cold_latencies),
        (f"per-query path (x{clients} multiset)", per_query_multi_latencies),
        (f"served ({mode}-loop x{clients})", served_multi_latencies),
    ]
    for name, latencies in latency_rows:
        print(
            f"{name:<36}{percentile_ms(latencies, 0.50):>10.3f}"
            f"{percentile_ms(latencies, 0.95):>10.3f}"
        )
    throughput_per_query = len(multiset) / per_query_multi_seconds
    throughput_served = len(multiset) / served_multi_wall
    print()
    print(
        f"throughput (x{clients} clients): per-query {throughput_per_query:,.0f} req/s, "
        f"served {throughput_served:,.0f} req/s "
        f"({throughput_served / throughput_per_query:.2f}x); parity={parity}"
    )
    totals = server_stats["totals"]
    print(
        f"server totals: {totals['queries']} queries, {totals['executed']} executed, "
        f"{totals['cache_hits']} cache hits, {totals['coalesced']} coalesced, "
        f"{totals['batches']} batches"
    )
    print(
        f"overload phase (max_queue={overload['max_queue']}, "
        f"{OVERLOAD_CLIENTS} clients): {overload['requests']} distinct requests, "
        f"{overload['server_shed']} shed, {overload['client_retries']} client retries, "
        f"{overload['succeeded']} succeeded / {overload['failed']} failed"
    )

    overload_ok = overload["failed"] == 0 and overload["server_shed"] > 0

    if json_path:
        append_json(
            json_path,
            bench="serving",
            scale=scale,
            rows=rows,
            parity=parity,
            clients=clients,
            mode=mode,
            rate=rate if mode == "open" else None,
            server_config={
                "replicas": server_config.get("replicas") or ["1"],
                "executor": server_config.get("executor") or "inline",
            },
            distinct_requests=len(requests),
            total_requests=len(multiset),
            throughput_req_per_s={
                "per_query": round(throughput_per_query, 1),
                "served": round(throughput_served, 1),
                "speedup": round(throughput_served / throughput_per_query, 2),
            },
            latency_ms={
                name: {"p50": percentile_ms(lat, 0.50), "p95": percentile_ms(lat, 0.95)}
                for name, lat in (
                    ("per_query_cold", per_query_cold_latencies),
                    ("served_cold", served_cold_latencies),
                    ("per_query_multi", per_query_multi_latencies),
                    ("served_multi", served_multi_latencies),
                )
            },
            server_totals=totals,
            admission=overload,
        )
    return 0 if parity and overload_ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_common_arguments(parser)
    parser.add_argument("--clients", type=int, default=4, help="concurrent client connections")
    parser.add_argument(
        "--mode", choices=["closed", "open"], default="closed", help="load-generation mode"
    )
    parser.add_argument(
        "--rate", type=float, default=200.0, help="aggregate request rate for --mode open (req/s)"
    )
    parser.add_argument(
        "--replicas",
        nargs="+",
        default=None,
        metavar="N|DATASET=N",
        help="forwarded to `repro serve --replicas`",
    )
    parser.add_argument(
        "--executor",
        choices=["inline", "pool", "process"],
        default=None,
        help="forwarded to `repro serve --executor`",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=0,
        help="forwarded to `repro serve --max-queue`; with --parity-only a "
        "nonzero bound also runs the shedding + retry smoke",
    )
    args = parser.parse_args(argv)
    return run(
        scale=args.scale,
        parity_only=args.parity_only,
        json_path=args.json_path,
        clients=args.clients,
        mode=args.mode,
        rate=args.rate,
        server_config=server_config_from_args(args),
    )


if __name__ == "__main__":
    sys.exit(main())
