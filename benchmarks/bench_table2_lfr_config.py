"""Table 2 — synthetic (LFR) network configuration.

Prints the parameter grid of Table 2 and, for each default cell, the
statistics of one generated instance so the generator's fidelity (size,
average degree, empirical mixing) is visible in the bench output.
"""

from __future__ import annotations

from conftest import default_lfr_config, run_once

from repro.datasets import PAPER_LFR_SWEEP, load_lfr
from repro.experiments import format_table


def _describe_default_instance():
    dataset = load_lfr(default_lfr_config())
    graph = dataset.graph
    membership = dataset.membership()
    external = sum(1 for u, v, _ in graph.iter_edges() if membership[u] != membership[v])
    return {
        "|V|": graph.number_of_nodes(),
        "|E|": graph.number_of_edges(),
        "avg degree": round(2 * graph.number_of_edges() / graph.number_of_nodes(), 2),
        "empirical mu": round(external / graph.number_of_edges(), 3),
        "|C|": dataset.num_communities,
    }


def test_table2_lfr_configuration(benchmark):
    stats = run_once(benchmark, _describe_default_instance)
    sweep = PAPER_LFR_SWEEP
    rows = [
        {"parameter": "|V|", "values": "5,000 (paper) / scaled here", "default": sweep.defaults.num_nodes},
        {"parameter": "d_avg", "values": ", ".join(map(str, sweep.avg_degree_values)), "default": 30},
        {"parameter": "d_max", "values": ", ".join(map(str, sweep.max_degree_values)), "default": 400},
        {"parameter": "mu", "values": ", ".join(map(str, sweep.mu_values)), "default": 0.3},
        {"parameter": "min C", "values": "20", "default": 20},
        {"parameter": "max C", "values": "1,000", "default": 1000},
    ]
    print()
    print(format_table(rows, title="Table 2: LFR configuration (paper grid)"))
    print(format_table([stats], title="Generated default instance (scaled)"))
    assert stats["|V|"] >= 150
    assert stats["|C|"] >= 2
