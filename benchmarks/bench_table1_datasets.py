"""Table 1 — real-world dataset statistics.

Prints the |V| / |E| / |C| / overlap table of Section 6.1.  The karate club
is the embedded real network; the remaining rows are the surrogates described
in DESIGN.md §3 (the SNAP graphs are scaled down, so their |V| / |E| are the
surrogate sizes, not the original 317K–4M node counts).
"""

from __future__ import annotations

from conftest import run_once, scaled

from repro.datasets import (
    load_dblp_surrogate,
    load_dolphin_surrogate,
    load_karate,
    load_livejournal_surrogate,
    load_mexican_surrogate,
    load_polblogs_surrogate,
    load_youtube_surrogate,
)
from repro.experiments import format_table


def _build_table1():
    datasets = [
        load_dolphin_surrogate(),
        load_karate(),
        load_polblogs_surrogate(scale=0.15),
        load_mexican_surrogate(),
        load_dblp_surrogate(num_nodes=scaled(1200, minimum=400)),
        load_youtube_surrogate(num_nodes=scaled(1500, minimum=500)),
        load_livejournal_surrogate(num_nodes=scaled(1800, minimum=600)),
    ]
    return [dataset.statistics() for dataset in datasets]


def test_table1_dataset_statistics(benchmark):
    rows = run_once(benchmark, _build_table1)
    print()
    print(format_table(rows, title="Table 1: dataset statistics (karate real; others surrogate)"))
    assert len(rows) == 7
    karate_row = next(row for row in rows if row["name"] == "karate")
    assert karate_row["|V|"] == 34 and karate_row["|E|"] == 78
