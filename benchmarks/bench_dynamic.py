"""Dynamic-graph load generator: mutations racing queries against one server.

Stands up a **real** epochal server (``python -m repro serve --epochs`` in
a subprocess, ephemeral port) and runs two things against it at once:

* a **mutation stream** — a deterministic sequence of delta batches
  (edge inserts/deletes plus a few node ops) applied through the
  ``mutate`` wire op, each publishing the next epoch; and
* **concurrent query clients** — threads hammering kt/kc/hightruss over
  their own keep-alive connections the whole time snapshots are being
  swapped under them.

Every response carries the epoch it was answered at, and the bench holds
a from-scratch reference graph for *every* epoch, so the check is exact:

* **zero stale answers** — each response must be bit-identical to the
  dict-path reference for the epoch stamped on it (a response computed on
  epoch N but stamped N+1, or served from a pre-swap cache entry, fails);
* **epoch monotonicity** — the epochs one connection observes never go
  backwards across a snapshot swap;
* **staleness bounds** — a ``min_epoch`` at the published epoch succeeds,
  one beyond it fails with the structured ``stale_epoch`` error;
* the server shuts down cleanly and leaks no ``/dev/shm`` segments.

With ``--index require`` the parity phase also exercises the index tier
under mutation: community-index files are built first, the server binds
them to the epochal shards, every ``mutate`` response must report the
index as ``repaired`` (or ``rebuilt`` on oversized batches) — a
require-mode server never refuses a write — and post-swap queries must
keep *hitting* the index, with the ``/dev/shm`` leak gate covering the
superseded ``repro_snap_idx_*`` segments.

The timing phase (skipped under ``--parity-only``) compares the two
publication paths on a bigger mutation stream in-process: a from-scratch
refreeze per batch vs the incremental core/support/truss repair, and —
with a bound community index — a full per-epoch index rebuild vs the
incremental window repair.  The wall-clock numbers ride the JSON record
and are **never** asserted.

Usage::

    python benchmarks/bench_dynamic.py                    # parity + timings
    python benchmarks/bench_dynamic.py --parity-only      # CI smoke
    python benchmarks/bench_dynamic.py --parity-only --index require
                                                          # + the index tier
                                                          # under mutation
    python benchmarks/bench_dynamic.py --json BENCH_dynamic.json
"""

from __future__ import annotations

import argparse
import random
import shutil
import sys
import tempfile
import threading
import time

from _bench_util import add_common_arguments, append_json, print_table
from bench_serving import HOST, ServerProcess, build_index_files, live_snapshot_segments

from repro.datasets import load_dataset
from repro.dynamic import DeltaBatch, EpochManager
from repro.experiments.registry import run_algorithm
from repro.serving import ServingClient

#: the dataset the parity phase mutates while serving
PARITY_DATASET = "karate"
#: (algorithm, nodes, params) probes the query threads cycle through
PARITY_QUERIES = (
    ("kt", [0], {"k": 4}),
    ("kt", [33], {"k": 3}),
    ("kc", [0], {"k": 2}),
    ("kc", [16], {"k": 2}),
    ("hightruss", [0], {}),
    ("hightruss", [33], {}),
)
PARITY_EPOCHS = 8
PARITY_CLIENTS = 4


# ----------------------------------------------------------------------------
# the mutation script and its per-epoch references
# ----------------------------------------------------------------------------


def build_mutation_script(graph, epochs: int, seed: int = 17, ops_per_batch: int = 3):
    """Deterministic delta batches that never touch the probe query nodes.

    Returns ``(batches, mirrors)`` where ``mirrors[e]`` is a dict-graph copy
    equal to the graph *after* epoch ``e`` (``mirrors[0]`` is the seed) —
    the reference every served answer is checked against.
    """
    protected = {node for _, nodes, _ in PARITY_QUERIES for node in nodes}
    rng = random.Random(seed)
    mirror = graph.copy()
    mirrors = {0: graph.copy()}
    batches = []
    next_node = 10_000
    for epoch in range(1, epochs + 1):
        batch = DeltaBatch()
        for _ in range(ops_per_batch):
            roll = rng.random()
            if roll < 0.45:
                candidates = [
                    (u, v)
                    for u, v, _ in mirror.iter_edges()
                    if u not in protected and v not in protected
                ]
                if candidates:
                    u, v = rng.choice(candidates)
                    batch.remove_edge(u, v)
                    mirror.remove_edge(u, v)
            elif roll < 0.90:
                nodes = list(mirror.nodes())
                u, v = rng.sample(nodes, 2)
                if not mirror.has_edge(u, v):
                    batch.add_edge(u, v)
                    mirror.add_edge(u, v)
            else:
                batch.add_node(next_node)
                mirror.add_node(next_node)
                next_node += 1
        if not batch:  # every roll missed; keep the epoch count exact
            batch.add_node(next_node)
            mirror.add_node(next_node)
            next_node += 1
        batches.append(batch)
        mirrors[epoch] = mirror.copy()
    return batches, mirrors


def reference_answers(mirrors):
    """``references[epoch][probe_index] = (nodes, score, failed)`` — exact."""
    references = {}
    for epoch, mirror in mirrors.items():
        per_probe = []
        for algorithm, nodes, params in PARITY_QUERIES:
            result = run_algorithm(algorithm, mirror, nodes, **params)
            failed = bool(result.extra.get("failed")) or not result.nodes
            per_probe.append((sorted(result.nodes, key=repr), result.score, failed))
        references[epoch] = per_probe
    return references


# ----------------------------------------------------------------------------
# parity smoke (the CI mode)
# ----------------------------------------------------------------------------


def query_worker(port, references, stop, failures, observed):
    """Hammer the probes on one keep-alive connection until told to stop.

    Checks, per response: structured success, the answer is bit-identical
    to the reference for the epoch *stamped on it* (zero stale answers),
    and this connection's epochs never regress.
    """
    last_epoch = -1
    served = 0
    with ServingClient(HOST, port) as client:
        while not stop.is_set():
            for probe_index, (algorithm, nodes, params) in enumerate(PARITY_QUERIES):
                response = client.query(PARITY_DATASET, algorithm, nodes, **params)
                label = f"{algorithm}{nodes}"
                if not response.get("ok"):
                    failures.append(f"{label}: {response.get('error')}")
                    continue
                epoch = response.get("epoch")
                if not isinstance(epoch, int) or epoch not in references:
                    failures.append(f"{label}: unstamped or unknown epoch {epoch!r}")
                    continue
                if epoch < last_epoch:
                    failures.append(
                        f"{label}: epoch regressed {last_epoch} -> {epoch} on one connection"
                    )
                last_epoch = epoch
                expected_nodes, expected_score, expected_failed = references[epoch][
                    probe_index
                ]
                stale = (
                    response["nodes"] != expected_nodes
                    or response["failed"] != expected_failed
                    or (not expected_failed and response["score"] != expected_score)
                )
                if stale:
                    failures.append(
                        f"STALE {label} at epoch {epoch}: served "
                        f"{response['nodes']}/{response['score']}, reference "
                        f"{expected_nodes}/{expected_score}"
                    )
                served += 1
    observed.append((served, last_epoch))


def run_parity(
    scale: float, json_path: str | None = None, index_mode: str | None = None
) -> int:
    failures: list[str] = []

    def check(name: str, ok: bool) -> None:
        if not ok:
            failures.append(name)

    epochs = max(PARITY_EPOCHS, int(PARITY_EPOCHS * scale))
    graph = load_dataset(PARITY_DATASET).graph
    batches, mirrors = build_mutation_script(graph, epochs)
    references = reference_answers(mirrors)
    segments_before = live_snapshot_segments()

    # with --index the mutation stream must keep the index hot: builds the
    # file first, then every epoch swap republishes the repaired one
    indexed = bool(index_mode) and index_mode != "off"
    server_kwargs: dict = {"epochs": True}
    index_tmp = None
    if indexed:
        index_tmp = tempfile.mkdtemp(prefix="repro-bench-dynidx-")
        build_index_files((PARITY_DATASET,), index_tmp)
        server_kwargs.update(index=index_mode, index_dir=index_tmp)

    server = ServerProcess((PARITY_DATASET,), **server_kwargs)
    start = time.perf_counter()
    try:
        stop = threading.Event()
        worker_failures: list[str] = []
        observed: list[tuple[int, int]] = []
        threads = [
            threading.Thread(
                target=query_worker,
                args=(server.port, references, stop, worker_failures, observed),
            )
            for _ in range(PARITY_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        mutation_report = []
        try:
            with ServingClient(HOST, server.port) as client:
                # the mutation stream races the query threads: every batch
                # swaps the published snapshot while probes are in flight
                for position, batch in enumerate(batches, start=1):
                    response = client.request(
                        {
                            "op": "mutate",
                            "dataset": PARITY_DATASET,
                            "ops": batch.to_wire(),
                        }
                    )
                    check(f"mutate-{position}-ok", bool(response.get("ok")))
                    check(f"mutate-{position}-epoch", response.get("epoch") == position)
                    if indexed:
                        # a require-mode server must never refuse a write:
                        # the prepared epoch carries a repaired (or, above
                        # the batch threshold, rebuilt) index
                        check(
                            f"mutate-{position}-index-maintained",
                            response.get("index") in ("repaired", "rebuilt"),
                        )
                    mutation_report.append(
                        {
                            "epoch": response.get("epoch"),
                            "mode": response.get("mode"),
                            "ops": response.get("ops"),
                            "index": response.get("index"),
                        }
                    )
                    time.sleep(0.05)  # let the probes interleave between swaps
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        wall = time.perf_counter() - start
        failures.extend(worker_failures[:20])
        served_total = sum(served for served, _ in observed)
        check("queries-served-meaningfully", served_total >= PARITY_CLIENTS * len(PARITY_QUERIES))
        # at least one connection must have lived through a swap (seen the
        # final epoch) for the race to have been exercised at all
        check("a-connection-reached-the-final-epoch", any(last == epochs for _, last in observed))

        with ServingClient(HOST, server.port) as client:
            algorithm, nodes, params = PARITY_QUERIES[0]
            probe = {
                "op": "query",
                "dataset": PARITY_DATASET,
                "algorithm": algorithm,
                "nodes": nodes,
                "params": params,
            }
            bounded = client.request({**probe, "min_epoch": epochs})
            check("min-epoch-at-published-ok", bounded.get("ok") and bounded["epoch"] >= epochs)
            beyond = client.request({**probe, "min_epoch": epochs + 1})
            check(
                "min-epoch-beyond-is-stale-epoch",
                not beyond.get("ok") and beyond["error"]["code"] == "stale_epoch",
            )
            if indexed:
                # a probe NOT in the query workers' rotation: guaranteed
                # cache-cold, so it must reach the post-final-swap replica
                # set and be answered from the repaired index
                fresh = client.query(PARITY_DATASET, "hightruss", [16])
                check("index-post-swap-query-ok", bool(fresh.get("ok")))
            stats = client.stats()
        shard = stats["shards"][PARITY_DATASET]
        check("stats-epoch-current", shard["epoch"]["current"] == epochs)
        check("stats-epoch-swaps", shard["epoch"]["swaps"] == epochs)
        check("stats-epoch-batches", shard["epoch"]["batches"] == epochs)
        check("stats-stale-rejections", shard["epoch"]["stale_rejections"] == 1)
        if indexed:
            check("index-stays-effective", shard["index"]["effective"] == "indexed")
            check("index-hits-after-swap", shard["index"]["hits"] > 0)
            check(
                "index-repaired-at-least-once",
                any(entry["index"] == "repaired" for entry in mutation_report),
            )
            check(
                "index-maintained-every-epoch",
                shard["epoch"]["index_repairs"] + shard["epoch"]["index_rebuilds"]
                == epochs,
            )
    finally:
        exit_code = server.shutdown()
        if index_tmp is not None:
            shutil.rmtree(index_tmp, ignore_errors=True)
    check("clean-shutdown", exit_code == 0)

    # the epochal server republished a snapshot per mutation; every segment
    # from every superseded epoch must be gone now, not just the final one's
    leaked = sorted(live_snapshot_segments() - segments_before)
    check(f"leaked-shared-memory-segments: {leaked}", not leaked)

    if json_path:
        append_json(
            json_path,
            bench="dynamic",
            scale=scale,
            rows=[],
            parity=not failures,
            mode="parity",
            index=index_mode or "off",
            epochs=epochs,
            clients=PARITY_CLIENTS,
            responses_checked=served_total,
            wall_seconds=round(wall, 3),
            mutations=mutation_report,
            leaked_segments=leaked,
        )

    if failures:
        print(f"DYNAMIC PARITY FAILURES ({len(failures)}):")
        for failure in failures[:25]:
            print(f"  - {failure}")
        return 1
    incremental = sum(1 for entry in mutation_report if entry["mode"] == "incremental")
    print(
        f"dynamic parity ok: {epochs} epochs published ({incremental} incremental) "
        f"while {PARITY_CLIENTS} clients checked {served_total} responses — zero "
        f"stale answers, epochs monotone per connection, min_epoch bounds "
        f"enforced, clean shutdown, no leaked shared-memory segments"
    )
    if indexed:
        repaired = sum(1 for entry in mutation_report if entry["index"] == "repaired")
        print(
            f"index under mutation ok: mode {index_mode}, {repaired}/{epochs} "
            f"epochs repaired incrementally (rest rebuilt), index stayed "
            f"effective with {shard['index']['hits']} post-swap hits"
        )
    return 0


# ----------------------------------------------------------------------------
# timings: refreeze-per-batch vs incremental repair
# ----------------------------------------------------------------------------

TIMING_DATASET = "dolphin"


def run_timings(scale: float, json_path: str | None) -> int:
    """Publish the same mutation stream both ways, in-process, and time it."""
    from repro.graph import build_index

    batch_count = max(30, int(60 * scale))
    graph = load_dataset(TIMING_DATASET).graph
    batches, _ = build_mutation_script(graph, batch_count, seed=29, ops_per_batch=1)

    def publish(threshold: int, *, indexed: bool = False) -> tuple[float, EpochManager]:
        manager = EpochManager(graph.copy(), threshold=threshold)
        if indexed:
            manager.bind_index(build_index(graph, dataset=TIMING_DATASET))
        start = time.perf_counter()
        for batch in batches:
            manager.apply(batch)
        return time.perf_counter() - start, manager

    refreeze_seconds, refreeze_manager = publish(threshold=0)
    incremental_seconds, incremental_manager = publish(threshold=64)
    assert incremental_manager.describe()["incremental_batches"] == batch_count
    assert refreeze_manager.describe()["refrozen_batches"] == batch_count

    # the index tier under the same stream: a bound community index is
    # maintained per epoch — full from-scratch rebuild (refreeze path) vs
    # the incremental window repair (incremental path)
    rebuild_seconds, rebuild_manager = publish(threshold=0, indexed=True)
    repair_seconds, repair_manager = publish(threshold=64, indexed=True)
    assert rebuild_manager.describe()["index_rebuilds"] == batch_count
    assert repair_manager.describe()["index_repairs"] == batch_count

    rows = [
        (
            f"{TIMING_DATASET} x{batch_count} single-op epochs",
            refreeze_seconds,
            incremental_seconds,
        ),
        (
            f"{TIMING_DATASET} x{batch_count} + index maintenance",
            rebuild_seconds,
            repair_seconds,
        ),
    ]
    print_table(rows, columns=("rebuild (s)", "increm (s)"))
    print()
    print(
        f"epoch publication ({TIMING_DATASET}, {batch_count} single-edge batches): "
        f"from-scratch refreeze {refreeze_seconds:.4f}s vs incremental repair "
        f"{incremental_seconds:.4f}s "
        f"({refreeze_seconds / incremental_seconds:.2f}x); with a bound "
        f"community index, per-epoch full rebuild {rebuild_seconds:.4f}s vs "
        f"incremental window repair {repair_seconds:.4f}s "
        f"({rebuild_seconds / repair_seconds:.2f}x); all paths are "
        f"bit-identical by construction (the parity smoke and the test suite "
        f"enforce it)"
    )
    if json_path:
        append_json(
            json_path,
            bench="dynamic",
            scale=scale,
            rows=rows,
            parity=True,
            mode="timing",
            dataset=TIMING_DATASET,
            batches=batch_count,
            per_batch_ms={
                "refreeze": round(refreeze_seconds / batch_count * 1000.0, 3),
                "incremental": round(incremental_seconds / batch_count * 1000.0, 3),
                "index_rebuild": round(rebuild_seconds / batch_count * 1000.0, 3),
                "index_repair": round(repair_seconds / batch_count * 1000.0, 3),
            },
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_common_arguments(parser)
    parser.add_argument(
        "--index",
        choices=["auto", "require", "off"],
        default=None,
        help="forwarded to `repro serve --index`; with 'require' the parity "
        "phase builds index files first, asserts every mutation keeps the "
        "index maintained (repaired/rebuilt, never refused) and that "
        "post-swap queries still hit it",
    )
    args = parser.parse_args(argv)
    status = run_parity(args.scale, args.json_path, index_mode=args.index)
    if status or args.parity_only:
        return status
    return run_timings(args.scale, args.json_path)


if __name__ == "__main__":
    sys.exit(main())
