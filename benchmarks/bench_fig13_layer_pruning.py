"""Figure 13 — effect of the layer-based pruning strategy.

The paper compares FPA with and without the Section-5.7 pruning: pruning
costs a little accuracy but is dramatically faster (up to 300x on DBLP).
The bench reports NMI / ARI and mean running time for both configurations.
"""

from __future__ import annotations

from conftest import default_lfr_config, run_once

from repro.experiments import format_table, pruning_comparison


def _run():
    return pruning_comparison(config=default_lfr_config(seed=6), num_queries=6, seed=6)


def test_fig13_layer_pruning(benchmark):
    results = run_once(benchmark, _run)
    rows = [
        {
            "configuration": name,
            "NMI": agg.median_nmi,
            "ARI": agg.median_ari,
            "seconds/query": agg.mean_seconds,
        }
        for name, agg in results.items()
    ]
    print()
    print(format_table(rows, title="Figure 13: FPA with vs without layer-based pruning"))
    pruned = results["FPA"]
    full = results["FPA w/o pruning"]
    # headline shape: pruning is faster, and the accuracy gap stays small
    assert pruned.mean_seconds <= full.mean_seconds * 1.5
    assert pruned.median_nmi >= full.median_nmi - 0.3
