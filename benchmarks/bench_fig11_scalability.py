"""Figure 11 — scalability on growing synthetic networks.

The paper grows the node count from 10K to 100K and reports running time;
NCA is the slowest (it recomputes articulation points every iteration), kc
and highcore scale best, FPA sits close to kc with the same trend.  The
bench reproduces the same series on planted-partition graphs scaled to pure
Python sizes (the ``REPRO_BENCH_SCALE`` environment variable raises them).
"""

from __future__ import annotations

from conftest import run_once, scaled

from repro.experiments import format_series, scalability_sweep

ALGORITHMS = ["kc", "kt", "highcore", "hightruss", "wu2015", "NCA", "FPA"]


def _node_counts():
    return [scaled(250), scaled(500), scaled(750), scaled(1000)]


def _run():
    # batched engine: each planted-partition graph is frozen once and every
    # algorithm's queries run against the shared CSR snapshot
    return scalability_sweep(
        ALGORITHMS,
        _node_counts(),
        community_size=50,
        p_in=0.3,
        p_out=0.004,
        num_queries=2,
        seed=4,
        time_budget_seconds=240.0,
        engine="batched",
    )


def test_fig11_scalability(benchmark):
    results = run_once(benchmark, _run)
    print()
    print(
        format_series(
            results,
            x_label="algorithm",
            title="Figure 11: mean seconds per query vs number of nodes",
        )
    )
    sizes = _node_counts()
    largest = sizes[-1]
    # headline shape: FPA is faster than NCA at the largest size and kc is the fastest overall
    assert results["FPA"][largest] <= results["NCA"][largest]
    assert results["kc"][largest] <= results["FPA"][largest] * 50
    # runtimes grow with the graph (allowing small noise at these sizes)
    assert results["NCA"][largest] >= results["NCA"][sizes[0]] * 0.5
