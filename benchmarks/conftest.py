"""Shared configuration for the benchmark harness.

Every module in this directory regenerates one table or figure of the paper
(see DESIGN.md §4 for the index).  The workloads are scaled down so that the
whole suite finishes in minutes of pure Python; the ``REPRO_BENCH_SCALE``
environment variable multiplies the graph sizes for longer, higher-fidelity
runs (e.g. ``REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only``).

Passing ``--json out.json`` to any pytest invocation of this directory
writes a machine-readable record of every bench wall-clock (one entry per
``run_once`` call) — the ``BENCH_*.json`` trajectory files future PRs diff
against.  The standalone micro-benches (``bench_csr_backend.py``,
``bench_truss_cut.py``) accept the same flag directly.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.datasets import LFRConfig

# wall-clock records collected by run_once, flushed by pytest_sessionfinish
_BENCH_RECORDS: list[dict] = []


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        help="write a machine-readable record of every bench timing to this file",
    )


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--json")
    if not path or not _BENCH_RECORDS:
        return
    payload = {
        "bench": "benchmarks",
        "scale": bench_scale(),
        "rows": _BENCH_RECORDS,
        "exit_status": int(exitstatus),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def bench_scale() -> float:
    """Return the global size multiplier taken from ``REPRO_BENCH_SCALE``."""
    try:
        return max(0.25, float(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1.0


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an integer workload size by the global multiplier."""
    return max(minimum, int(round(value * bench_scale())))


def default_lfr_config(seed: int = 1, mu: float = 0.3) -> LFRConfig:
    """The Table-2 default configuration scaled for the bench suite."""
    return LFRConfig(
        num_nodes=scaled(400, minimum=150),
        avg_degree=20,
        max_degree=60,
        mu=mu,
        min_community=20,
        max_community=60,
        seed=seed,
    )


@pytest.fixture(scope="session")
def lfr_default():
    """One shared default LFR dataset for the single-configuration figures."""
    from repro.datasets import load_lfr

    return load_lfr(default_lfr_config())


@pytest.fixture(scope="session")
def karate():
    from repro.datasets import load_karate

    return load_karate()


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiment sweeps are deterministic and relatively heavy, so a single
    round gives the wall-clock number we want without multiplying the suite's
    runtime.  The elapsed seconds are also recorded for the ``--json`` report.
    """
    start = time.perf_counter()
    result = benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
    test_name = os.environ.get("PYTEST_CURRENT_TEST", "unknown").split(" ")[0]
    _BENCH_RECORDS.append(
        {"test": test_name, "seconds": round(time.perf_counter() - start, 6)}
    )
    return result
