"""Micro-benchmark: truss & min-cut kernels, dict backend vs the CSR fast path.

PR 2 moved the last exact baselines (``kt`` / ``hightruss`` / ``huang2015``
truss peeling, ``kecc`` recursive Stoer–Wagner) onto the CSR backend.  This
bench times each kernel on both backends, checks the results are identical,
and measures the end-to-end effect on batched ``kt`` / ``kecc`` queries —
the headline numbers recorded in CHANGES.md.

Usage::

    python benchmarks/bench_truss_cut.py                  # timings + parity
    python benchmarks/bench_truss_cut.py --parity-only    # CI smoke: exit 1 on
                                                          # mismatch, ignore time
    python benchmarks/bench_truss_cut.py --scale 2        # larger graphs
    python benchmarks/bench_truss_cut.py --json out.json  # machine-readable
                                                          # trajectory record

The ``--parity-only`` mode is what the CI workflow runs: it fails the job on
any dict-vs-CSR divergence but never on timing (shared runners are noisy).
"""

from __future__ import annotations

import argparse
import sys

from _bench_util import add_common_arguments, print_table, time_median as _time, write_json

from repro.baselines import kecc_community, ktruss_community
from repro.graph import (
    csr_edge_index,
    csr_k_edge_connected_components,
    csr_stoer_wagner,
    csr_truss_numbers,
    freeze,
    k_edge_connected_components,
    k_truss_subgraph,
    planted_partition,
    stoer_wagner_min_cut,
    truss_numbers,
)


def run(scale: float = 1.0, parity_only: bool = False, json_path: str | None = None) -> int:
    """Run the comparison; return a process exit code (0 = parity holds)."""
    # triangle-rich workload for the truss kernels
    truss_graph, _ = planted_partition(max(2, int(8 * scale)), 45, 0.3, 0.01, seed=7)
    truss_frozen = freeze(truss_graph)
    truss_csr = truss_frozen.csr
    truss_csr.adjacency_lists()
    truss_index = csr_edge_index(truss_csr)
    # smaller connected workload for the cubic-ish min-cut kernels
    cut_graph, _ = planted_partition(3, max(20, int(40 * scale)), 0.35, 0.05, seed=5)
    cut_frozen = freeze(cut_graph)
    cut_frozen.csr.adjacency_lists()
    print(f"truss workload: {truss_graph!r}   cut workload: {cut_graph!r}")

    rows: list[tuple[str, float, float]] = []
    failures: list[str] = []

    def check(name: str, ok: bool) -> None:
        if not ok:
            failures.append(name)

    # truss peel (the full decomposition)
    dict_seconds, dict_truss = _time(lambda: truss_numbers(truss_graph), repeat=7)
    csr_seconds, csr_truss = _time(lambda: csr_truss_numbers(truss_csr, truss_index), repeat=7)
    node_list = truss_csr.node_list
    as_dict = {}
    for e in range(truss_index.num_edges):
        u = node_list[truss_index.eu[e]]
        v = node_list[truss_index.ev[e]]
        as_dict[(u, v) if repr(u) <= repr(v) else (v, u)] = csr_truss[e]
    check("truss_numbers", dict_truss == as_dict)
    rows.append(("truss_numbers", dict_seconds, csr_seconds))

    # k-truss extraction (memoised filter on the frozen snapshot)
    truss_numbers(truss_frozen)  # warm the per-snapshot memo once
    dict_seconds, dict_sub = _time(lambda: k_truss_subgraph(truss_graph, 4))
    csr_seconds, csr_sub = _time(lambda: k_truss_subgraph(truss_frozen, 4))
    check("k_truss_subgraph", dict_sub == csr_sub)
    rows.append(("k_truss_subgraph(k=4)", dict_seconds, csr_seconds))

    # global minimum cut
    dict_seconds, (dict_weight, dict_side) = _time(lambda: stoer_wagner_min_cut(cut_graph))
    csr_seconds, (csr_weight, csr_side) = _time(lambda: csr_stoer_wagner(cut_frozen.csr))
    check(
        "stoer_wagner",
        dict_weight == csr_weight
        and dict_side == {cut_frozen.csr.node_list[i] for i in csr_side},
    )
    rows.append(("stoer_wagner_min_cut", dict_seconds, csr_seconds))

    # k-edge-connected decomposition
    dict_seconds, dict_parts = _time(lambda: k_edge_connected_components(cut_graph, 3), repeat=2)
    csr_seconds, csr_parts = _time(
        lambda: csr_k_edge_connected_components(cut_frozen.csr, 3), repeat=2
    )
    check(
        "kecc_partition",
        dict_parts == [set(cut_frozen.csr.nodes_for(piece)) for piece in csr_parts],
    )
    rows.append(("k_edge_connected_components", dict_seconds, csr_seconds))

    # end-to-end: a batch of kt queries (dict per-query vs shared frozen snapshot)
    queries = [[node] for node in list(truss_graph.iter_nodes())[:12]]
    dict_seconds, dict_results = _time(
        lambda: [ktruss_community(truss_graph, q, k=4) for q in queries], repeat=2
    )

    def _kt_batch():
        snapshot = freeze(truss_graph)  # fresh snapshot: pays freeze + one peel
        return [ktruss_community(snapshot, q, k=4) for q in queries]

    csr_seconds, csr_results = _time(_kt_batch, repeat=2)
    check(
        "kt_batch",
        [(r.nodes, r.score) for r in dict_results] == [(r.nodes, r.score) for r in csr_results],
    )
    rows.append(("kt x12 queries (batched)", dict_seconds, csr_seconds))

    # end-to-end: exact kecc queries against the shared snapshot
    kecc_queries = [[node] for node in list(cut_graph.iter_nodes())[:4]]
    dict_seconds, dict_results = _time(
        lambda: [kecc_community(cut_graph, q, approximate_above=None) for q in kecc_queries],
        repeat=1,
    )

    def _kecc_batch():
        snapshot = freeze(cut_graph)
        return [kecc_community(snapshot, q, approximate_above=None) for q in kecc_queries]

    csr_seconds, csr_results = _time(_kecc_batch, repeat=1)
    check(
        "kecc_batch",
        [(r.nodes, r.score) for r in dict_results] == [(r.nodes, r.score) for r in csr_results],
    )
    rows.append(("kecc x4 queries (batched)", dict_seconds, csr_seconds))

    if not parity_only:
        print_table(rows)

    if json_path:
        write_json(
            json_path,
            "bench_truss_cut",
            scale,
            rows,
            parity=not failures,
            workloads={"truss": repr(truss_graph), "cut": repr(cut_graph)},
        )

    if failures:
        print(f"PARITY FAILURE: dict and CSR backends disagree on: {', '.join(failures)}")
        return 1
    print("parity: dict and CSR backends agree on every truss/cut kernel and baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_common_arguments(parser)
    args = parser.parse_args(argv)
    return run(scale=args.scale, parity_only=args.parity_only, json_path=args.json_path)


if __name__ == "__main__":
    sys.exit(main())
