"""Example 3 / Figure 2 — the resolution-limit example as a benchmark.

Prints the classic-vs-density modularity scores of the merged and split
communities on the ring of 30 six-node cliques and verifies the exact values
reported in Example 3 of the paper.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.datasets import ring_of_cliques_dataset
from repro.experiments import format_table
from repro.modularity import classic_modularity, density_modularity


def _scores():
    dataset = ring_of_cliques_dataset(30, 6)
    graph = dataset.graph
    split = set(dataset.communities[0])
    merged = split | set(dataset.communities[1])
    return {
        "classic merged": classic_modularity(graph, merged),
        "classic split": classic_modularity(graph, split),
        "density merged": density_modularity(graph, merged),
        "density split": density_modularity(graph, split),
    }


def test_example3_resolution_limit_scores(benchmark):
    scores = run_once(benchmark, _scores)
    rows = [
        {"objective": "classic modularity", "merged": scores["classic merged"], "split": scores["classic split"]},
        {"objective": "density modularity", "merged": scores["density merged"], "split": scores["density split"]},
    ]
    print()
    print(format_table(rows, title="Example 3: ring of 30 six-node cliques"))
    assert scores["classic merged"] == pytest.approx(0.06013889, abs=1e-6)
    assert scores["classic split"] == pytest.approx(0.03013889, abs=1e-6)
    assert scores["density merged"] == pytest.approx(2.405556, abs=1e-5)
    assert scores["density split"] == pytest.approx(2.411111, abs=1e-5)
    # classic modularity prefers the merged pair of cliques; density modularity does not
    assert scores["classic merged"] > scores["classic split"]
    assert scores["density split"] > scores["density merged"]
