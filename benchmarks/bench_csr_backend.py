"""Micro-benchmark: dict-of-dicts kernels vs the CSR fast path.

Runs each hot kernel (multi-source BFS, articulation points, coreness
peeling) and both peeling algorithms (NCA, FPA) on both backends, checks
the results are identical, and prints the timing table — the perf
trajectory future PRs append to (see CHANGES.md).

When the optional numpy tier is installed (``pip install -e ".[vec]"``)
a second table compares the pure-python CSR kernels against their
vectorised twins (:mod:`repro.graph.vec_kernels`) on the same graph and
checks they are bit-identical — multi-source BFS including discovery
order, edge support, and truss numbers, each also under an alive mask.
Without numpy the section prints a note and is skipped; parity of the
dict-vs-CSR half is unaffected.

Usage::

    python benchmarks/bench_csr_backend.py               # timings + parity
    python benchmarks/bench_csr_backend.py --parity-only # CI smoke: exit 1 on
                                                         # mismatch, ignore time
    python benchmarks/bench_csr_backend.py --scale 4     # larger graphs
    python benchmarks/bench_csr_backend.py --json out.json  # machine-readable
                                                            # trajectory record

The ``--parity-only`` mode is what the CI workflow runs: it fails the job on
any dict-vs-CSR (and CSR-vs-vec) divergence but never on timing (shared
runners are noisy).
"""

from __future__ import annotations

import argparse
import sys

from _bench_util import add_common_arguments, print_table, time_median as _time, write_json

from repro.core import fpa, nca
from repro.graph import (
    articulation_points,
    core_numbers,
    csr_articulation_points,
    csr_core_numbers,
    csr_edge_index,
    csr_edge_support,
    csr_multi_source_bfs,
    csr_truss_numbers,
    freeze,
    multi_source_bfs,
    planted_partition,
)
from repro.graph.vec_kernels import numpy_available, set_vec_enabled


def run_vec_section(csr, query_index, check) -> list[tuple[str, float, float]]:
    """Pure-python CSR kernels vs the numpy tier, bit-identical by assertion.

    Both tiers run through the *same* public entry points with the
    dispatch switch forced (``set_vec_enabled``), so this exercises
    exactly the code path serving traffic takes.  The alive-mask variants
    matter because the peeling algorithms call the kernels on shrinking
    subgraphs, not just the full graph.
    """
    rows: list[tuple[str, float, float]] = []
    n = csr.number_of_nodes()
    index = csr_edge_index(csr)
    # a non-trivial alive mask: drop every 7th node
    alive = bytearray(1 if i % 7 else 0 for i in range(n))
    cases = [
        ("vec_multi_source_bfs", lambda: csr_multi_source_bfs(csr, [query_index])),
        ("vec_edge_support", lambda: csr_edge_support(csr, index)),
        ("vec_truss_numbers", lambda: csr_truss_numbers(csr, index)),
        ("vec_edge_support[alive]", lambda: csr_edge_support(csr, index, alive)),
        ("vec_truss_numbers[alive]", lambda: csr_truss_numbers(csr, index, alive)),
    ]
    try:
        for name, kernel in cases:
            set_vec_enabled(False)
            py_seconds, py_result = _time(kernel)
            set_vec_enabled(True)
            vec_seconds, vec_result = _time(kernel)
            check(name, py_result == vec_result)
            rows.append((name, py_seconds, vec_seconds))
    finally:
        set_vec_enabled(None)  # back to env/availability-driven dispatch
    return rows


def run(scale: float = 1.0, parity_only: bool = False, json_path: str | None = None) -> int:
    """Run the comparison; return a process exit code (0 = parity holds)."""
    num_communities = max(2, int(10 * scale))
    graph, _ = planted_partition(num_communities, 50, 0.3, 0.008, seed=4)
    frozen = freeze(graph)
    csr = frozen.csr
    csr.adjacency_lists()
    query = next(iter(graph.iter_nodes()))
    query_index = csr.index_of[query]
    print(f"workload: {graph!r}, query node {query!r}")

    rows: list[tuple[str, float, float]] = []
    failures: list[str] = []

    def check(name: str, ok: bool) -> None:
        if not ok:
            failures.append(name)

    # multi-source BFS
    dict_seconds, dict_dist = _time(lambda: multi_source_bfs(graph, [query]))
    csr_seconds, (dist, order) = _time(lambda: csr_multi_source_bfs(csr, [query_index]))
    check("bfs", dict_dist == {csr.node_list[i]: dist[i] for i in order})
    rows.append(("multi_source_bfs", dict_seconds, csr_seconds))

    # articulation points
    dict_seconds, dict_art = _time(lambda: articulation_points(graph))
    csr_seconds, csr_art = _time(lambda: csr_articulation_points(csr))
    check("articulation", dict_art == {csr.node_list[i] for i in csr_art})
    rows.append(("articulation_points", dict_seconds, csr_seconds))

    # coreness peeling
    dict_seconds, dict_core = _time(lambda: core_numbers(graph))
    csr_seconds, csr_core = _time(lambda: csr_core_numbers(csr))
    check(
        "coreness",
        dict_core == {csr.node_list[i]: c for i, c in enumerate(csr_core) if c >= 0},
    )
    rows.append(("core_numbers", dict_seconds, csr_seconds))

    # full algorithms
    dict_seconds, dict_fpa = _time(lambda: fpa(graph, [query]), repeat=2)
    csr_seconds, csr_fpa = _time(lambda: fpa(frozen, [query]), repeat=2)
    check(
        "fpa",
        (dict_fpa.nodes, dict_fpa.score, dict_fpa.trace)
        == (csr_fpa.nodes, csr_fpa.score, csr_fpa.trace),
    )
    rows.append(("fpa", dict_seconds, csr_seconds))

    dict_seconds, dict_nca = _time(lambda: nca(graph, [query]), repeat=1)
    csr_seconds, csr_nca = _time(lambda: nca(frozen, [query]), repeat=1)
    check(
        "nca",
        (dict_nca.nodes, dict_nca.score, dict_nca.trace)
        == (csr_nca.nodes, csr_nca.score, csr_nca.trace),
    )
    rows.append(("nca", dict_seconds, csr_seconds))

    vec_rows: list[tuple[str, float, float]] = []
    if numpy_available():
        vec_rows = run_vec_section(csr, query_index, check)
    else:
        print("vec tier: numpy not installed; skipping the vectorised kernel comparison")

    if not parity_only:
        print_table(rows, name_width=22)
        if vec_rows:
            print_table(vec_rows, name_width=24, columns=("python (s)", "vec (s)"))

    if json_path:
        write_json(
            json_path, "bench_csr_backend", scale, rows,
            parity=not failures, workload=repr(graph),
            vec={
                "numpy_available": numpy_available(),
                "rows": [
                    {
                        "kernel": name,
                        "python_seconds": round(py_seconds, 6),
                        "vec_seconds": round(vec_seconds, 6),
                        "speedup": round(py_seconds / vec_seconds, 2) if vec_seconds else None,
                    }
                    for name, py_seconds, vec_seconds in vec_rows
                ],
            },
        )

    if failures:
        print(f"PARITY FAILURE: backends disagree on: {', '.join(failures)}")
        return 1
    tiers = "dict, CSR and vec tiers" if vec_rows else "dict and CSR backends"
    print(f"parity: {tiers} agree on every kernel and algorithm")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_common_arguments(parser)
    args = parser.parse_args(argv)
    return run(scale=args.scale, parity_only=args.parity_only, json_path=args.json_path)


if __name__ == "__main__":
    sys.exit(main())
