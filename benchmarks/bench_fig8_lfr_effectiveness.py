"""Figure 8 — effectiveness (NMI / ARI / Fscore) on LFR benchmark networks.

The paper sweeps the mixing parameter mu, the average degree d_avg and the
maximum degree d_max and reports the accuracy of kc, kt, kecc, huang2015,
wu2015, highcore, hightruss, NCA and FPA.  The expected shape: FPA (and
huang2015) clearly ahead, the parameterised core/truss baselines near zero
because they return very large communities, NCA behind FPA, and accuracy
dropping as mu grows.
"""

from __future__ import annotations

import pytest
from conftest import default_lfr_config, run_once, scaled

from repro.experiments import format_series, lfr_parameter_sweep

# The algorithm set of Figure 8 (GN / CNM / clique / icwi2008 are only used on
# the small graphs of Figure 15 in the paper as well).
ALGORITHMS = ["kc", "kt", "kecc", "huang2015", "wu2015", "highcore", "hightruss", "NCA", "FPA"]
NUM_QUERIES = 4
TIME_BUDGET = 120.0

SWEEPS = {
    "mu": [0.2, 0.3, 0.4],
    # d_avg and d_max values are scaled from the paper's 5,000-node grid to the
    # bench's smaller graphs (paper values: d_avg 20..50, d_max 200..500)
    "avg_degree": [20, 30, 40],
    "max_degree": [40, 60, 80],
}


def _run_sweep(parameter, values):
    return lfr_parameter_sweep(
        ALGORITHMS,
        parameter,
        values,
        base_config=default_lfr_config(),
        num_queries=NUM_QUERIES,
        seed=1,
        time_budget_seconds=TIME_BUDGET,
    )


@pytest.mark.parametrize("parameter", list(SWEEPS))
def test_fig8_lfr_effectiveness(benchmark, parameter):
    results = run_once(benchmark, _run_sweep, parameter, SWEEPS[parameter])
    for metric in ("median_nmi", "median_ari", "median_fscore"):
        series = {
            algorithm: {value: getattr(agg, metric) for value, agg in per_value.items()}
            for algorithm, per_value in results.items()
        }
        print()
        print(
            format_series(
                series,
                x_label="algorithm",
                title=f"Figure 8: {metric} while varying {parameter}",
            )
        )
    # headline shape: FPA dominates the parameterised baselines on NMI
    for value in SWEEPS[parameter]:
        fpa_nmi = results["FPA"][value].median_nmi
        for baseline in ("kc", "kecc", "highcore"):
            assert fpa_nmi >= results[baseline][value].median_nmi
